"""The self-maintenance controller — the paper's software-defined
maintenance plane (§2, §4 "Software-defined controllers").

The controller closes the loop the paper describes: telemetry symptoms
come in, a policy decides what deserves work, the escalation ladder
picks the stage, the impact-aware scheduler drains traffic and defers
proactive work to quiet windows, an executor (robot fleet and/or
technician pool, per the automation level) performs the repair, and the
controller verifies the outcome and escalates until the link is healthy.

With a :class:`~dcrobot.core.resilience.ResilienceConfig` attached the
controller also survives a misbehaving maintenance plane: work orders
time out instead of blocking forever, timed-out or failed orders are
re-dispatched under bounded exponential backoff with jitter, a link
whose repair landed without an acknowledgement is *not* repaired twice
(health is re-verified before every re-dispatch), and a robot fleet
that keeps failing is circuit-broken back to the technician pool until
a half-open probe readmits it.  Without one (the default), behaviour is
the legacy trusting control loop.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from dcrobot.core.actions import Priority, RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.automation import AutomationLevel, LevelSpec, spec_for
from dcrobot.core.escalation import EscalationLadder
from dcrobot.core.journal import RecordKind, WriteAheadJournal
from dcrobot.core.policy import PlanRequest, ReactivePolicy
from dcrobot.core.resilience import CircuitBreaker
from dcrobot.core.scheduler import ImpactAwareScheduler
from dcrobot.failures.health import HealthModel
from dcrobot.obs import NULL_OBS
from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation
from dcrobot.telemetry.events import TelemetryEvent
from dcrobot.telemetry.monitor import TelemetryMonitor


@dataclasses.dataclass
class Incident:
    """One link-misbehaviour case, from detection to verified repair."""

    link_id: str
    opened_at: float
    symptom: str
    priority: Priority = Priority.NORMAL
    attempts: List[RepairOutcome] = dataclasses.field(default_factory=list)
    #: (time, action) pairs feeding the escalation ladder.
    attempt_history: List[Tuple[float, RepairAction]] = dataclasses.field(
        default_factory=list)
    resolved: bool = False
    closed_at: Optional[float] = None
    unresolvable_reason: Optional[str] = None
    in_flight: bool = False
    #: Attempts made before a controller crash; the outcome objects died
    #: with the old process, but the budget they consumed did not.
    prior_attempts: int = 0

    @property
    def time_to_repair(self) -> Optional[float]:
        """Detection-to-verified-fix duration (the service window)."""
        if self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    @property
    def attempt_count(self) -> int:
        return self.prior_attempts + len(self.attempts)


@dataclasses.dataclass(frozen=True)
class ActiveOrder:
    """One in-flight work order: who owns which link since when."""

    order: WorkOrder
    executor_id: str
    dispatched_at: float
    deadline: Optional[float] = None
    proactive: bool = False

    @property
    def link_id(self) -> str:
        return self.order.link_id


@dataclasses.dataclass
class ControllerConfig:
    """Controller behaviour knobs."""

    #: Wait after a repair before verifying (lets our own touch
    #: disturbances decay so we don't misjudge the repair).
    verification_delay_seconds: float = 1200.0
    #: Cadence of the proactive policy loop.
    policy_interval_seconds: float = 3600.0
    #: Attempts per incident before declaring it unresolvable.
    max_attempts: int = 8
    #: Defer proactive work to the scheduler's quiet window.
    defer_proactive: bool = True
    #: Chaos hardening (timeouts, retries, circuit breaking); ``None``
    #: keeps the legacy trusting behaviour.
    resilience: Optional["ResilienceConfig"] = None
    #: Cadence of journal snapshots (bounds replay work after a crash);
    #: 0 disables snapshotting, leaving full-journal replay.
    snapshot_interval_seconds: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.verification_delay_seconds < 0:
            raise ValueError("verification delay must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.snapshot_interval_seconds < 0:
            raise ValueError("snapshot interval must be >= 0")


class MaintenanceController:
    """Routes symptoms to repairs and verifies the results."""

    def __init__(self, sim: Simulation, fabric: Fabric,
                 health: HealthModel, monitor: TelemetryMonitor,
                 policy: ReactivePolicy,
                 ladder: Optional[EscalationLadder] = None,
                 scheduler: Optional[ImpactAwareScheduler] = None,
                 level: AutomationLevel = AutomationLevel.L0_NO_AUTOMATION,
                 humans=None, fleet=None,
                 config: Optional[ControllerConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 journal: Optional[WriteAheadJournal] = None,
                 node_id: str = "primary", obs=NULL_OBS,
                 impact_gate=None, planner=None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.health = health
        self.monitor = monitor
        self.policy = policy
        self.ladder = ladder or EscalationLadder()
        self.scheduler = scheduler or ImpactAwareScheduler()
        self.level = level
        self.spec: LevelSpec = spec_for(level)
        self.humans = humans
        self.fleet = fleet
        self.config = config or ControllerConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.journal = journal
        self.node_id = node_id
        self.obs = obs if obs is not None else NULL_OBS
        #: Congestion gate (:class:`~dcrobot.core.impact.CongestionGate`);
        #: ``None`` keeps the congestion-blind scheduling behaviour.
        self.impact_gate = impact_gate
        #: Twin planner (:class:`~dcrobot.core.planner.TwinPlanner`);
        #: ``None`` keeps first-come proactive dispatch.  When set,
        #: each policy cycle's candidate requests are ranked by forked
        #: what-if rollouts and only the predicted-best slice dispatches.
        self.planner = planner
        if humans is None and fleet is None:
            raise ValueError("need at least one executor")

        self.open_incidents: Dict[str, Incident] = {}
        #: Per-link (time, action) repair attempts across *all*
        #: incidents — the paper's escalation keys on re-tickets for the
        #: same link within a window (§3.2), not on one incident's
        #: lifetime, because gray failures re-ticket intermittently.
        self.repair_history: Dict[str, List[Tuple[float, RepairAction]]] \
            = {}
        self.closed_incidents: List[Incident] = []
        self.unresolved_incidents: List[Incident] = []
        self.proactive_outcomes: List[RepairOutcome] = []
        #: Supervision person-seconds consumed by robot work (L2/L3).
        self.supervision_seconds = 0.0
        self._proactive_pending: set = set()

        #: link id -> claims by in-flight work orders (the ownership
        #: registry the safety monitor audits for double-dispatch).
        self.active_orders: Dict[str, List[ActiveOrder]] = {}
        self.resilience = self.config.resilience
        self.fleet_breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(self.resilience.breaker, obs=self.obs)
            if self.resilience is not None and fleet is not None
            else None)
        #: Live trace spans: per-incident lifecycle spans and
        #: per-order execute spans (empty unless obs is enabled).
        self._incident_spans: Dict[str, object] = {}
        self._order_spans: Dict[int, object] = {}
        #: Orders whose acknowledgement never arrived in time.
        self.lost_ack_orders: List[WorkOrder] = []
        #: Acknowledgements that arrived after their timeout fired.
        self.late_outcomes: List[RepairOutcome] = []
        self.timeout_count = 0
        self.retry_count = 0
        self.late_ack_count = 0
        #: Re-dispatches skipped because the link healed meanwhile
        #: (idempotency guard: the repair landed, only the ack was lost).
        self.idempotent_skips = 0
        #: Orders routed to humans because the fleet breaker was open —
        #: the graceful automation-level degradation counter.
        self.degraded_dispatches = 0

        #: Leadership fencing token attached to every order this node
        #: dispatches; ``None`` until a lease hands one out (or forever,
        #: when leadership is disabled).
        self.fencing_token: Optional[int] = None
        #: Set once this controller dies (crash injection) or discovers
        #: it is a deposed zombie (an executor refused its token).
        self.crashed = False
        self.crash_reason: Optional[str] = None
        #: In-flight incidents adopted from a predecessor's journal.
        self.recovered_incident_count = 0
        self._processes: List = []

        monitor.subscribe(self.on_event)

    def __repr__(self) -> str:
        return (f"<MaintenanceController {self.level.name} open="
                f"{len(self.open_incidents)} closed="
                f"{len(self.closed_incidents)}>")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch the proactive policy loop (and snapshotting)."""
        self._spawn(self._policy_loop())
        if self.journal is not None and self.config.snapshot_interval_seconds:
            self._spawn(self._snapshot_loop())

    def _spawn(self, generator):
        """Launch a controller-owned process, tracked so :meth:`crash`
        can kill it mid-yield."""
        self._processes = [p for p in self._processes if p.is_alive]
        proc = self.sim.process(generator)
        self._processes.append(proc)
        return proc

    def crash(self, reason: str = "crash") -> None:
        """Kill this controller: every owned process dies mid-yield and
        the telemetry subscription is dropped.

        In-memory state is deliberately *not* cleaned up — that is the
        failure being modelled.  Muted links stay muted, claimed orders
        stay claimed, open incidents go nowhere.  Only the journal (on
        its own durable store) survives; :mod:`dcrobot.core.recovery`
        rebuilds a successor from it.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_reason = reason
        if self.obs.enabled:
            self.obs.tracer.record("controller.crash", reason=reason,
                                   node_id=self.node_id)
            self.obs.count("dcrobot_controller_crashes_total")
        self.monitor.unsubscribe(self.on_event)
        active = self.sim.active_process
        for proc in self._processes:
            if proc is active or not proc.is_alive:
                continue
            proc.defused = True
            proc.interrupt(f"controller {reason}")
        self._processes = []

    def _demote(self) -> None:
        """An executor refused our fencing token: a newer primary holds
        the lease and this node is a zombie.  Self-fence immediately —
        the only safe move (§ split-brain) is to stop doing anything."""
        self.crash(reason="fenced by newer primary")

    # -- durability ----------------------------------------------------------

    def _journal(self, kind: RecordKind, **payload) -> None:
        """Write-ahead append (no-op when journalling is disabled)."""
        if self.journal is not None:
            self.journal.append(self.sim.now, kind, **payload)
            if self.obs.enabled:
                self.obs.tracer.record("journal.append", kind=kind.value)
                self.obs.count("dcrobot_journal_appends_total",
                               kind=kind.value)

    def _snapshot_loop(self):
        while True:
            yield self.sim.timeout(self.config.snapshot_interval_seconds)
            self.journal.snapshot(self.sim.now, self.snapshot_state())
            if self.obs.enabled:
                self.obs.tracer.record(
                    "journal.snapshot",
                    open_incidents=len(self.open_incidents))
                self.obs.count("dcrobot_journal_snapshots_total")

    def _incident_payload(self, incident: Incident) -> Dict[str, object]:
        return {
            "link_id": incident.link_id,
            "opened_at": incident.opened_at,
            "symptom": incident.symptom,
            "priority": incident.priority.name,
            "attempt_count": incident.attempt_count,
            "attempt_history": [[t, action.value]
                                for t, action in incident.attempt_history],
            "in_flight": incident.in_flight,
            "resolved": incident.resolved,
            "closed_at": incident.closed_at,
            "unresolvable_reason": incident.unresolvable_reason,
        }

    def _claim_payload(self, claim: ActiveOrder) -> Dict[str, object]:
        order = claim.order
        return {
            "order_id": order.order_id,
            "link_id": order.link_id,
            "action": order.action.value,
            "priority": order.priority.name,
            "symptom": order.symptom,
            "created_at": order.created_at,
            "announced_touches": list(order.announced_touches),
            "fencing_token": order.fencing_token,
            "executor_id": claim.executor_id,
            "dispatched_at": claim.dispatched_at,
            "deadline": claim.deadline,
            "proactive": claim.proactive,
        }

    def _breaker_payload(self) -> Optional[Dict[str, object]]:
        breaker = self.fleet_breaker
        if breaker is None:
            return None
        return {
            "state": breaker.state.value,
            "consecutive_failures": breaker.consecutive_failures,
            "opened_at": breaker.opened_at,
            "trips": breaker.trips,
        }

    def _journal_breaker(self, before) -> None:
        """Record a breaker state change (compared against ``before``)."""
        breaker = self.fleet_breaker
        if breaker is None or breaker.state is before:
            return
        payload = self._breaker_payload()
        self._journal(RecordKind.BREAKER_TRANSITION, **payload)

    def snapshot_state(self) -> Dict[str, object]:
        """The controller's full logical state as plain data.

        Everything a successor needs to carry on: open incidents,
        in-flight claims, per-link repair history (escalation-ladder
        input), concluded incidents (reporting continuity), counters,
        and breaker state.
        """
        return {
            "node_id": self.node_id,
            "time": self.sim.now,
            "fencing_token": self.fencing_token,
            "open_incidents": [self._incident_payload(incident)
                               for incident
                               in self.open_incidents.values()],
            "closed_incidents": [self._incident_payload(incident)
                                 for incident in self.closed_incidents],
            "unresolved_incidents": [self._incident_payload(incident)
                                     for incident
                                     in self.unresolved_incidents],
            "active_orders": [self._claim_payload(claim)
                              for claims in self.active_orders.values()
                              for claim in claims],
            "repair_history": {
                link_id: [[t, action.value] for t, action in entries]
                for link_id, entries in self.repair_history.items()},
            "counters": {
                "timeout_count": self.timeout_count,
                "retry_count": self.retry_count,
                "late_ack_count": self.late_ack_count,
                "idempotent_skips": self.idempotent_skips,
                "degraded_dispatches": self.degraded_dispatches,
                "supervision_seconds": self.supervision_seconds,
            },
            "breaker": self._breaker_payload(),
        }

    # -- ownership bookkeeping ----------------------------------------------

    def _claim(self, order: WorkOrder, executor,
               deadline: Optional[float] = None,
               proactive: bool = False) -> ActiveOrder:
        claim = ActiveOrder(order=order,
                            executor_id=self._executor_id(executor),
                            dispatched_at=self.sim.now,
                            deadline=deadline, proactive=proactive)
        self._journal(RecordKind.ORDER_DISPATCHED,
                      **self._claim_payload(claim))
        self.active_orders.setdefault(order.link_id, []).append(claim)
        if self.obs.enabled:
            parent = self._incident_spans.get(order.link_id)
            # The raw order id is a process-global counter; spans carry
            # the per-trace ordinal so exports reproduce bit-for-bit.
            order_seq = self.obs.ordinal("order", order.order_id)
            self.obs.tracer.record(
                "dispatch", parent=parent, order_id=order_seq,
                link_id=order.link_id, action=order.action.value,
                executor=claim.executor_id, proactive=claim.proactive)
            self._order_spans[order.order_id] = \
                self.obs.tracer.start_span(
                    "execute", parent=parent, order_id=order_seq,
                    link_id=order.link_id, executor=claim.executor_id)
            self.obs.count("dcrobot_dispatches_total",
                           executor=claim.executor_id)
            self.obs.gauge(
                "dcrobot_active_orders",
                sum(len(claims)
                    for claims in self.active_orders.values()))
        return claim

    def _release(self, claim: ActiveOrder) -> None:
        self._journal(RecordKind.ORDER_CONCLUDED,
                      order_id=claim.order.order_id,
                      link_id=claim.link_id,
                      proactive=claim.proactive)
        claims = self.active_orders.get(claim.link_id, [])
        if claim in claims:
            claims.remove(claim)
        if not claims:
            self.active_orders.pop(claim.link_id, None)
        if self.obs.enabled:
            self.obs.tracer.end_span(
                self._order_spans.pop(claim.order.order_id, None))
            self.obs.gauge(
                "dcrobot_active_orders",
                sum(len(claims)
                    for claims in self.active_orders.values()))

    def inflight_order_ids(self) -> Set[int]:
        """Order ids of every currently claimed work order."""
        return {claim.order.order_id
                for claims in self.active_orders.values()
                for claim in claims}

    @staticmethod
    def _executor_id(executor) -> str:
        return getattr(executor, "executor_id", "executor")

    @property
    def automation_degraded(self) -> bool:
        """True while the fleet breaker benches the robots."""
        from dcrobot.core.resilience import BreakerState
        return (self.fleet_breaker is not None
                and self.fleet_breaker.state is not BreakerState.CLOSED)

    # -- reactive path -----------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        """Telemetry callback: open or continue an incident."""
        if self.crashed:
            return
        request = self.policy.on_symptom(event)
        if request is None:
            self.monitor.unmute(event.link_id)
            return
        incident = self.open_incidents.get(event.link_id)
        if incident is None:
            self._journal(RecordKind.INCIDENT_OPENED,
                          link_id=event.link_id,
                          opened_at=event.time,
                          symptom=event.symptom.value,
                          priority=request.priority.name)
            incident = Incident(link_id=event.link_id,
                                opened_at=event.time,
                                symptom=event.symptom.value,
                                priority=request.priority)
            self.open_incidents[event.link_id] = incident
            if self.obs.enabled:
                self._incident_spans[event.link_id] = \
                    self.obs.tracer.start_span(
                        "incident", link_id=event.link_id,
                        symptom=incident.symptom,
                        priority=incident.priority.name)
                self.obs.count("dcrobot_incidents_opened_total",
                               symptom=incident.symptom)
                self.obs.gauge("dcrobot_open_incidents",
                               len(self.open_incidents))
        if incident.in_flight:
            return  # attempt already running; outcome loop handles it
        incident.in_flight = True
        self._spawn(self._attempt(incident, request))

    def _select_executor(self, action: RepairAction, link):
        """Pick the executor per automation level and capability."""
        node = self.fabric.node(link.port_a.parent_id)
        rack_id = node.rack_id
        robots_allowed = (self.fleet is not None
                          and action in self.spec.robot_actions
                          and self.fleet.can_execute(action)
                          and rack_id is not None
                          and self.fleet.covers(rack_id))
        if robots_allowed and not getattr(
                self.fleet, "operational", lambda: True)():
            # Graceful degradation: the fleet has fallen below its
            # health quorum — stop queueing orders on a dying fleet and
            # fall back to the technician pool.
            self.degraded_dispatches += 1
            if self.obs.enabled:
                self.obs.count("dcrobot_degraded_dispatches_total")
            robots_allowed = False
        if robots_allowed and self.fleet_breaker is not None:
            before = self.fleet_breaker.state
            allowed = self.fleet_breaker.allows(self.sim.now)
            self._journal_breaker(before)
            if not allowed:
                # Graceful degradation: the fleet is benched, fall back
                # to the technician pool (effectively a lower
                # automation level).
                self.degraded_dispatches += 1
                if self.obs.enabled:
                    self.obs.count(
                        "dcrobot_degraded_dispatches_total")
                robots_allowed = False
        if robots_allowed:
            return self.fleet
        if self.humans is not None and self.humans.can_execute(action):
            return self.humans
        return None

    def _attempt(self, incident: Incident, request: PlanRequest):
        sim = self.sim
        link = self.fabric.links[incident.link_id]
        history = self.repair_history.setdefault(link.id, [])
        action = request.action
        if action is None:
            if (self.resilience is not None
                    and self.ladder.is_exhausted(link, history, sim.now)):
                # Restarting the ladder mid-incident would loop robots
                # over a link they cannot fix and break stage
                # monotonicity; hand the case to a human instead.
                self._mark_unresolvable(
                    incident, "escalation ladder exhausted")
                return
            action = self.ladder.next_action(link, history, sim.now)
            if (self.resilience is not None
                    and self._regresses(incident, action)):
                # The escalation window expired mid-incident and the
                # ladder wants to walk back down; never regress within
                # one incident — escalate to a human instead.
                self._mark_unresolvable(
                    incident, "escalation ladder exhausted")
                return
        executor = self._select_executor(action, link)
        if executor is None:
            self._mark_unresolvable(
                incident, f"no executor for {action.value}")
            return
        if self.obs.enabled:
            self.obs.tracer.record(
                "plan",
                parent=self._incident_spans.get(incident.link_id),
                link_id=link.id, action=action.value,
                executor=self._executor_id(executor),
                attempt=incident.attempt_count)

        if self.impact_gate is not None:
            # Impact-aware scheduling: hold the repair (bounded) while
            # draining this link would run its ECMP siblings hot.
            yield from self.impact_gate.wait_while_hot(
                sim, link.id, incident.priority)

        if executor is self.fleet and self.spec.approval_latency_seconds:
            yield sim.timeout(self.spec.approval_latency_seconds)

        if self.resilience is None:
            yield from self._attempt_once(incident, link, history,
                                          action, executor)
        else:
            yield from self._attempt_resilient(incident, link, history,
                                               action, executor)

    def _make_order(self, link, action: RepairAction, priority: Priority,
                    symptom: str, executor) -> WorkOrder:
        """Build a work order carrying this node's fencing token."""
        probe = WorkOrder(link.id, action, self.sim.now)
        return WorkOrder(link_id=link.id, action=action,
                         created_at=self.sim.now, priority=priority,
                         symptom=symptom,
                         announced_touches=executor.announce_touches(probe),
                         fencing_token=self.fencing_token)

    # -- legacy single-shot attempt (no timeout, no retry) -------------------

    def _attempt_once(self, incident: Incident, link, history,
                      action: RepairAction, executor):
        sim = self.sim
        order = self._make_order(link, action, incident.priority,
                                 incident.symptom, executor)
        self.scheduler.before_repair(order)
        claim = self._claim(order, executor)
        outcome = yield executor.submit(order)
        self._release(claim)
        if outcome.rejected:
            self.scheduler.after_repair(order)
            self._demote()
            return
        self._account(executor, outcome)
        incident.attempts.append(outcome)
        incident.attempt_history.append((sim.now, action))
        history.append((sim.now, action))

        if outcome.needs_human and self.humans is not None \
                and executor is not self.humans:
            # §3.3.2: the robot requests human support; same action,
            # human hands.
            retry = self._make_order(link, action, incident.priority,
                                     incident.symptom, self.humans)
            retry_claim = self._claim(retry, self.humans)
            outcome = yield self.humans.submit(retry)
            self._release(retry_claim)
            if outcome.rejected:
                self.scheduler.after_repair(order)
                self._demote()
                return
            incident.attempts.append(outcome)
            incident.attempt_history.append((sim.now, action))
            history.append((sim.now, action))
        self.scheduler.after_repair(order)

        yield from self._verify_and_close(incident, link, action)

    # -- hardened attempt: timeout, backoff, idempotent re-dispatch ----------

    def _attempt_resilient(self, incident: Incident, link, history,
                           action: RepairAction, executor):
        sim = self.sim
        retry_policy = self.resilience.retry
        retry_index = 0
        while True:
            if self.active_orders.get(link.id):
                # Someone else (e.g. a proactive order) already touches
                # this link; back off instead of double-dispatching.
                if retry_index >= retry_policy.max_retries:
                    break
                yield from self._backoff(retry_policy, retry_index)
                retry_index += 1
                continue

            order = self._make_order(link, action, incident.priority,
                                     incident.symptom, executor)
            self.scheduler.before_repair(order)
            deadline = sim.now + self._timeout_for(executor)
            claim = self._claim(order, executor, deadline=deadline)
            outcome = yield from self._await_with_timeout(
                executor.submit(order), order, executor)
            self.scheduler.after_repair(order)
            self._release(claim)

            if outcome is not None and outcome.rejected:
                self._demote()
                return
            if outcome is None:
                outcome = self._timeout_outcome(order, executor)
                self._record_breaker(executor, success=False)
            else:
                self._account(executor, outcome)
                self._record_breaker(executor,
                                     success=outcome.completed)
            incident.attempts.append(outcome)
            incident.attempt_history.append((sim.now, action))
            history.append((sim.now, action))

            if outcome.needs_human and self.humans is not None \
                    and executor is not self.humans:
                follow = yield from self._human_follow_up(
                    incident, link, history, action)
                if self.crashed:
                    return  # follow-up was fenced; we are a zombie
                if follow is not None:
                    outcome = follow

            if outcome.completed:
                break
            # Idempotency guard: the physical repair may have landed
            # even though its acknowledgement did not.
            if self.resilience.verify_before_retry:
                self.health.evaluate_link(link, sim.now)
                if self._is_healthy(link):
                    self.idempotent_skips += 1
                    if self.obs.enabled:
                        self.obs.count(
                            "dcrobot_idempotent_skips_total")
                    break
            if incident.attempt_count >= self.config.max_attempts:
                break
            if retry_index >= retry_policy.max_retries:
                break
            yield from self._backoff(retry_policy, retry_index)
            retry_index += 1
            # The breaker may have opened (or healed) while we waited.
            executor = self._select_executor(action, link)
            if executor is None:
                self._mark_unresolvable(
                    incident, f"no executor for {action.value}")
                return
        yield from self._verify_and_close(incident, link, action)

    def _regresses(self, incident: Incident,
                   action: RepairAction) -> bool:
        """Whether ``action`` walks down this incident's own ladder."""
        ladder = self.ladder.config.ladder
        if action not in ladder:
            return False
        highest = max((ladder.index(attempted)
                       for _, attempted in incident.attempt_history
                       if attempted in ladder), default=-1)
        return ladder.index(action) < highest

    def _backoff(self, retry_policy, retry_index: int):
        """Generator: sleep one jittered exponential-backoff period."""
        self.retry_count += 1
        delay = float(retry_policy.jittered_backoff(retry_index, self.rng))
        self._journal(RecordKind.RETRY_SCHEDULED,
                      retry_index=retry_index, delay=delay)
        if self.obs.enabled:
            self.obs.tracer.record("retry.backoff",
                                   retry_index=retry_index, delay=delay)
            self.obs.count("dcrobot_work_order_retries_total")
        yield self.sim.timeout(delay)

    def _human_follow_up(self, incident: Incident, link, history,
                         action: RepairAction):
        """§3.3.2 robot-requests-human-support follow-up, with timeout."""
        sim = self.sim
        retry = self._make_order(link, action, incident.priority,
                                 incident.symptom, self.humans)
        self.scheduler.before_repair(retry)
        deadline = sim.now + self._timeout_for(self.humans)
        claim = self._claim(retry, self.humans, deadline=deadline)
        outcome = yield from self._await_with_timeout(
            self.humans.submit(retry), retry, self.humans)
        self.scheduler.after_repair(retry)
        self._release(claim)
        if outcome is not None and outcome.rejected:
            self._demote()
            return None
        if outcome is None:
            outcome = self._timeout_outcome(retry, self.humans)
        else:
            self._account(self.humans, outcome)
        incident.attempts.append(outcome)
        incident.attempt_history.append((sim.now, action))
        history.append((sim.now, action))
        return outcome

    def _timeout_for(self, executor) -> float:
        """The ack deadline for an executor (humans run on ticket
        timescales; robots on operation timescales)."""
        if executor is self.humans:
            return self.resilience.human_order_timeout_seconds
        return self.resilience.work_order_timeout_seconds

    def _await_with_timeout(self, done, order: WorkOrder, executor):
        """Generator: wait for an ack, give up after the timeout.

        Returns the :class:`RepairOutcome`, or ``None`` on timeout (a
        late ack is still observed, for accounting and the breaker).
        """
        sim = self.sim
        deadline = sim.timeout(self._timeout_for(executor))
        yield sim.any_of([done, deadline])
        if done.triggered:
            return done.value
        done.callbacks.append(
            lambda event: self._on_late_ack(executor, event))
        return None

    def _timeout_outcome(self, order: WorkOrder,
                         executor) -> RepairOutcome:
        self._journal(RecordKind.ORDER_TIMED_OUT,
                      order_id=order.order_id, link_id=order.link_id,
                      executor_id=self._executor_id(executor))
        self.timeout_count += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_work_order_timeouts_total",
                           executor=self._executor_id(executor))
        self.lost_ack_orders.append(order)
        return RepairOutcome(
            order=order, executor_id=self._executor_id(executor),
            started_at=order.created_at, finished_at=self.sim.now,
            completed=False,
            notes="no acknowledgement before timeout")

    def _on_late_ack(self, executor, event) -> None:
        """A timed-out order's ack finally arrived; learn from it."""
        if not event.ok:
            return
        outcome = event.value
        self.late_ack_count += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_late_acks_total")
        self.late_outcomes.append(outcome)
        self._account(executor, outcome)
        if outcome.completed:
            self._record_breaker(executor, success=True)

    def _record_breaker(self, executor, success: bool) -> None:
        if self.fleet_breaker is None or executor is not self.fleet:
            return
        before = self.fleet_breaker.state
        if success:
            self.fleet_breaker.record_success(self.sim.now)
        else:
            self.fleet_breaker.record_failure(self.sim.now)
        self._journal_breaker(before)

    # -- verification tail (shared by both attempt paths) --------------------

    def _verify_and_close(self, incident: Incident, link,
                          action: RepairAction):
        sim = self.sim
        verify_span = None
        if self.obs.enabled:
            verify_span = self.obs.tracer.start_span(
                "verify",
                parent=self._incident_spans.get(incident.link_id),
                link_id=link.id, action=action.value)
        yield sim.timeout(self.config.verification_delay_seconds)
        self.health.evaluate_link(link, sim.now)
        effective = self._is_healthy(link)
        if verify_span is not None:
            self.obs.tracer.end_span(verify_span, healthy=effective)
        self.policy.record_repair(link, action, effective, sim.now)

        if effective:
            self._close(incident)
        elif incident.attempt_count >= self.config.max_attempts:
            self._mark_unresolvable(incident, "attempt budget exhausted")
        else:
            # Re-arm telemetry: the next detection escalates the ladder.
            incident.in_flight = False
            self.monitor.unmute(link.id)

    def _is_healthy(self, link) -> bool:
        score = self.health.impairment_score(link, self.sim.now)
        return (link.state is LinkState.UP
                and score < self.health.params.marginal_threshold)

    def _account(self, executor, outcome: RepairOutcome) -> None:
        if executor is self.fleet:
            self.supervision_seconds += (outcome.duration
                                         * self.spec.supervision_ratio)

    def _close(self, incident: Incident) -> None:
        incident.resolved = True
        incident.closed_at = self.sim.now
        incident.in_flight = False
        self._journal(RecordKind.INCIDENT_CLOSED,
                      **self._incident_payload(incident))
        self.open_incidents.pop(incident.link_id, None)
        self.closed_incidents.append(incident)
        if self.obs.enabled:
            self._conclude(incident, outcome="resolved")
        self.monitor.unmute(incident.link_id)

    def _mark_unresolvable(self, incident: Incident, reason: str) -> None:
        incident.unresolvable_reason = reason
        incident.in_flight = False
        self._journal(RecordKind.INCIDENT_UNRESOLVABLE,
                      **self._incident_payload(incident))
        self.open_incidents.pop(incident.link_id, None)
        self.unresolved_incidents.append(incident)
        if self.obs.enabled:
            self._conclude(incident, outcome="unresolvable",
                           reason=reason)
        # The link stays muted: re-reporting an unfixable link would
        # spin forever; operators see it in unresolved_incidents.

    def _conclude(self, incident: Incident, outcome: str,
                  **attributes) -> None:
        """Trace + metrics tail shared by close and unresolvable."""
        span = self._incident_spans.pop(incident.link_id, None)
        self.obs.tracer.record(
            "conclude", parent=span, link_id=incident.link_id,
            outcome=outcome, attempts=incident.attempt_count,
            **attributes)
        self.obs.tracer.end_span(span, outcome=outcome)
        self.obs.count(f"dcrobot_incidents_{outcome}_total",
                       symptom=incident.symptom)
        if incident.time_to_repair is not None:
            self.obs.observe("dcrobot_incident_mttr_seconds",
                             incident.time_to_repair,
                             symptom=incident.symptom)
        self.obs.observe("dcrobot_incident_attempts",
                         incident.attempt_count)
        self.obs.gauge("dcrobot_open_incidents",
                       len(self.open_incidents))

    # -- proactive path -------------------------------------------------------------

    def _policy_loop(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.config.policy_interval_seconds)
            eligible = [request
                        for request in self.policy.periodic(sim.now)
                        if request.link_id not in self.open_incidents
                        and request.link_id
                        not in self._proactive_pending]
            if self.planner is not None and len(eligible) > 1:
                # Twin-guided selection: fork the world per candidate,
                # roll each twin ahead, dispatch the predicted-best
                # slice this cycle (the rest re-offer next cycle).
                ranked = self.planner.rank(eligible, sim.now)
                eligible = [score.request for score in
                            ranked[:self.planner.dispatch_quota()]]
            for request in eligible:
                self._proactive_pending.add(request.link_id)
                self._spawn(self._proactive(request))

    def _proactive(self, request: PlanRequest):
        sim = self.sim
        try:
            if self.config.defer_proactive and request.proactive:
                yield sim.timeout(
                    self.scheduler.seconds_until_quiet_window(sim.now))
            if self.impact_gate is not None:
                yield from self.impact_gate.wait_while_hot(
                    sim, request.link_id, request.priority)
            if request.link_id in self.open_incidents:
                return  # it failed for real while we waited
            if (self.resilience is not None
                    and self.active_orders.get(request.link_id)):
                return  # a reactive order already owns this link
            link = self.fabric.links[request.link_id]
            action = request.action or RepairAction.RESEAT
            if not self.ladder.applicable(action, link):
                return
            executor = self._select_executor(action, link)
            if executor is None:
                return
            order = self._make_order(link, action, request.priority,
                                     request.reason, executor)
            self.scheduler.before_repair(order)
            claim = self._claim(order, executor, proactive=True)
            if self.resilience is None:
                outcome = yield executor.submit(order)
            else:
                outcome = yield from self._await_with_timeout(
                    executor.submit(order), order, executor)
            self.scheduler.after_repair(order)
            self._release(claim)
            if outcome is not None and outcome.rejected:
                self._demote()
                return
            if outcome is None:
                self._timeout_outcome(order, executor)
                self._record_breaker(executor, success=False)
                return
            self._account(executor, outcome)
            self.proactive_outcomes.append(outcome)
        finally:
            self._proactive_pending.discard(request.link_id)

    # -- reporting --------------------------------------------------------------------

    def repair_times(self) -> List[float]:
        """Service windows (seconds) of all resolved incidents."""
        return [incident.time_to_repair
                for incident in self.closed_incidents]

    def total_attempts(self) -> int:
        incidents = self.closed_incidents + self.unresolved_incidents \
            + list(self.open_incidents.values())
        return sum(incident.attempt_count for incident in incidents)
