"""The self-maintenance controller — the paper's software-defined
maintenance plane (§2, §4 "Software-defined controllers").

The controller closes the loop the paper describes: telemetry symptoms
come in, a policy decides what deserves work, the escalation ladder
picks the stage, the impact-aware scheduler drains traffic and defers
proactive work to quiet windows, an executor (robot fleet and/or
technician pool, per the automation level) performs the repair, and the
controller verifies the outcome and escalates until the link is healthy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from dcrobot.core.actions import Priority, RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.automation import AutomationLevel, LevelSpec, spec_for
from dcrobot.core.escalation import EscalationLadder
from dcrobot.core.policy import PlanRequest, ReactivePolicy
from dcrobot.core.scheduler import ImpactAwareScheduler
from dcrobot.failures.health import HealthModel
from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation
from dcrobot.telemetry.events import TelemetryEvent
from dcrobot.telemetry.monitor import TelemetryMonitor


@dataclasses.dataclass
class Incident:
    """One link-misbehaviour case, from detection to verified repair."""

    link_id: str
    opened_at: float
    symptom: str
    priority: Priority = Priority.NORMAL
    attempts: List[RepairOutcome] = dataclasses.field(default_factory=list)
    #: (time, action) pairs feeding the escalation ladder.
    attempt_history: List[Tuple[float, RepairAction]] = dataclasses.field(
        default_factory=list)
    resolved: bool = False
    closed_at: Optional[float] = None
    unresolvable_reason: Optional[str] = None
    in_flight: bool = False

    @property
    def time_to_repair(self) -> Optional[float]:
        """Detection-to-verified-fix duration (the service window)."""
        if self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)


@dataclasses.dataclass
class ControllerConfig:
    """Controller behaviour knobs."""

    #: Wait after a repair before verifying (lets our own touch
    #: disturbances decay so we don't misjudge the repair).
    verification_delay_seconds: float = 1200.0
    #: Cadence of the proactive policy loop.
    policy_interval_seconds: float = 3600.0
    #: Attempts per incident before declaring it unresolvable.
    max_attempts: int = 8
    #: Defer proactive work to the scheduler's quiet window.
    defer_proactive: bool = True

    def __post_init__(self) -> None:
        if self.verification_delay_seconds < 0:
            raise ValueError("verification delay must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


class MaintenanceController:
    """Routes symptoms to repairs and verifies the results."""

    def __init__(self, sim: Simulation, fabric: Fabric,
                 health: HealthModel, monitor: TelemetryMonitor,
                 policy: ReactivePolicy,
                 ladder: Optional[EscalationLadder] = None,
                 scheduler: Optional[ImpactAwareScheduler] = None,
                 level: AutomationLevel = AutomationLevel.L0_NO_AUTOMATION,
                 humans=None, fleet=None,
                 config: Optional[ControllerConfig] = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.health = health
        self.monitor = monitor
        self.policy = policy
        self.ladder = ladder or EscalationLadder()
        self.scheduler = scheduler or ImpactAwareScheduler()
        self.level = level
        self.spec: LevelSpec = spec_for(level)
        self.humans = humans
        self.fleet = fleet
        self.config = config or ControllerConfig()
        if humans is None and fleet is None:
            raise ValueError("need at least one executor")

        self.open_incidents: Dict[str, Incident] = {}
        #: Per-link (time, action) repair attempts across *all*
        #: incidents — the paper's escalation keys on re-tickets for the
        #: same link within a window (§3.2), not on one incident's
        #: lifetime, because gray failures re-ticket intermittently.
        self.repair_history: Dict[str, List[Tuple[float, RepairAction]]] \
            = {}
        self.closed_incidents: List[Incident] = []
        self.unresolved_incidents: List[Incident] = []
        self.proactive_outcomes: List[RepairOutcome] = []
        #: Supervision person-seconds consumed by robot work (L2/L3).
        self.supervision_seconds = 0.0
        self._proactive_pending: set = set()

        monitor.subscribe(self.on_event)

    def __repr__(self) -> str:
        return (f"<MaintenanceController {self.level.name} open="
                f"{len(self.open_incidents)} closed="
                f"{len(self.closed_incidents)}>")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch the proactive policy loop."""
        self.sim.process(self._policy_loop())

    # -- reactive path -----------------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        """Telemetry callback: open or continue an incident."""
        request = self.policy.on_symptom(event)
        if request is None:
            self.monitor.unmute(event.link_id)
            return
        incident = self.open_incidents.get(event.link_id)
        if incident is None:
            incident = Incident(link_id=event.link_id,
                                opened_at=event.time,
                                symptom=event.symptom.value,
                                priority=request.priority)
            self.open_incidents[event.link_id] = incident
        if incident.in_flight:
            return  # attempt already running; outcome loop handles it
        incident.in_flight = True
        self.sim.process(self._attempt(incident, request))

    def _select_executor(self, action: RepairAction, link):
        """Pick the executor per automation level and capability."""
        node = self.fabric.node(link.port_a.parent_id)
        rack_id = node.rack_id
        robots_allowed = (self.fleet is not None
                          and action in self.spec.robot_actions
                          and self.fleet.can_execute(action)
                          and rack_id is not None
                          and self.fleet.covers(rack_id))
        if robots_allowed:
            return self.fleet
        if self.humans is not None and self.humans.can_execute(action):
            return self.humans
        return None

    def _attempt(self, incident: Incident, request: PlanRequest):
        sim = self.sim
        link = self.fabric.links[incident.link_id]
        history = self.repair_history.setdefault(link.id, [])
        action = request.action or self.ladder.next_action(
            link, history, sim.now)
        executor = self._select_executor(action, link)
        if executor is None:
            self._mark_unresolvable(
                incident, f"no executor for {action.value}")
            return

        if executor is self.fleet and self.spec.approval_latency_seconds:
            yield sim.timeout(self.spec.approval_latency_seconds)

        order = WorkOrder(link_id=link.id, action=action,
                          created_at=sim.now, priority=incident.priority,
                          symptom=incident.symptom,
                          announced_touches=executor.announce_touches(
                              WorkOrder(link.id, action, sim.now)))
        self.scheduler.before_repair(order)
        outcome = yield executor.submit(order)
        self._account(executor, outcome)
        incident.attempts.append(outcome)
        incident.attempt_history.append((sim.now, action))
        history.append((sim.now, action))

        if outcome.needs_human and self.humans is not None \
                and executor is not self.humans:
            # §3.3.2: the robot requests human support; same action,
            # human hands.
            retry = WorkOrder(link_id=link.id, action=action,
                              created_at=sim.now,
                              priority=incident.priority,
                              symptom=incident.symptom,
                              announced_touches=self.humans.
                              announce_touches(
                                  WorkOrder(link.id, action, sim.now)))
            outcome = yield self.humans.submit(retry)
            incident.attempts.append(outcome)
            incident.attempt_history.append((sim.now, action))
            history.append((sim.now, action))
        self.scheduler.after_repair(order)

        yield sim.timeout(self.config.verification_delay_seconds)
        self.health.evaluate_link(link, sim.now)
        effective = self._is_healthy(link)
        self.policy.record_repair(link, action, effective, sim.now)

        if effective:
            self._close(incident)
        elif incident.attempt_count >= self.config.max_attempts:
            self._mark_unresolvable(incident, "attempt budget exhausted")
        else:
            # Re-arm telemetry: the next detection escalates the ladder.
            incident.in_flight = False
            self.monitor.unmute(link.id)

    def _is_healthy(self, link) -> bool:
        score = self.health.impairment_score(link, self.sim.now)
        return (link.state is LinkState.UP
                and score < self.health.params.marginal_threshold)

    def _account(self, executor, outcome: RepairOutcome) -> None:
        if executor is self.fleet:
            self.supervision_seconds += (outcome.duration
                                         * self.spec.supervision_ratio)

    def _close(self, incident: Incident) -> None:
        incident.resolved = True
        incident.closed_at = self.sim.now
        incident.in_flight = False
        self.open_incidents.pop(incident.link_id, None)
        self.closed_incidents.append(incident)
        self.monitor.unmute(incident.link_id)

    def _mark_unresolvable(self, incident: Incident, reason: str) -> None:
        incident.unresolvable_reason = reason
        incident.in_flight = False
        self.open_incidents.pop(incident.link_id, None)
        self.unresolved_incidents.append(incident)
        # The link stays muted: re-reporting an unfixable link would
        # spin forever; operators see it in unresolved_incidents.

    # -- proactive path -------------------------------------------------------------

    def _policy_loop(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.config.policy_interval_seconds)
            for request in self.policy.periodic(sim.now):
                if request.link_id in self.open_incidents:
                    continue
                if request.link_id in self._proactive_pending:
                    continue
                self._proactive_pending.add(request.link_id)
                sim.process(self._proactive(request))

    def _proactive(self, request: PlanRequest):
        sim = self.sim
        try:
            if self.config.defer_proactive and request.proactive:
                yield sim.timeout(
                    self.scheduler.seconds_until_quiet_window(sim.now))
            if request.link_id in self.open_incidents:
                return  # it failed for real while we waited
            link = self.fabric.links[request.link_id]
            action = request.action or RepairAction.RESEAT
            if not self.ladder.applicable(action, link):
                return
            executor = self._select_executor(action, link)
            if executor is None:
                return
            order = WorkOrder(link_id=link.id, action=action,
                              created_at=sim.now,
                              priority=request.priority,
                              symptom=request.reason,
                              announced_touches=executor.announce_touches(
                                  WorkOrder(link.id, action, sim.now)))
            self.scheduler.before_repair(order)
            outcome = yield executor.submit(order)
            self.scheduler.after_repair(order)
            self._account(executor, outcome)
            self.proactive_outcomes.append(outcome)
        finally:
            self._proactive_pending.discard(request.link_id)

    # -- reporting --------------------------------------------------------------------

    def repair_times(self) -> List[float]:
        """Service windows (seconds) of all resolved incidents."""
        return [incident.time_to_repair
                for incident in self.closed_incidents]

    def total_attempts(self) -> int:
        incidents = self.closed_incidents + self.unresolved_incidents \
            + list(self.open_incidents.values())
        return sum(incident.attempt_count for incident in incidents)
