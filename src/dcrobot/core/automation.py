"""Automation levels 0–4 (§2.1).

The paper adapts the SAE driving-automation taxonomy to datacenter
maintenance.  Each level is a :class:`LevelSpec` describing who executes
which repairs and how much human supervision robot work consumes — the
controller uses the spec to route work orders, and the cost model uses
the supervision ratios.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet

from dcrobot.core.actions import RepairAction

_BASIC_ROBOT_ACTIONS = frozenset({
    RepairAction.RESEAT,
    RepairAction.CLEAN,
    RepairAction.REPLACE_TRANSCEIVER,
})


class AutomationLevel(enum.IntEnum):
    """The five levels of §2.1."""

    L0_NO_AUTOMATION = 0
    L1_OPERATOR_ASSISTANCE = 1
    L2_PARTIAL_AUTOMATION = 2
    L3_HIGH_AUTOMATION = 3
    L4_FULL_AUTOMATION = 4


@dataclasses.dataclass(frozen=True)
class LevelSpec:
    """What an automation level permits and what it costs in oversight."""

    level: AutomationLevel
    description: str
    #: Actions robots may execute autonomously at this level.
    robot_actions: FrozenSet[RepairAction]
    #: Human supervision time as a fraction of robot operation time
    #: (teleoperation/supervision at L2, spot audits at L3+).
    supervision_ratio: float
    #: Human approval latency added before each robot operation.
    approval_latency_seconds: float
    #: Whether technicians use Level-1 assist devices (better inspection
    #: and cleaning quality when working manually).
    operator_assist_devices: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.supervision_ratio <= 1.0:
            raise ValueError("supervision_ratio outside [0, 1]")
        if self.approval_latency_seconds < 0:
            raise ValueError("approval latency must be >= 0")


LEVEL_SPECS = {
    AutomationLevel.L0_NO_AUTOMATION: LevelSpec(
        level=AutomationLevel.L0_NO_AUTOMATION,
        description="All tasks performed manually by skilled technicians.",
        robot_actions=frozenset(),
        supervision_ratio=0.0,
        approval_latency_seconds=0.0,
        operator_assist_devices=False,
    ),
    AutomationLevel.L1_OPERATOR_ASSISTANCE: LevelSpec(
        level=AutomationLevel.L1_OPERATOR_ASSISTANCE,
        description=("Automated devices augment human operators (the "
                     "cleaning unit as a standalone technician tool)."),
        robot_actions=frozenset(),
        supervision_ratio=0.0,
        approval_latency_seconds=0.0,
        operator_assist_devices=True,
    ),
    AutomationLevel.L2_PARTIAL_AUTOMATION: LevelSpec(
        level=AutomationLevel.L2_PARTIAL_AUTOMATION,
        description=("Specialized tasks performed autonomously with "
                     "human supervision or teleoperation."),
        robot_actions=_BASIC_ROBOT_ACTIONS,
        supervision_ratio=0.5,
        approval_latency_seconds=600.0,
        operator_assist_devices=True,
    ),
    AutomationLevel.L3_HIGH_AUTOMATION: LevelSpec(
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        description=("Fully autonomous end-to-end tasks with limited "
                     "human supervision."),
        robot_actions=_BASIC_ROBOT_ACTIONS,
        supervision_ratio=0.05,
        approval_latency_seconds=0.0,
        operator_assist_devices=True,
    ),
    AutomationLevel.L4_FULL_AUTOMATION: LevelSpec(
        level=AutomationLevel.L4_FULL_AUTOMATION,
        description=("Every repair operation fully autonomous, including "
                     "cable and switchgear replacement."),
        robot_actions=frozenset(RepairAction),
        supervision_ratio=0.01,
        approval_latency_seconds=0.0,
        operator_assist_devices=False,
    ),
}


def spec_for(level: AutomationLevel) -> LevelSpec:
    """The :class:`LevelSpec` for a level."""
    return LEVEL_SPECS[level]
