"""Maintenance actions, work orders, and repair outcomes.

This is the shared vocabulary between the control plane and its two
executor backends (technician workforce, robot fleet).  The action set
is exactly the paper's §3.2 repair progression: reseat → clean →
replace transceiver → replace cable → replace switchgear.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import List

_ORDER_IDS = itertools.count()


class RepairAction(enum.Enum):
    """Physical repair operations, in escalation order."""

    RESEAT = "reseat"
    CLEAN = "clean"
    REPLACE_TRANSCEIVER = "replace-transceiver"
    REPLACE_CABLE = "replace-cable"
    REPLACE_SWITCHGEAR = "replace-switchgear"

    @property
    def ladder_rank(self) -> int:
        """Position in the default escalation ladder (0 = first tried)."""
        return _LADDER_RANK[self]


_LADDER_RANK = {
    RepairAction.RESEAT: 0,
    RepairAction.CLEAN: 1,
    RepairAction.REPLACE_TRANSCEIVER: 2,
    RepairAction.REPLACE_CABLE: 3,
    RepairAction.REPLACE_SWITCHGEAR: 4,
}


class Priority(enum.Enum):
    """Ticket/work-order priority (drives technician dispatch delay)."""

    HIGH = 0
    NORMAL = 1

    def __lt__(self, other: "Priority") -> bool:
        return self.value < other.value


@dataclasses.dataclass
class WorkOrder:
    """One repair task issued by the control plane."""

    link_id: str
    action: RepairAction
    created_at: float
    priority: Priority = Priority.NORMAL
    symptom: str = ""
    #: Links the executor announces it may physically contact (§2's
    #: pre-maintenance cable-touch report).
    announced_touches: List[str] = dataclasses.field(default_factory=list)
    #: Leadership fencing token of the dispatching controller; executors
    #: reject orders whose token is older than the highest they've seen
    #: (split-brain protection).  ``None`` = leadership disabled.
    fencing_token: int = None
    order_id: int = dataclasses.field(
        default_factory=lambda: next(_ORDER_IDS))

    def __repr__(self) -> str:
        return (f"<WorkOrder #{self.order_id} {self.action.value} "
                f"{self.link_id} {self.priority.name}>")


@dataclasses.dataclass
class RepairOutcome:
    """What actually happened when a work order was executed."""

    order: WorkOrder
    executor_id: str
    started_at: float
    finished_at: float
    #: The action was physically completed (not: the link is healthy —
    #: the controller verifies that separately via telemetry).
    completed: bool
    #: Executor gave up and needs a different capability (e.g. a robot
    #: that cannot verify cleanliness "requests human support", §3.3.2).
    needs_human: bool = False
    #: The executor refused the order outright (stale fencing token):
    #: no physical work happened, and the dispatcher is deposed.
    rejected: bool = False
    notes: str = ""
    #: Collateral damage of the physical contact, if any.
    secondary_disturbed: int = 0
    secondary_damaged: int = 0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def secondary_failures(self) -> int:
        return self.secondary_disturbed + self.secondary_damaged
