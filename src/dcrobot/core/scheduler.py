"""Impact-aware repair scheduling (§2).

Before hardware is touched the scheduler (i) drains the target link —
and the links the executor announces it may contact — out of routing, so
traffic migrates ahead of the physical disturbance, and (ii) defers
non-urgent proactive work to low-utilization windows ("During periods of
low utilization, automation hardware can be used for proactive
maintenance at little to no additional cost").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from dcrobot.core.actions import WorkOrder
from dcrobot.traffic.routing import EcmpRouter

SECONDS_PER_DAY = 86400.0


@dataclasses.dataclass
class SchedulerConfig:
    """Scheduling knobs."""

    #: Drain announced-contact neighbours too (the ablation knob for
    #: impact-aware vs naive scheduling).
    drain_announced: bool = True
    #: Daily low-utilization window for proactive work, as fractional
    #: day-of-hours [start, end).
    quiet_window_start_hour: float = 1.0
    quiet_window_end_hour: float = 5.0

    def __post_init__(self) -> None:
        if not (0 <= self.quiet_window_start_hour
                < self.quiet_window_end_hour <= 24):
            raise ValueError("invalid quiet window")


class ImpactAwareScheduler:
    """Drains traffic around repairs and times proactive work."""

    def __init__(self, router: Optional[EcmpRouter] = None,
                 config: Optional[SchedulerConfig] = None,
                 traffic=None) -> None:
        self.router = router
        #: Columnar traffic engine (duck-typed: ``drain``/``undrain``);
        #: drains apply to it alongside the object router so modelled
        #: traffic actually migrates before the physical disturbance.
        self.traffic = traffic
        self.config = config or SchedulerConfig()
        #: link ids drained per order id, for symmetric undrain.
        self._drained_for_order = {}

    # -- quiet-window timing ------------------------------------------------

    def seconds_until_quiet_window(self, now: float) -> float:
        """Delay until the next proactive-maintenance window opens."""
        config = self.config
        day_seconds = now % SECONDS_PER_DAY
        start = config.quiet_window_start_hour * 3600.0
        end = config.quiet_window_end_hour * 3600.0
        if start <= day_seconds < end:
            return 0.0
        if day_seconds < start:
            return start - day_seconds
        return SECONDS_PER_DAY - day_seconds + start

    def in_quiet_window(self, now: float) -> bool:
        return self.seconds_until_quiet_window(now) == 0.0

    # -- drain management ---------------------------------------------------------

    def before_repair(self, order: WorkOrder) -> List[str]:
        """Drain the target (and announced touches); returns drained ids."""
        if self.router is None and self.traffic is None:
            return []
        drained = [order.link_id]
        if self.config.drain_announced:
            drained.extend(order.announced_touches)
        for link_id in drained:
            if self.router is not None:
                self.router.drain(link_id)
            if self.traffic is not None:
                self.traffic.drain(link_id)
        self._drained_for_order[order.order_id] = drained
        return drained

    def after_repair(self, order: WorkOrder) -> None:
        """Undrain everything drained for this order."""
        for link_id in self._drained_for_order.pop(order.order_id, []):
            if self.router is not None:
                self.router.undrain(link_id)
            if self.traffic is not None:
                self.traffic.undrain(link_id)

    def outstanding_drains(self) -> Dict[int, List[str]]:
        """Order id -> link ids still drained on its behalf.

        The safety monitor cross-checks this against the controller's
        in-flight orders: a drain whose order is no longer in flight is
        traffic that was never given back.
        """
        return {order_id: list(links) for order_id, links
                in self._drained_for_order.items()}
