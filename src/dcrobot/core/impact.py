"""Congestion-aware maintenance gating (§2 impact-aware scheduling).

Draining a link for maintenance moves its traffic onto the ECMP
siblings that share its flow pairs.  When those siblings are already
hot, the reseat that was supposed to be invisible becomes a p99 FCT
regression.  The :class:`CongestionGate` asks the columnar traffic
engine the only question that matters before touching hardware: *if
this link's last-window bytes moved onto its sibling set, how hot
would the group run?* — and defers (bounded) while the answer exceeds
the hot-utilization threshold.

The gate is deliberately advisory and bounded: HIGH-priority repairs
are exempt (a hard-down link is already worse than congestion), links
that carry no traffic (DOWN / under maintenance) are never deferred
(their bytes already moved), and after ``max_defer_seconds`` the work
proceeds hot rather than starving.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from dcrobot.core.actions import Priority
from dcrobot.network.state import FLAPPING_CODE
from dcrobot.obs import NULL_OBS


@dataclasses.dataclass
class ImpactConfig:
    """Congestion-gate knobs."""

    #: Projected ECMP-group utilization above which work is deferred.
    hot_utilization: float = 0.7
    #: Total defer budget per work item; after this the repair runs hot.
    max_defer_seconds: float = 4 * 3600.0
    #: Re-evaluation cadence while deferred.
    recheck_seconds: float = 900.0
    #: HIGH-priority repairs skip the gate entirely.
    exempt_high_priority: bool = True

    def __post_init__(self) -> None:
        if self.hot_utilization <= 0:
            raise ValueError("hot_utilization must be > 0")
        if self.max_defer_seconds < 0:
            raise ValueError("max_defer_seconds must be >= 0")
        if self.recheck_seconds <= 0:
            raise ValueError("recheck_seconds must be > 0")


class CongestionGate:
    """Defers maintenance while a drain would overload ECMP siblings."""

    def __init__(self, traffic, config: Optional[ImpactConfig] = None,
                 obs=NULL_OBS) -> None:
        self.traffic = traffic
        self.config = config or ImpactConfig()
        self.obs = obs
        #: Defer periods slept (each ``recheck_seconds`` long or less).
        self.deferrals = 0
        #: Work items that exhausted the defer budget and ran hot.
        self.overrides = 0
        #: Total simulated seconds maintenance waited on congestion.
        self.defer_seconds = 0.0

    def projected_utilization(self, link_id: str) -> float:
        """The engine's post-drain sibling-group utilization."""
        if self.traffic is None:
            return 0.0
        return self.traffic.projected_group_utilization(link_id)

    def should_defer(self, link_id: str,
                     priority: Priority = Priority.NORMAL) -> bool:
        """Whether touching ``link_id`` now would push its ECMP group
        past the hot threshold."""
        if self.traffic is None:
            return False
        if self.config.exempt_high_priority \
                and priority is Priority.HIGH:
            return False
        fs = self.traffic.fabric.state
        row = fs.index_of.get(link_id)
        if row is None:
            return False
        if fs.state_code[row] > FLAPPING_CODE:
            # The link carries no traffic; its bytes already moved.
            return False
        utilization = self.projected_utilization(link_id)
        return utilization > self.config.hot_utilization

    def wait_while_hot(self, sim, link_id: str,
                       priority: Priority = Priority.NORMAL):
        """Generator: sleep in ``recheck_seconds`` steps while the
        drain would run the sibling group hot, up to the defer budget."""
        waited = 0.0
        while self.should_defer(link_id, priority):
            remaining = self.config.max_defer_seconds - waited
            if remaining <= 0:
                self.overrides += 1
                if self.obs.enabled:
                    self.obs.count(
                        "dcrobot_congestion_overrides_total")
                    self.obs.tracer.record(
                        "congestion.override", link_id=link_id,
                        waited=waited)
                break
            step = min(self.config.recheck_seconds, remaining)
            self.deferrals += 1
            self.defer_seconds += step
            if self.obs.enabled:
                self.obs.count("dcrobot_congestion_deferrals_total")
            yield sim.timeout(step)
            waited += step
        return waited
