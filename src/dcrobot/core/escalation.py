"""The repair escalation ladder (§3.2).

"When a network link fails or flaps the first time a ticket is created
for that link, the usual first step is to reseat the transceiver. ...
If a link has failed, and a reseating of the transceiver has not solved
the problem, another ticket will be generated [→ cleaning]. ... the next
common action is then to replace the transceivers and ultimately the
cable. If this does not solve the problem, then the final stage is to
replace the NIC, line card, or switch."

The ladder is stateless over an explicit attempt history: given the
repairs already tried on a link *within the escalation window*, it
returns the next stage.  Stages that do not apply (cleaning an
integrated cable) are skipped; after the final stage the ladder restarts
— the hardware is new, so its next incident is a fresh one.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from dcrobot.core.actions import RepairAction
from dcrobot.network.link import Link

DEFAULT_LADDER: Tuple[RepairAction, ...] = (
    RepairAction.RESEAT,
    RepairAction.CLEAN,
    RepairAction.REPLACE_TRANSCEIVER,
    RepairAction.REPLACE_CABLE,
    RepairAction.REPLACE_SWITCHGEAR,
)


@dataclasses.dataclass
class EscalationConfig:
    """Ladder order and the repeat-ticket window."""

    ladder: Tuple[RepairAction, ...] = DEFAULT_LADDER
    #: A re-ticket within this window escalates; later ones start over.
    window_seconds: float = 14 * 86400.0

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if len(set(self.ladder)) != len(self.ladder):
            raise ValueError("ladder contains duplicate actions")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")


class EscalationLadder:
    """Chooses the next repair action for a link."""

    def __init__(self, config: Optional[EscalationConfig] = None) -> None:
        self.config = config or EscalationConfig()

    def applicable(self, action: RepairAction, link: Link) -> bool:
        """Whether a stage makes sense for this link's construction."""
        if action is RepairAction.CLEAN:
            return link.cable.cleanable
        return True

    def highest_recent_stage(
            self, history: Sequence[Tuple[float, RepairAction]],
            now: float) -> int:
        """Index of the highest ladder stage tried in-window (-1: none)."""
        ladder = self.config.ladder
        highest = -1
        for when, action in history:
            if now - when <= self.config.window_seconds \
                    and action in ladder:
                highest = max(highest, ladder.index(action))
        return highest

    def is_exhausted(self, link: Link,
                     history: Sequence[Tuple[float, RepairAction]],
                     now: float) -> bool:
        """Whether every applicable stage was already tried in-window.

        The legacy behaviour on exhaustion is to restart the ladder (the
        hardware is new).  The hardened controller instead checks this
        first and hands the incident to a human: restarting would break
        the per-incident stage-monotonicity invariant and loop robots
        over a link they demonstrably cannot fix.
        """
        highest = self.highest_recent_stage(history, now)
        ladder = self.config.ladder
        for index in range(highest + 1, len(ladder)):
            if self.applicable(ladder[index], link):
                return False
        return highest >= 0

    def next_action(self, link: Link,
                    history: Sequence[Tuple[float, RepairAction]],
                    now: float) -> RepairAction:
        """The next stage given (time, action) attempts, newest last.

        Only attempts within the escalation window count; the next stage
        is the first applicable ladder entry after the highest stage
        already tried in-window.
        """
        ladder = self.config.ladder
        highest = self.highest_recent_stage(history, now)
        for index in range(highest + 1, len(ladder)):
            if self.applicable(ladder[index], link):
                return ladder[index]
        # Ladder exhausted inside the window: the gear is new hardware
        # now, so start over.
        for action in ladder:
            if self.applicable(action, link):
                return action
        raise ValueError(f"no applicable action for link {link.id}")

    def stages_for(self, link: Link) -> List[RepairAction]:
        """The concrete ladder this link would walk (skips N/A stages)."""
        return [action for action in self.config.ladder
                if self.applicable(action, link)]
