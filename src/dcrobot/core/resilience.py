"""Control-plane robustness primitives: retry, backoff, circuit breaking.

The paper's maintenance plane assumes its own actuators and sensors can
misbehave — robots jam mid-reseat, acknowledgements get lost, telemetry
drops out (§2, §4).  This module provides the machinery the controller
uses to stay live anyway:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  bounded jitter (drawn from the simulation's RNG, so chaos runs stay
  seed-deterministic).
* :class:`CircuitBreaker` — takes a repeatedly failing executor (the
  robot fleet) out of rotation for a cooldown, routing work back to the
  technician pool; a half-open probe readmits it.
* :class:`ResilienceConfig` — the controller-facing bundle: per-work-
  order timeout plus the two policies above.  ``None`` on the controller
  means the legacy trusting behaviour (no timeout, no retry).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple

import numpy as np

from dcrobot.obs import NULL_OBS


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and bounded jitter.

    The *base* schedule ``base_delay * multiplier**retry`` (capped at
    ``max_delay_seconds``) is deterministic and monotone non-decreasing;
    jitter perturbs each delay multiplicatively within
    ``[1 - jitter_fraction, 1 + jitter_fraction]``.
    """

    #: Re-dispatches allowed after the first attempt of a work order.
    max_retries: int = 3
    base_delay_seconds: float = 120.0
    multiplier: float = 2.0
    max_delay_seconds: float = 4.0 * 3600.0
    #: Multiplicative jitter half-width in [0, 1).
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_seconds < self.base_delay_seconds:
            raise ValueError("max_delay_seconds must be >= base delay")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def backoff_seconds(self, retry_index: int) -> float:
        """The deterministic base delay before retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        delay = self.base_delay_seconds * self.multiplier ** retry_index
        return float(min(delay, self.max_delay_seconds))

    def schedule(self) -> List[float]:
        """All base delays, first retry first (monotone non-decreasing)."""
        return [self.backoff_seconds(index)
                for index in range(self.max_retries)]

    def jitter_bounds(self, retry_index: int) -> Tuple[float, float]:
        """The closed interval a jittered delay must fall in."""
        base = self.backoff_seconds(retry_index)
        return (base * (1.0 - self.jitter_fraction),
                base * (1.0 + self.jitter_fraction))

    def jittered_backoff(self, retry_index: int,
                         rng: np.random.Generator) -> float:
        """A jittered delay for retry ``retry_index``, drawn from ``rng``."""
        base = self.backoff_seconds(retry_index)
        if self.jitter_fraction == 0.0 or base == 0.0:
            return base
        factor = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return float(base * factor)


class BreakerState(enum.Enum):
    """Circuit-breaker states (classic three-state machine)."""

    CLOSED = "closed"        #: executor trusted, all traffic flows
    OPEN = "open"            #: executor benched for the cooldown
    HALF_OPEN = "half-open"  #: one probe order in flight


@dataclasses.dataclass(frozen=True)
class BreakerPolicy:
    """When to bench an executor and when to probe it again."""

    #: Consecutive failures (or timeouts) that open the breaker.
    failure_threshold: int = 3
    #: Bench duration before a half-open probe is allowed.
    cooldown_seconds: float = 4.0 * 3600.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds <= 0:
            raise ValueError("cooldown_seconds must be > 0")


class CircuitBreaker:
    """Tracks one executor's reliability and gates dispatch to it."""

    def __init__(self, policy: Optional[BreakerPolicy] = None,
                 obs=NULL_OBS) -> None:
        self.policy = policy or BreakerPolicy()
        self.obs = obs if obs is not None else NULL_OBS
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: Times the breaker tripped CLOSED/HALF_OPEN -> OPEN.
        self.trips = 0
        #: (time, new state) transition log, for reporting.
        self.transitions: List[Tuple[float, BreakerState]] = []

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state.value} "
                f"failures={self.consecutive_failures} "
                f"trips={self.trips}>")

    def _transition(self, now: float, state: BreakerState) -> None:
        if state is self.state:
            return
        self.state = state
        self.transitions.append((now, state))
        if self.obs.enabled:
            self.obs.tracer.record("breaker.transition",
                                   state=state.value)
            self.obs.count("dcrobot_breaker_transitions_total",
                           state=state.value)

    def allows(self, now: float) -> bool:
        """Whether a new order may be dispatched to the executor.

        While OPEN, returns True exactly once per elapsed cooldown —
        the half-open probe; further requests are refused until the
        probe's outcome is recorded.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.policy.cooldown_seconds:
                self._transition(now, BreakerState.HALF_OPEN)
                return True
            return False
        return False  # HALF_OPEN: probe already outstanding

    def record_success(self, now: float) -> None:
        """A dispatched order completed successfully."""
        self.consecutive_failures = 0
        self._transition(now, BreakerState.CLOSED)

    def record_failure(self, now: float) -> None:
        """A dispatched order failed, timed out, or was lost."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
        elif (self.state is BreakerState.CLOSED
                and self.consecutive_failures
                >= self.policy.failure_threshold):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.opened_at = now
        self.trips += 1
        self._transition(now, BreakerState.OPEN)


@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """The hardened controller's knobs (``None`` = legacy behaviour)."""

    #: Give up waiting for a work-order acknowledgement after this long.
    work_order_timeout_seconds: float = 8.0 * 3600.0
    #: Human orders get a day-scale budget: ticket dispatch alone has a
    #: ~36 h median, and timing that out as "lost" would churn every
    #: legitimate human repair into retries.
    human_order_timeout_seconds: float = 4.0 * 86400.0
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = dataclasses.field(
        default_factory=BreakerPolicy)
    #: Re-check link health before re-dispatching (idempotency guard:
    #: a lost ack does not mean a lost repair).
    verify_before_retry: bool = True

    def __post_init__(self) -> None:
        if self.work_order_timeout_seconds <= 0:
            raise ValueError("work_order_timeout_seconds must be > 0")
        if self.human_order_timeout_seconds <= 0:
            raise ValueError("human_order_timeout_seconds must be > 0")
