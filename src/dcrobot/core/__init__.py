"""The self-maintenance control plane (S9) — the paper's core
contribution: work orders, repair physics, escalation, policies,
impact-aware scheduling, automation levels, controller, service API."""

from dcrobot.core.actions import (
    Priority,
    RepairAction,
    RepairOutcome,
    WorkOrder,
)
from dcrobot.core.api import MaintenanceServiceAPI, MaintenanceStatus
from dcrobot.core.audit import (
    AuditLog,
    AuditRecord,
    AuthorizationError,
    CapabilityToken,
    MaintenanceAuthorizer,
)
from dcrobot.core.automation import (
    LEVEL_SPECS,
    AutomationLevel,
    LevelSpec,
    spec_for,
)
from dcrobot.core.controller import (
    ActiveOrder,
    ControllerConfig,
    Incident,
    MaintenanceController,
)
from dcrobot.core.journal import (
    JOURNAL_SCHEMA_VERSION,
    FileJournalStore,
    JournalRecord,
    MemoryJournalStore,
    RecordKind,
    WriteAheadJournal,
)
from dcrobot.core.leadership import (
    FencedRejection,
    FencingGuard,
    LeaseConfig,
    LeaseCoordinator,
)
from dcrobot.core.recovery import (
    ControllerSupervisor,
    JournalReplayError,
    RecoveredState,
    replay_journal,
    restore_controller,
)
from dcrobot.core.escalation import (
    DEFAULT_LADDER,
    EscalationConfig,
    EscalationLadder,
)
from dcrobot.core.impact import CongestionGate, ImpactConfig
from dcrobot.core.policy import (
    NullPolicy,
    PlanRequest,
    PredictivePolicy,
    ProactivePolicy,
    ReactivePolicy,
)
from dcrobot.core.repairs import (
    ASSISTED_TECHNICIAN_SKILL,
    ROBOT_SKILL,
    TECHNICIAN_SKILL,
    RepairPhysics,
    SkillProfile,
)
from dcrobot.core.planner import FleetPlan, FleetPlanner, erlang_c
from dcrobot.core.reconfigure import (
    RewirePlan,
    RewireReport,
    RewireStep,
    RoboticRewirer,
    StepKind,
    plan_rewiring,
)
from dcrobot.core.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)
from dcrobot.core.scheduler import ImpactAwareScheduler, SchedulerConfig

__all__ = [
    "RepairAction",
    "Priority",
    "WorkOrder",
    "RepairOutcome",
    "RepairPhysics",
    "SkillProfile",
    "TECHNICIAN_SKILL",
    "ROBOT_SKILL",
    "ASSISTED_TECHNICIAN_SKILL",
    "EscalationLadder",
    "EscalationConfig",
    "DEFAULT_LADDER",
    "ReactivePolicy",
    "NullPolicy",
    "ProactivePolicy",
    "PredictivePolicy",
    "PlanRequest",
    "ImpactAwareScheduler",
    "SchedulerConfig",
    "CongestionGate",
    "ImpactConfig",
    "AutomationLevel",
    "LevelSpec",
    "LEVEL_SPECS",
    "spec_for",
    "MaintenanceController",
    "ControllerConfig",
    "Incident",
    "ActiveOrder",
    "RetryPolicy",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "MaintenanceServiceAPI",
    "MaintenanceStatus",
    "AuditLog",
    "AuditRecord",
    "CapabilityToken",
    "MaintenanceAuthorizer",
    "AuthorizationError",
    "FleetPlanner",
    "FleetPlan",
    "erlang_c",
    "plan_rewiring",
    "RewirePlan",
    "RewireStep",
    "RewireReport",
    "RoboticRewirer",
    "StepKind",
    "JOURNAL_SCHEMA_VERSION",
    "RecordKind",
    "JournalRecord",
    "MemoryJournalStore",
    "FileJournalStore",
    "WriteAheadJournal",
    "LeaseConfig",
    "LeaseCoordinator",
    "FencingGuard",
    "FencedRejection",
    "JournalReplayError",
    "RecoveredState",
    "replay_journal",
    "restore_controller",
    "ControllerSupervisor",
]
