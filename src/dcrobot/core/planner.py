"""Planning: fleet sizing and twin-guided repair-plan ranking.

Two planners live here:

* :class:`FleetPlanner` — §3.4's "how many robots does a hall need?":
  model the fleet as an M/M/c queue (Poisson incident arrivals,
  exponential-ish service), size c so the predicted repair wait meets
  a target, and report utilization.  The analytic prediction
  deliberately ignores verification delays and human-fallback actions
  — it sizes the *robotic* stage; integration tests check it against
  full simulations.

* :class:`TwinPlanner` — §4's predictive-maintenance loop made
  concrete: fork the live world per candidate repair
  (:class:`~dcrobot.twin.world.TwinWorld`), roll each twin a few
  traffic windows ahead under the live matrix, and rank plans by
  predicted post-repair SMI and p99 flow-completion time.  The
  controller consults it (``planner=`` flag) before dispatching
  proactive work, so competing campaign candidates are ordered by
  what the twin says the fabric will look like, not by queue order.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

import numpy as np

from dcrobot.failures.hazards import per_year
from dcrobot.failures.injector import FailureRates
from dcrobot.robots.fleet import FleetConfig
from dcrobot.robots.mobility import MobilityScope
from dcrobot.topology.base import Topology


def erlang_c(servers: int, offered_load: float) -> float:
    """P(wait > 0) for an M/M/c queue with offered load in Erlangs."""
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load >= servers:
        return 1.0
    # Stable iterative form of the Erlang-C formula.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        total += term
    term *= offered_load / servers
    blocking = term * servers / (servers - offered_load)
    return blocking / (total + blocking)


@dataclasses.dataclass(frozen=True)
class FleetPlan:
    """The planner's recommendation and its queueing prediction."""

    manipulators: int
    cleaners: int
    scope: MobilityScope
    predicted_wait_seconds: float
    predicted_repair_seconds: float
    utilization: float
    incident_rate_per_hour: float

    def to_fleet_config(self) -> FleetConfig:
        return FleetConfig(manipulators=self.manipulators,
                           cleaners=self.cleaners, scope=self.scope)

    def __repr__(self) -> str:
        return (f"<FleetPlan {self.manipulators}+{self.cleaners} "
                f"{self.scope.value} repair~"
                f"{self.predicted_repair_seconds:.0f}s "
                f"util={self.utilization:.1%}>")


class FleetPlanner:
    """Sizes a robot fleet for a hall and fault environment."""

    def __init__(self, topology: Topology,
                 rates: Optional[FailureRates] = None,
                 robot_speed_m_s: float = 0.5,
                 mean_operation_seconds: float = 250.0,
                 alignment_seconds: float = 30.0) -> None:
        if mean_operation_seconds <= 0:
            raise ValueError("mean_operation_seconds must be > 0")
        self.topology = topology
        self.rates = rates or FailureRates()
        self.robot_speed_m_s = robot_speed_m_s
        self.mean_operation_seconds = mean_operation_seconds
        self.alignment_seconds = alignment_seconds

    # -- model inputs -----------------------------------------------------------

    def incident_rate_per_second(self) -> float:
        """Fleet-wide robot-serviceable incident arrival rate.

        Cable and switchgear failures fall back to humans at L3, so
        they are excluded from the robotic queue.
        """
        robot_rate = (self.rates.total - self.rates.cable_damage
                      - self.rates.switch_hw)
        return per_year(robot_rate) * len(self.topology.fabric.links)

    def mean_travel_seconds(self) -> float:
        """Expected aisle travel to a uniformly chosen occupied rack.

        Assumes home positions amortize to the hall centroid — a good
        approximation once robots visit faults in random racks.
        """
        fabric = self.topology.fabric
        racks = sorted({switch.rack_id
                        for switch in fabric.switches.values()
                        if switch.rack_id})
        if len(racks) < 2:
            return self.alignment_seconds
        positions = [fabric.layout.racks[rack].position
                     for rack in racks]
        centroid_x = float(np.mean([p.x for p in positions]))
        centroid_y = float(np.mean([p.y for p in positions]))
        mean_distance = float(np.mean(
            [abs(p.x - centroid_x) + abs(p.y - centroid_y)
             for p in positions]))
        return (mean_distance / self.robot_speed_m_s
                + self.alignment_seconds)

    def service_seconds(self) -> float:
        """Mean robot service time per incident."""
        return self.mean_travel_seconds() + self.mean_operation_seconds

    # -- planning ------------------------------------------------------------------

    def predict(self, manipulators: int) -> FleetPlan:
        """Queueing prediction for a fleet of given size."""
        arrival = self.incident_rate_per_second()
        service = self.service_seconds()
        offered = arrival * service
        wait_probability = erlang_c(manipulators, offered)
        if offered >= manipulators:
            wait = float("inf")
        else:
            wait = (wait_probability * service
                    / (manipulators - offered))
        cleaners = max(1, math.ceil(manipulators / 2))
        return FleetPlan(
            manipulators=manipulators, cleaners=cleaners,
            scope=MobilityScope.HALL,
            predicted_wait_seconds=wait,
            predicted_repair_seconds=wait + service,
            utilization=min(1.0, offered / manipulators),
            incident_rate_per_hour=arrival * 3600.0)

    def recommend(self, target_repair_seconds: float = 1800.0,
                  max_manipulators: int = 64) -> FleetPlan:
        """Smallest fleet whose predicted repair time meets the target."""
        if target_repair_seconds <= 0:
            raise ValueError("target must be > 0")
        best = None
        for manipulators in range(1, max_manipulators + 1):
            plan = self.predict(manipulators)
            best = plan
            if plan.predicted_repair_seconds <= target_repair_seconds:
                return plan
        return best  # largest considered; caller sees the miss


@dataclasses.dataclass(frozen=True)
class TwinPlannerConfig:
    """Knobs for twin-guided plan ranking."""

    #: Traffic windows the link spends under maintenance in the twin.
    repair_windows: int = 1
    #: Traffic windows rolled after the repair completes.  The score's
    #: FCT term covers *all* rolled windows — drain disruption and
    #: post-repair recovery both count.
    rollout_windows: int = 4
    #: Rank at most this many candidates per policy cycle (each costs
    #: one fork + rollout).
    max_candidates: int = 4
    #: How many ranked winners the controller dispatches per cycle.
    dispatch_top: int = 1
    #: Score = fct_weight * predicted p99 FCT − smi_weight * predicted
    #: SMI; lower is better.
    fct_weight: float = 1.0
    smi_weight: float = 1.0


@dataclasses.dataclass(frozen=True)
class PlanScore:
    """One candidate plan, as the twin predicted it."""

    request: object  # PlanRequest (kept untyped: core.policy imports us)
    predicted_smi: float
    predicted_p99_fct: float
    score: float

    def __repr__(self) -> str:
        return (f"<PlanScore {self.request.link_id} "
                f"smi={self.predicted_smi:.3f} "
                f"p99={self.predicted_p99_fct:.4f}s "
                f"score={self.score:.4f}>")


class TwinPlanner:
    """Ranks candidate repair plans by forking the world per plan.

    Each :meth:`evaluate` call forks the live world copy-on-write,
    executes the candidate (drain → maintenance → repair → undrain)
    column-wise in the twin, rolls the twin ``rollout_windows`` traffic
    windows ahead under the live matrix parameters, and scores the
    outcome.  The live world is never touched: the fork is released
    (``cow_release``) before returning, twin RNG draws come from
    dedicated numbered substreams, and the twin's accounting columns
    live only on the forked state.
    """

    def __init__(self, fabric, traffic, driver,
                 streams, smi_tracker=None,
                 config: Optional[TwinPlannerConfig] = None,
                 fleet=None) -> None:
        self.fabric = fabric
        self.traffic = traffic
        self.driver = driver
        self.streams = streams
        self.smi_tracker = smi_tracker
        self.config = config or TwinPlannerConfig()
        #: Robot fleet whose health the planner consults (optional):
        #: a degraded fleet shrinks the per-cycle dispatch quota so the
        #: twin does not plan more concurrent repairs than the healthy
        #: units can actually carry out.
        self.fleet = fleet
        #: Every ranking decision, for experiments to audit
        #: prediction-vs-realized accuracy.
        self.decisions: List[List[PlanScore]] = []
        self._evaluations = 0

    def dispatch_quota(self) -> int:
        """Winners to dispatch this cycle, scaled by fleet health.

        ``dispatch_top`` shrinks proportionally to the in-service
        fraction of the fleet (never below one — a single healthy unit
        still takes work).
        """
        top = self.config.dispatch_top
        if self.fleet is None:
            return top
        fraction = self.fleet.healthy_fraction()
        return max(1, math.ceil(top * fraction))

    def evaluate(self, request, now: float) -> PlanScore:
        """Fork, simulate one candidate repair, score the outcome."""
        from dcrobot.twin.world import TwinWorld

        cfg = self.config
        self._evaluations += 1
        rng = self.streams.stream(
            f"twin:{self._evaluations}:{request.link_id}")
        with TwinWorld.fork(self.fabric, self.traffic,
                            driver=self.driver, rng=rng, now=now,
                            smi_tracker=self.smi_tracker) as twin:
            twin.begin_maintenance(request.link_id)
            twin.roll(cfg.repair_windows)
            twin.repair_link(request.link_id)
            twin.roll(cfg.rollout_windows)
            # Score over every rolled window: draining a loaded link
            # hurts during the maintenance windows, a good repair helps
            # afterwards — the twin weighs both.
            p99 = twin.p99_fct()
            smi = (twin.predicted_smi()
                   if self.smi_tracker is not None else 0.0)
        fct_term = 0.0 if math.isnan(p99) else p99
        score = cfg.fct_weight * fct_term - cfg.smi_weight * smi
        return PlanScore(request=request, predicted_smi=smi,
                         predicted_p99_fct=p99, score=score)

    def rank(self, requests, now: float) -> List[PlanScore]:
        """Candidates ordered best (lowest score) first.

        At most ``max_candidates`` are evaluated (in offered order);
        the rest are appended unevaluated behind the ranked ones so
        the controller's dispatch slice still sees every request.
        Ties break on link id for determinism.
        """
        cfg = self.config
        head = list(requests)[:cfg.max_candidates]
        tail = list(requests)[cfg.max_candidates:]
        scores = [self.evaluate(request, now) for request in head]
        scores.sort(key=lambda s: (s.score, s.request.link_id))
        scores.extend(
            PlanScore(request=request, predicted_smi=float("nan"),
                      predicted_p99_fct=float("nan"),
                      score=float("inf"))
            for request in tail)
        self.decisions.append(scores)
        return scores
