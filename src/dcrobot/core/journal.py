"""Write-ahead journal for the maintenance controller's state.

The controller (see :mod:`dcrobot.core.controller`) keeps every work
order, retry budget, and breaker state in process memory — which means a
controller crash loses every in-flight incident.  This module provides
the durability layer that makes the control plane itself recoverable:

* every state transition is appended to the journal **before** it takes
  effect in memory (write-ahead discipline), as a plain-data
  :class:`JournalRecord`;
* periodic **snapshots** capture the controller's full logical state, so
  recovery replays only the journal tail, not the whole history;
* storage is pluggable: :class:`MemoryJournalStore` models the durable
  device inside a simulation (it outlives any controller object), and
  :class:`FileJournalStore` writes fsynced JSONL for real processes.

Replay itself lives in :mod:`dcrobot.core.recovery`; lease and fencing
records come from :mod:`dcrobot.core.leadership`.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
from typing import Any, Dict, List, Optional, Tuple

#: Version of the journal record / snapshot layout.  Bump on any change
#: to record payload shapes or the snapshot schema; recovery refuses to
#: replay a journal written under a different version, and the trial
#: cache keys on it so recovery-format changes can never serve stale
#: cached trials.
JOURNAL_SCHEMA_VERSION = 1


class RecordKind(enum.Enum):
    """Journalled controller state transitions."""

    INCIDENT_OPENED = "incident-opened"
    ORDER_DISPATCHED = "order-dispatched"
    ORDER_CONCLUDED = "order-concluded"
    ORDER_TIMED_OUT = "order-timed-out"
    RETRY_SCHEDULED = "retry-scheduled"
    INCIDENT_CLOSED = "incident-closed"
    INCIDENT_UNRESOLVABLE = "incident-unresolvable"
    BREAKER_TRANSITION = "breaker-transition"
    LEASE_ACQUIRED = "lease-acquired"
    LEASE_LOST = "lease-lost"
    SNAPSHOT = "snapshot"


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One durable entry: a state transition or a snapshot."""

    seq: int
    time: float
    kind: RecordKind
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps({"seq": self.seq, "time": self.time,
                           "kind": self.kind.value,
                           "payload": self.payload},
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord":
        raw = json.loads(line)
        return cls(seq=int(raw["seq"]), time=float(raw["time"]),
                   kind=RecordKind(raw["kind"]), payload=raw["payload"])


def _ensure_plain(value: Any, path: str = "payload") -> None:
    """Reject payloads that could not survive a process boundary.

    A record holding a live object (an Event, a Process, a controller)
    would replay as garbage after a real crash; catching it at append
    time keeps the write-ahead contract honest.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _ensure_plain(item, f"{path}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"journal {path} key {key!r} is not a string")
            _ensure_plain(item, f"{path}.{key}")
        return
    raise TypeError(
        f"journal {path} holds non-durable value {value!r} "
        f"({type(value).__name__})")


class MemoryJournalStore:
    """The durable device of a simulated world.

    Lives outside any controller object, so it survives a controller
    "crash" (object death) exactly as a disk survives a process crash.
    """

    def __init__(self) -> None:
        self.records: List[JournalRecord] = []
        #: Appends performed, including those later compacted away.
        self.appends = 0

    def append(self, record: JournalRecord) -> None:
        self.records.append(record)
        self.appends += 1

    def load(self) -> List[JournalRecord]:
        return list(self.records)


class FileJournalStore:
    """JSONL-on-disk journal storage with per-record fsync."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: JournalRecord) -> None:
        self._handle.write(record.to_json() + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def load(self) -> List[JournalRecord]:
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(JournalRecord.from_json(line))
                except (ValueError, KeyError):
                    # A torn final write (crash mid-append) is expected;
                    # anything after it is unreachable anyway.
                    break
        return records

    def close(self) -> None:
        self._handle.close()


class WriteAheadJournal:
    """Append-only journal plus snapshot support for one control plane.

    The write-ahead contract: callers append the record describing a
    state transition *before* applying the transition in memory, so
    after a crash the journal is never behind the controller's
    externally visible actions.
    """

    def __init__(self, store: Optional[object] = None) -> None:
        self.store = store if store is not None else MemoryJournalStore()
        existing = self.store.load()
        self._next_seq = (existing[-1].seq + 1) if existing else 0
        self.snapshot_count = sum(
            1 for record in existing
            if record.kind is RecordKind.SNAPSHOT)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def record_count(self) -> int:
        return self._next_seq

    def append(self, time: float, kind: RecordKind,
               **payload: Any) -> JournalRecord:
        """Durably record one state transition (call *before* applying)."""
        _ensure_plain(payload)
        record = JournalRecord(seq=self._next_seq, time=float(time),
                               kind=kind, payload=payload)
        self.store.append(record)
        self._next_seq += 1
        return record

    def snapshot(self, time: float, state: Dict[str, Any]) -> JournalRecord:
        """Record a full logical-state snapshot (replay starts here)."""
        record = self.append(
            time, RecordKind.SNAPSHOT,
            schema_version=JOURNAL_SCHEMA_VERSION, state=state)
        self.snapshot_count += 1
        return record

    def records(self) -> List[JournalRecord]:
        return self.store.load()

    def tail(self) -> Tuple[Optional[JournalRecord], List[JournalRecord]]:
        """The latest snapshot (or None) and every record after it."""
        records = self.store.load()
        snapshot = None
        start = 0
        for index, record in enumerate(records):
            if record.kind is RecordKind.SNAPSHOT:
                snapshot = record
                start = index + 1
        return snapshot, records[start:]


__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "RecordKind",
    "JournalRecord",
    "MemoryJournalStore",
    "FileJournalStore",
    "WriteAheadJournal",
]
