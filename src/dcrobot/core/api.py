"""The service-facing maintenance API (§2).

"Advanced dexterous robotics capable of performing intricate hardware
repairs controlled by a service API is required that allows higher
layers to interact with and finely control when and how maintenance
occurs.  The API needs to mask the complexity but enable complex
control."

:class:`MaintenanceServiceAPI` is that facade: cloud services use it to
request maintenance, ask what cables a pending repair will touch (so
they can migrate load), and observe fleet health — without ever seeing
robots, ladders, or schedulers.

The facade has two distinct halves, and the service plane (S21,
:mod:`dcrobot.service`) treats them differently:

* the **command path** (:meth:`MaintenanceServiceAPI.request_maintenance`)
  mutates the world and always routes through the authorizer/audit
  machinery — the service plane forwards commands here verbatim;
* the **query path** (:meth:`MaintenanceServiceAPI.status` and friends)
  is read-only.  ``status()`` serves its link counts from the columnar
  :class:`~dcrobot.network.state.FabricState` state-code array (one
  vectorized comparison instead of a Python loop over every link
  object); :meth:`status_scan` keeps the legacy full scan as the
  parity oracle, and the service plane's materialized
  :class:`~dcrobot.service.readmodel.ReadModel` turns repeated queries
  into O(1) snapshot reads.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.core.controller import MaintenanceController
from dcrobot.core.policy import PlanRequest
from dcrobot.network.enums import LinkState
from dcrobot.network.state import DOWN_CODE


@dataclasses.dataclass(frozen=True)
class MaintenanceStatus:
    """Fleet-level maintenance summary for dashboards/services."""

    open_incidents: int
    closed_incidents: int
    unresolved_incidents: int
    proactive_operations: int
    mean_time_to_repair_seconds: Optional[float]
    links_down: int
    links_total: int


def link_state_counts(fabric) -> tuple:
    """``(links_down, links_total)`` served from the columnar state.

    One vectorized comparison over the ``state_code`` array replaces
    the legacy per-object scan; unbound fabrics (plain test fixtures
    without a consistent columnar store) fall back to the object walk.
    """
    state = getattr(fabric, "state", None)
    links = fabric.links
    if state is not None and state.n_links == len(links):
        n = state.n_links
        down = int(np.count_nonzero(state.state_code[:n] == DOWN_CODE))
        return down, n
    down = sum(1 for link in links.values()
               if link.state is LinkState.DOWN)
    return down, len(links)


def full_scan_status(controller: MaintenanceController
                     ) -> MaintenanceStatus:
    """The legacy full-scan status: every link object visited.

    Kept as the parity oracle for the vectorized
    :meth:`MaintenanceServiceAPI.status` path and for the service
    plane's read-model snapshots (both must equal this exactly).
    """
    repair_times = controller.repair_times()
    links = controller.fabric.links.values()
    return MaintenanceStatus(
        open_incidents=len(controller.open_incidents),
        closed_incidents=len(controller.closed_incidents),
        unresolved_incidents=len(controller.unresolved_incidents),
        proactive_operations=len(controller.proactive_outcomes),
        mean_time_to_repair_seconds=(
            sum(repair_times) / len(repair_times)
            if repair_times else None),
        links_down=sum(1 for link in links
                       if link.state is LinkState.DOWN),
        links_total=len(links),
    )


class MaintenanceServiceAPI:
    """What a cloud service sees of the self-maintaining network.

    With an ``authorizer`` attached (§4 "Network security"), every
    maintenance request is checked against the caller's capability
    tokens and recorded in the tamper-evident audit log; without one,
    the API is open (trusted-environment mode).
    """

    def __init__(self, controller: MaintenanceController,
                 authorizer=None) -> None:
        self.controller = controller
        self.authorizer = authorizer

    # -- observation (query path) ----------------------------------------------

    def status(self) -> MaintenanceStatus:
        """Current maintenance-plane summary.

        Link counts come from the columnar state-code array (see
        :func:`link_state_counts`); everything else is O(1) controller
        bookkeeping except the MTTR sum, which the service plane's
        read model additionally materializes incrementally.
        """
        controller = self.controller
        repair_times = controller.repair_times()
        links_down, links_total = link_state_counts(controller.fabric)
        return MaintenanceStatus(
            open_incidents=len(controller.open_incidents),
            closed_incidents=len(controller.closed_incidents),
            unresolved_incidents=len(controller.unresolved_incidents),
            proactive_operations=len(controller.proactive_outcomes),
            mean_time_to_repair_seconds=(
                sum(repair_times) / len(repair_times)
                if repair_times else None),
            links_down=links_down,
            links_total=links_total,
        )

    def status_scan(self) -> MaintenanceStatus:
        """The legacy full-scan status (parity oracle for
        :meth:`status`)."""
        return full_scan_status(self.controller)

    def incident_for(self, link_id: str):
        """The open incident on a link, if any."""
        return self.controller.open_incidents.get(link_id)

    def planned_touches(self, link_id: str,
                        action: RepairAction = RepairAction.RESEAT
                        ) -> List[str]:
        """Which neighbour links a repair on ``link_id`` may contact.

        This is the §2 pre-maintenance announcement: services migrate
        load off these links before approving the repair window.
        """
        controller = self.controller
        link = controller.fabric.links[link_id]
        executor = controller._select_executor(action, link)
        if executor is None:
            return []
        probe = WorkOrder(link_id, action, controller.sim.now)
        return executor.announce_touches(probe)

    # -- control (command path) --------------------------------------------------

    def request_maintenance(self, link_id: str,
                            action: Optional[RepairAction] = None,
                            urgent: bool = False,
                            principal: str = "anonymous") -> bool:
        """Ask the plane to service a link (e.g. ahead of a big job).

        Returns False if the link already has an open incident (it is
        being handled).  The request follows the proactive path: it is
        deferred to a quiet window unless ``urgent``.  Raises
        :class:`~dcrobot.core.audit.AuthorizationError` if an
        authorizer is attached and ``principal`` lacks the capability.
        """
        controller = self.controller
        if link_id not in controller.fabric.links:
            raise KeyError(f"unknown link {link_id}")
        if self.authorizer is not None:
            self.authorizer.authorize(
                controller.sim.now, principal,
                action or RepairAction.RESEAT, link_id)
        if link_id in controller.open_incidents:
            return False
        request = PlanRequest(
            link_id=link_id,
            priority=Priority.HIGH if urgent else Priority.NORMAL,
            reason="service-api",
            action=action,
            proactive=not urgent)
        controller.sim.process(controller._proactive(request))
        return True
