"""The service-facing maintenance API (§2).

"Advanced dexterous robotics capable of performing intricate hardware
repairs controlled by a service API is required that allows higher
layers to interact with and finely control when and how maintenance
occurs.  The API needs to mask the complexity but enable complex
control."

:class:`MaintenanceServiceAPI` is that facade: cloud services use it to
request maintenance, ask what cables a pending repair will touch (so
they can migrate load), and observe fleet health — without ever seeing
robots, ladders, or schedulers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.core.controller import MaintenanceController
from dcrobot.core.policy import PlanRequest
from dcrobot.network.enums import LinkState


@dataclasses.dataclass(frozen=True)
class MaintenanceStatus:
    """Fleet-level maintenance summary for dashboards/services."""

    open_incidents: int
    closed_incidents: int
    unresolved_incidents: int
    proactive_operations: int
    mean_time_to_repair_seconds: Optional[float]
    links_down: int
    links_total: int


class MaintenanceServiceAPI:
    """What a cloud service sees of the self-maintaining network.

    With an ``authorizer`` attached (§4 "Network security"), every
    maintenance request is checked against the caller's capability
    tokens and recorded in the tamper-evident audit log; without one,
    the API is open (trusted-environment mode).
    """

    def __init__(self, controller: MaintenanceController,
                 authorizer=None) -> None:
        self.controller = controller
        self.authorizer = authorizer

    # -- observation -----------------------------------------------------------

    def status(self) -> MaintenanceStatus:
        """Current maintenance-plane summary."""
        controller = self.controller
        repair_times = controller.repair_times()
        links = controller.fabric.links.values()
        return MaintenanceStatus(
            open_incidents=len(controller.open_incidents),
            closed_incidents=len(controller.closed_incidents),
            unresolved_incidents=len(controller.unresolved_incidents),
            proactive_operations=len(controller.proactive_outcomes),
            mean_time_to_repair_seconds=(
                sum(repair_times) / len(repair_times)
                if repair_times else None),
            links_down=sum(1 for link in links
                           if link.state is LinkState.DOWN),
            links_total=len(links),
        )

    def incident_for(self, link_id: str):
        """The open incident on a link, if any."""
        return self.controller.open_incidents.get(link_id)

    def planned_touches(self, link_id: str,
                        action: RepairAction = RepairAction.RESEAT
                        ) -> List[str]:
        """Which neighbour links a repair on ``link_id`` may contact.

        This is the §2 pre-maintenance announcement: services migrate
        load off these links before approving the repair window.
        """
        controller = self.controller
        link = controller.fabric.links[link_id]
        executor = controller._select_executor(action, link)
        if executor is None:
            return []
        probe = WorkOrder(link_id, action, controller.sim.now)
        return executor.announce_touches(probe)

    # -- control ----------------------------------------------------------------------

    def request_maintenance(self, link_id: str,
                            action: Optional[RepairAction] = None,
                            urgent: bool = False,
                            principal: str = "anonymous") -> bool:
        """Ask the plane to service a link (e.g. ahead of a big job).

        Returns False if the link already has an open incident (it is
        being handled).  The request follows the proactive path: it is
        deferred to a quiet window unless ``urgent``.  Raises
        :class:`~dcrobot.core.audit.AuthorizationError` if an
        authorizer is attached and ``principal`` lacks the capability.
        """
        controller = self.controller
        if link_id not in controller.fabric.links:
            raise KeyError(f"unknown link {link_id}")
        if self.authorizer is not None:
            self.authorizer.authorize(
                controller.sim.now, principal,
                action or RepairAction.RESEAT, link_id)
        if link_id in controller.open_incidents:
            return False
        request = PlanRequest(
            link_id=link_id,
            priority=Priority.HIGH if urgent else Priority.NORMAL,
            reason="service-api",
            action=action,
            proactive=not urgent)
        controller.sim.process(controller._proactive(request))
        return True
