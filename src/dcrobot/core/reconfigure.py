"""Robotic topology reconfiguration (§4 "Scalable network topologies").

"The robotics that enables a self-maintaining network will also be able
to deploy arbitrary topologies potentially. ... if we can build
self-maintaining systems, these systems may well be able to also deploy
the network originally not just maintain it."

This module closes that loop: given a *target* wiring (a multiset of
node pairs), it plans an ordered sequence of link removals and
additions that respects port budgets, optionally defers
connectivity-breaking removals, and executes the plan with the robot
fleet's manipulators — unplugging at both ends, laying the new cable at
robot speed, terminating, and verifying.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from dcrobot.network.inventory import Fabric
from dcrobot.sim.engine import Simulation
from dcrobot.sim.events import Event


class StepKind(enum.Enum):
    REMOVE = "remove"
    ADD = "add"


@dataclasses.dataclass
class RewireStep:
    """One physical rewiring operation."""

    kind: StepKind
    #: For REMOVE: the link id.  For ADD: unset until executed.
    link_id: Optional[str]
    endpoints: Tuple[str, str]

    def __repr__(self) -> str:
        return (f"<RewireStep {self.kind.value} "
                f"{self.endpoints[0]}<->{self.endpoints[1]}>")


@dataclasses.dataclass
class RewirePlan:
    """An ordered, feasibility-checked rewiring plan."""

    steps: List[RewireStep]
    #: Steps that could not be ordered without a temporary port deficit
    #: (empty for feasible plans).
    infeasible: List[RewireStep] = dataclasses.field(default_factory=list)

    @property
    def removals(self) -> int:
        return sum(1 for step in self.steps
                   if step.kind is StepKind.REMOVE)

    @property
    def additions(self) -> int:
        return sum(1 for step in self.steps if step.kind is StepKind.ADD)

    def __repr__(self) -> str:
        return (f"<RewirePlan -{self.removals} +{self.additions} "
                f"steps={len(self.steps)}>")


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def plan_rewiring(fabric: Fabric,
                  target_pairs: Sequence[Tuple[str, str]],
                  protect_connectivity: bool = True) -> RewirePlan:
    """Plan the steps that transform the fabric's wiring into
    ``target_pairs`` (a multiset of unordered node pairs).

    Ordering rules:

    * an addition runs as soon as both endpoints have free ports;
    * otherwise a removal that frees a port needed by some pending
      addition runs first;
    * with ``protect_connectivity``, removals that would disconnect the
      current graph are deferred while any alternative step exists.
    """
    current: Counter = Counter()
    links_by_pair = {}
    for link in fabric.links.values():
        pair = _pair(*link.endpoint_ids)
        current[pair] += 1
        links_by_pair.setdefault(pair, []).append(link.id)
    target: Counter = Counter(_pair(a, b) for a, b in target_pairs)
    for node_a, node_b in target:
        fabric.node(node_a)
        fabric.node(node_b)

    removals: List[RewireStep] = []
    for pair, count in (current - target).items():
        for index in range(count):
            removals.append(RewireStep(StepKind.REMOVE,
                                       links_by_pair[pair][index], pair))
    additions: List[RewireStep] = []
    for pair, count in (target - current).items():
        for _index in range(count):
            additions.append(RewireStep(StepKind.ADD, None, pair))

    free_ports = {node_id: len(fabric.node(node_id).free_ports())
                  for node_id in list(fabric.switches)
                  + list(fabric.hosts)}
    graph = nx.MultiGraph()
    graph.add_nodes_from(free_ports)
    for link in fabric.links.values():
        graph.add_edge(*link.endpoint_ids, key=link.id)

    ordered: List[RewireStep] = []
    pending_removals = list(removals)
    pending_additions = list(additions)

    def addition_feasible(step: RewireStep) -> bool:
        a, b = step.endpoints
        if a == b:
            return free_ports[a] >= 2
        return free_ports[a] >= 1 and free_ports[b] >= 1

    def removal_safe(step: RewireStep) -> bool:
        if not protect_connectivity:
            return True
        a, b = step.endpoints
        if graph.number_of_edges(a, b) > 1:
            return True
        trial = nx.Graph(graph)
        trial.remove_edge(a, b)
        return nx.is_connected(trial) if nx.is_connected(
            nx.Graph(graph)) else True

    def apply(step: RewireStep) -> None:
        a, b = step.endpoints
        if step.kind is StepKind.ADD:
            free_ports[a] -= 1
            free_ports[b] -= 1
            graph.add_edge(a, b)
        else:
            free_ports[a] += 1
            free_ports[b] += 1
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
        ordered.append(step)

    while pending_removals or pending_additions:
        # Prefer additions (they only improve connectivity).
        step = next((s for s in pending_additions
                     if addition_feasible(s)), None)
        if step is not None:
            pending_additions.remove(step)
            apply(step)
            continue
        step = next((s for s in pending_removals if removal_safe(s)),
                    None)
        if step is None and pending_removals:
            step = pending_removals[0]  # forced: accept the partition
        if step is not None:
            pending_removals.remove(step)
            apply(step)
            continue
        break  # additions remain but no ports can be freed

    return RewirePlan(steps=ordered, infeasible=pending_additions)


@dataclasses.dataclass
class RewireReport:
    """What the crew did and how long it took."""

    steps_executed: int
    total_seconds: float
    added_link_ids: List[str]
    removed_link_ids: List[str]


class RoboticRewirer:
    """Executes a :class:`RewirePlan` with fleet manipulators.

    Timing model: unplug/terminate per end reuse the manipulator's
    operation constants; laying a new cable proceeds at
    ``lay_speed_m_s`` along the run (the §3.3 caveat — today's
    prototypes do not lay fiber — is exactly why this class models the
    *future* capability the paper sketches in §4).
    """

    def __init__(self, sim: Simulation, fabric: Fabric, fleet,
                 lay_speed_m_s: float = 0.1,
                 terminate_seconds: float = 120.0) -> None:
        if lay_speed_m_s <= 0:
            raise ValueError("lay_speed_m_s must be > 0")
        self.sim = sim
        self.fabric = fabric
        self.fleet = fleet
        self.lay_speed_m_s = lay_speed_m_s
        self.terminate_seconds = terminate_seconds

    def execute(self, plan: RewirePlan) -> Event:
        """Run the plan; the returned event fires with a RewireReport."""
        done = self.sim.event()
        self.sim.process(self._run(plan, done))
        return done

    def _run(self, plan: RewirePlan, done: Event):
        sim = self.sim
        started = sim.now
        added, removed = [], []
        for step in plan.steps:
            robot = yield from self.fleet.acquire_manipulator(
                self._rack_of(step.endpoints[0]))
            try:
                yield from robot.travel_to(
                    self._rack_of(step.endpoints[0]))
                if step.kind is StepKind.REMOVE:
                    yield from robot.work(
                        2 * robot.params.unplug_seconds
                        + robot.params.grip_attempt_seconds)
                    self.fabric.disconnect(step.link_id)
                    removed.append(step.link_id)
                else:
                    a, b = step.endpoints
                    length = self.fabric.cable_length(a, b)
                    yield from robot.work(length / self.lay_speed_m_s
                                          + self.terminate_seconds)
                    link = self.fabric.connect(a, b)
                    added.append(link.id)
                robot.operations_done += 1
            finally:
                self.fleet.release_manipulator(robot)
        done.succeed(RewireReport(
            steps_executed=len(plan.steps),
            total_seconds=sim.now - started,
            added_link_ids=added,
            removed_link_ids=removed))

    def _rack_of(self, node_id: str) -> str:
        rack_id = self.fabric.node(node_id).rack_id
        if rack_id is None:
            raise ValueError(f"node {node_id} is unplaced")
        return rack_id
