"""Crash recovery for the maintenance controller.

A controller object dying takes every open incident, in-flight claim,
and retry budget with it.  This module rebuilds a successor from the
write-ahead journal (:mod:`dcrobot.core.journal`):

* :func:`replay_journal` — fold the latest snapshot plus the journal
  tail into a plain-data :class:`RecoveredState`.  Replay is
  deterministic: the same journal always yields the same state.
* :func:`restore_controller` — inject a ``RecoveredState`` into a
  freshly built controller: open incidents come back with their attempt
  budgets, in-flight orders are re-claimed under their *original* order
  ids (so the scheduler's drains and the safety monitor's cross-checks
  stay consistent), counters and breaker state carry over.
* :class:`ControllerSupervisor` — the failure-handling harness: renews
  the primary's lease, watches for expiry, and performs takeover
  (standby promotion or same-node restart).  Takeover re-verifies every
  adopted in-flight order against the executor's surviving work queue
  and link health before doing anything physical, so recovery never
  repairs a link twice.

Without a journal the supervisor still fails over — to a cold, empty
controller.  That baseline is what experiment E14 measures: muted
telemetry never re-arms, so every incident open at the crash is lost.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple

from dcrobot.core.actions import Priority, RepairAction, WorkOrder
from dcrobot.core.controller import Incident, MaintenanceController
from dcrobot.core.journal import (JOURNAL_SCHEMA_VERSION, RecordKind,
                                  WriteAheadJournal)
from dcrobot.core.leadership import LeaseCoordinator
from dcrobot.core.resilience import BreakerState


class JournalReplayError(RuntimeError):
    """The journal cannot be replayed (e.g. schema version mismatch)."""


@dataclasses.dataclass
class RecoveredState:
    """The controller's logical state, rebuilt as plain data."""

    fencing_token: Optional[int] = None
    #: Open incident payload dicts (see controller._incident_payload).
    open_incidents: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list)
    closed_incidents: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list)
    unresolved_incidents: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list)
    #: order id -> claim payload for orders in flight at the crash.
    active_orders: Dict[int, Dict[str, Any]] = dataclasses.field(
        default_factory=dict)
    repair_history: Dict[str, List[Tuple[float, str]]] = dataclasses.field(
        default_factory=dict)
    counters: Dict[str, Any] = dataclasses.field(default_factory=dict)
    breaker: Optional[Dict[str, Any]] = None
    replayed_records: int = 0
    snapshot_seq: Optional[int] = None


def _open_incident(state: RecoveredState,
                   link_id: str) -> Optional[Dict[str, Any]]:
    for payload in state.open_incidents:
        if payload["link_id"] == link_id:
            return payload
    return None


def replay_journal(journal: WriteAheadJournal) -> RecoveredState:
    """Deterministically rebuild controller state from the journal."""
    snapshot, tail = journal.tail()
    state = RecoveredState()
    if snapshot is not None:
        version = snapshot.payload.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise JournalReplayError(
                f"snapshot schema v{version} != "
                f"supported v{JOURNAL_SCHEMA_VERSION}")
        snap = snapshot.payload["state"]
        state.fencing_token = snap.get("fencing_token")
        state.open_incidents = [dict(p) for p in snap["open_incidents"]]
        state.closed_incidents = [dict(p) for p in snap["closed_incidents"]]
        state.unresolved_incidents = [
            dict(p) for p in snap["unresolved_incidents"]]
        state.active_orders = {int(p["order_id"]): dict(p)
                               for p in snap["active_orders"]}
        state.repair_history = {
            link_id: [(t, action) for t, action in entries]
            for link_id, entries in snap["repair_history"].items()}
        state.counters = dict(snap["counters"])
        state.breaker = snap.get("breaker")
        state.snapshot_seq = snapshot.seq

    for record in tail:
        kind = record.kind
        payload = record.payload
        if kind is RecordKind.INCIDENT_OPENED:
            if _open_incident(state, payload["link_id"]) is None:
                incident = dict(payload)
                incident.setdefault("attempt_count", 0)
                incident.setdefault("attempt_history", [])
                state.open_incidents.append(incident)
        elif kind is RecordKind.ORDER_DISPATCHED:
            state.active_orders[int(payload["order_id"])] = dict(payload)
        elif kind is RecordKind.ORDER_CONCLUDED:
            dispatched = state.active_orders.pop(
                int(payload["order_id"]), None)
            if dispatched is None or payload.get("proactive"):
                continue
            incident = _open_incident(state, payload["link_id"])
            if incident is not None:
                incident["attempt_count"] = \
                    incident.get("attempt_count", 0) + 1
                incident.setdefault("attempt_history", []).append(
                    [record.time, dispatched["action"]])
            state.repair_history.setdefault(
                payload["link_id"], []).append(
                (record.time, dispatched["action"]))
        elif kind is RecordKind.ORDER_TIMED_OUT:
            state.counters["timeout_count"] = \
                state.counters.get("timeout_count", 0) + 1
        elif kind is RecordKind.RETRY_SCHEDULED:
            state.counters["retry_count"] = \
                state.counters.get("retry_count", 0) + 1
        elif kind is RecordKind.INCIDENT_CLOSED:
            state.open_incidents = [
                p for p in state.open_incidents
                if p["link_id"] != payload["link_id"]]
            state.closed_incidents.append(dict(payload))
        elif kind is RecordKind.INCIDENT_UNRESOLVABLE:
            state.open_incidents = [
                p for p in state.open_incidents
                if p["link_id"] != payload["link_id"]]
            state.unresolved_incidents.append(dict(payload))
        elif kind is RecordKind.BREAKER_TRANSITION:
            state.breaker = dict(payload)
        elif kind is RecordKind.LEASE_ACQUIRED:
            state.fencing_token = payload.get("token")
        # LEASE_LOST and stray SNAPSHOT records carry no foldable state.
        state.replayed_records += 1
    return state


def _incident_from_payload(payload: Dict[str, Any]) -> Incident:
    incident = Incident(
        link_id=payload["link_id"],
        opened_at=payload["opened_at"],
        symptom=payload["symptom"],
        priority=Priority[payload.get("priority", "NORMAL")],
        prior_attempts=payload.get("attempt_count", 0))
    incident.attempt_history = [
        (t, RepairAction(action))
        for t, action in payload.get("attempt_history", [])]
    incident.resolved = bool(payload.get("resolved", False))
    incident.closed_at = payload.get("closed_at")
    incident.unresolvable_reason = payload.get("unresolvable_reason")
    return incident


def _order_from_payload(payload: Dict[str, Any]) -> WorkOrder:
    return WorkOrder(
        link_id=payload["link_id"],
        action=RepairAction(payload["action"]),
        created_at=payload["created_at"],
        priority=Priority[payload.get("priority", "NORMAL")],
        symptom=payload.get("symptom", ""),
        announced_touches=list(payload.get("announced_touches", [])),
        fencing_token=payload.get("fencing_token"),
        order_id=int(payload["order_id"]))


def restore_controller(controller: MaintenanceController,
                       state: RecoveredState,
                       executors: Dict[str, Any]) -> List[Tuple]:
    """Inject recovered state into a freshly built controller.

    ``executors`` maps executor id to the executor object, for
    re-claiming in-flight orders.  Returns the adopted claims as
    ``(claim, incident-or-None, executor)`` tuples; the caller (the
    supervisor) runs the re-verification process for each one.
    """
    for payload in state.open_incidents:
        incident = _incident_from_payload(payload)
        controller.open_incidents[incident.link_id] = incident
    for payload in state.closed_incidents:
        controller.closed_incidents.append(
            _incident_from_payload(payload))
    for payload in state.unresolved_incidents:
        controller.unresolved_incidents.append(
            _incident_from_payload(payload))
    controller.repair_history = {
        link_id: [(t, RepairAction(action)) for t, action in entries]
        for link_id, entries in state.repair_history.items()}
    counters = state.counters
    controller.timeout_count = counters.get("timeout_count", 0)
    controller.retry_count = counters.get("retry_count", 0)
    controller.late_ack_count = counters.get("late_ack_count", 0)
    controller.idempotent_skips = counters.get("idempotent_skips", 0)
    controller.degraded_dispatches = counters.get(
        "degraded_dispatches", 0)
    controller.supervision_seconds = counters.get(
        "supervision_seconds", 0.0)
    if state.breaker is not None and controller.fleet_breaker is not None:
        breaker = controller.fleet_breaker
        breaker.state = BreakerState(state.breaker["state"])
        breaker.consecutive_failures = \
            state.breaker["consecutive_failures"]
        breaker.opened_at = state.breaker["opened_at"]
        breaker.trips = state.breaker["trips"]

    if controller.obs.enabled:
        # Recovered incidents get fresh lifecycle spans (the
        # predecessor's span handles died with it): subsequent
        # plan/verify/conclude spans re-attach to the trace tree.
        for incident in controller.open_incidents.values():
            controller._incident_spans[incident.link_id] = \
                controller.obs.tracer.start_span(
                    "incident", link_id=incident.link_id,
                    symptom=incident.symptom,
                    priority=incident.priority.name, recovered=True)
        controller.obs.count("dcrobot_recovered_incidents_total",
                             len(state.open_incidents))
    adopted = []
    for payload in state.active_orders.values():
        executor = executors.get(payload["executor_id"])
        if executor is None:
            continue
        order = _order_from_payload(payload)
        incident = None
        if not payload.get("proactive"):
            incident = controller.open_incidents.get(order.link_id)
            if incident is not None:
                incident.in_flight = True
        claim = controller._claim(order, executor,
                                  proactive=bool(payload.get("proactive")))
        adopted.append((claim, incident, executor))
    controller.recovered_incident_count = len(state.open_incidents)
    return adopted


class ControllerSupervisor:
    """Keeps exactly one live controller in charge of the fabric.

    The supervisor plays three infrastructure roles that outlive any
    controller object: the heartbeat relay (renewing the primary's
    lease), the standby watchdog (promoting a successor when the lease
    expires), and the recovery orchestrator (journal replay, fencing
    handshake, safety-monitor rebind, in-flight order adoption).

    Chaos injectors drive it through :meth:`crash_primary`,
    :meth:`partition_primary`, and :meth:`restart_primary`.
    """

    def __init__(self, sim, controller: MaintenanceController,
                 factory: Callable[[str], MaintenanceController],
                 coordinator: Optional[LeaseCoordinator] = None,
                 journal: Optional[WriteAheadJournal] = None,
                 safety=None,
                 extra_executors: Tuple = ()) -> None:
        self.sim = sim
        self.controller = controller
        self.factory = factory
        self.coordinator = coordinator
        self.journal = journal
        self.safety = safety
        self.extra_executors = tuple(extra_executors)
        #: How long an adopted order may stay silent before recovery
        #: stops waiting for its ack and re-verifies link health anyway.
        self.adoption_grace_seconds = 7 * 86400.0

        self.failovers = 0
        self.recoveries = 0
        self.crashes = 0
        self.partitions = 0
        self.adopted_order_count = 0
        self._node_counter = 0
        self._partitioned_until = float("-inf")
        self._partitioned_node: Optional[str] = None
        self._watching = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Acquire the initial lease and launch heartbeat + watchdog."""
        if self.coordinator is not None:
            token = self.coordinator.try_acquire(
                self.controller.node_id, self.sim.now)
            self.controller.fencing_token = token
            self.sim.process(self._heartbeat_loop())
            self.sim.process(self._watchdog_loop())
            self._watching = True

    def _executor_map(self) -> Dict[str, Any]:
        executors = {}
        for executor in ((self.controller.humans, self.controller.fleet)
                         + self.extra_executors):
            if executor is not None:
                executors[MaintenanceController._executor_id(
                    executor)] = executor
        return executors

    # -- fault-injection entry points ---------------------------------------

    def crash_primary(self, reason: str = "injected crash") -> None:
        """Kill the live controller outright (fail-stop)."""
        self.crashes += 1
        self.controller.crash(reason=reason)

    def partition_primary(self, duration_seconds: float) -> None:
        """Cut the primary off from the lock service for a while.

        The primary keeps running and dispatching — but its lease
        silently expires, a standby takes over, and the zombie's next
        order is fenced off at the executor.  The classic split-brain
        scenario the fencing tokens exist for.
        """
        self.partitions += 1
        self._partitioned_node = self.controller.node_id
        self._partitioned_until = max(
            self._partitioned_until,
            self.sim.now + duration_seconds)

    def restart_primary(self, reason: str = "injected restart") -> None:
        """Crash the controller and immediately recover in place."""
        self.crash_primary(reason=reason)
        self.promote(node_id=self.controller.node_id)

    # -- leadership machinery -----------------------------------------------

    def partitioned(self, node_id: str) -> bool:
        return (node_id == self._partitioned_node
                and self.sim.now < self._partitioned_until)

    def _heartbeat_loop(self):
        config = self.coordinator.config
        while True:
            yield self.sim.timeout(config.heartbeat_seconds)
            controller = self.controller
            if controller.crashed \
                    or self.partitioned(controller.node_id):
                continue  # no heartbeats from a dead/partitioned node
            self.coordinator.renew(controller.node_id, self.sim.now)

    def _watchdog_loop(self):
        config = self.coordinator.config
        while True:
            yield self.sim.timeout(config.heartbeat_seconds)
            holder = self.coordinator.holder_at(self.sim.now)
            if holder is not None:
                continue
            # The lease expired: the primary is dead (or unreachable,
            # which must be treated the same).  Promote a standby.
            self._node_counter += 1
            self.promote(node_id=f"standby-{self._node_counter}")

    # -- takeover ------------------------------------------------------------

    def promote(self, node_id: str) -> MaintenanceController:
        """Build, restore, fence, and start a successor controller."""
        now = self.sim.now
        token = None
        if self.coordinator is not None:
            token = self.coordinator.try_acquire(node_id, now)
            if token is None:  # somebody else holds a live lease
                return self.controller

        obs = self.controller.obs
        promote_span = None
        if obs.enabled:
            promote_span = obs.tracer.start_span(
                "failover.promote", node_id=node_id,
                fencing_token=token)
            obs.count("dcrobot_failovers_total")

        successor = self.factory(node_id)
        successor.fencing_token = token

        adopted = []
        if self.journal is not None:
            replay_span = None
            if obs.enabled:
                replay_span = obs.tracer.start_span(
                    "recovery.replay", parent=promote_span)
            state = replay_journal(self.journal)
            adopted = restore_controller(successor, state,
                                         self._executor_map())
            if obs.enabled:
                obs.tracer.end_span(
                    replay_span,
                    replayed_records=state.replayed_records,
                    snapshot_seq=state.snapshot_seq,
                    open_incidents=len(state.open_incidents),
                    adopted_orders=len(adopted))
                obs.count("dcrobot_recoveries_total")
            self._rearm_telemetry(successor, adopted)
        # Fencing handshake: executors learn the new token *before* the
        # successor's first dispatch, so a zombie predecessor cannot
        # slip an order in during the gap.
        if token is not None:
            for executor in self._executor_map().values():
                guard = getattr(executor, "fence", None)
                if guard is not None:
                    guard.advance(token)
        if self.safety is not None:
            self.safety.rebind(successor)
        self.controller = successor
        successor.start()
        for claim, incident, executor in adopted:
            successor._spawn(
                self._adopt(successor, claim, incident, executor))
        self.adopted_order_count += len(adopted)
        self.failovers += 1
        if self.journal is not None:
            self.recoveries += 1
        if obs.enabled:
            obs.count("dcrobot_adopted_orders_total", len(adopted))
            obs.tracer.end_span(promote_span,
                                adopted_orders=len(adopted))
        return successor

    def _rearm_telemetry(self, successor: MaintenanceController,
                         adopted: List[Tuple]) -> None:
        """Unmute links the recovered state does not account for.

        Two kinds of muted link must be re-armed so detection can fire
        again: (a) an open incident caught between attempts (the crash
        landed in a retry backoff — no order is in flight, so the
        normal telemetry path safely resumes it), and (b) a link whose
        detection fired during the dead window between crash and
        takeover (the monitor muted it, but no subscriber was alive to
        open an incident).  Only a journal-backed successor may do
        this: without the journal there is no way to tell a lost link
        from one a surviving robot is still physically working on, and
        a blind unmute would re-dispatch that repair.
        """
        monitor = successor.monitor
        now = self.sim.now
        for link_id, incident in successor.open_incidents.items():
            if incident.in_flight:
                continue  # an adopted order's verification owns it
            if not monitor.is_muted(link_id, now):
                continue  # re-armed before the crash; telemetry is live
            if incident.attempt_history:
                # Concluded-but-unverified at the crash: run the normal
                # verification tail.  If the crash actually landed
                # later (mid-escalation), re-verifying the last attempt
                # is harmless — it re-arms or closes — whereas skipping
                # it would strand a healthy link forever.
                incident.in_flight = True
                link = successor.fabric.links[link_id]
                successor._spawn(successor._verify_and_close(
                    incident, link, incident.attempt_history[-1][1]))
            else:
                monitor.unmute(link_id)  # never dispatched: re-detect
        accounted = set(successor.open_incidents)
        accounted.update(claim.order.link_id
                         for claim, _, _ in adopted)
        accounted.update(incident.link_id for incident
                         in successor.unresolved_incidents)
        for link_id in list(monitor._muted):
            if link_id not in accounted:
                monitor.unmute(link_id)

    def _adopt(self, controller: MaintenanceController, claim,
               incident, executor):
        """Generator: finish one inherited in-flight order safely.

        Waits for the executor's surviving queue entry to conclude (the
        physical work is already happening — dispatching again would
        repair the link twice), then re-verifies link health through
        the normal verification tail: healthy means close, unhealthy
        means re-arm telemetry and escalate through the usual path.
        """
        sim = controller.sim
        order = claim.order
        done = getattr(executor, "pending_acks", {}).get(order.order_id)
        if done is not None and not done.triggered:
            grace = sim.timeout(self.adoption_grace_seconds)
            yield sim.any_of([done, grace])
        controller.scheduler.after_repair(order)
        controller._release(claim)
        if controller.crashed:
            return
        if incident is None:
            return  # proactive order: traffic is back, nothing to verify
        # The inherited dispatch counts against the incident's budget,
        # exactly as it would have on the uncrashed controller.
        incident.prior_attempts += 1
        incident.attempt_history.append((sim.now, order.action))
        controller.repair_history.setdefault(
            order.link_id, []).append((sim.now, order.action))
        link = controller.fabric.links[order.link_id]
        yield from controller._verify_and_close(incident, link,
                                                order.action)


__all__ = [
    "JournalReplayError",
    "RecoveredState",
    "replay_journal",
    "restore_controller",
    "ControllerSupervisor",
]
