"""Physical repair procedures, shared by all executors.

Humans and robots perform the *same* physics — unseating transceivers,
cleaning end-faces, swapping spares — but with different skill profiles
(inspection quality, cleaning effectiveness, botch rates) and different
cascade contact profiles.  The executor processes own timing; this
module owns the state mutations.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from dcrobot.core.actions import RepairAction
from dcrobot.failures.cascade import CascadeModel, ContactProfile
from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link


@dataclasses.dataclass(frozen=True)
class SkillProfile:
    """Quality parameters of a maintenance actor."""

    #: P(a dirty core passes inspection) — perception quality.
    inspection_false_negative: float
    #: Fraction of contamination removed per cleaning pass.
    clean_effectiveness: float
    #: P(a cleaning pass smears instead of cleans).
    clean_smear_probability: float
    #: Cleaning passes before giving up on a failing end-face.
    max_clean_rounds: int
    #: P(the whole action is botched: motions happen, nothing fixed).
    botch_probability: float

    def __post_init__(self) -> None:
        for name in ("inspection_false_negative", "clean_effectiveness",
                     "clean_smear_probability", "botch_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.max_clean_rounds < 1:
            raise ValueError("max_clean_rounds must be >= 1")


#: A trained technician working manually (§3.2's processes).
TECHNICIAN_SKILL = SkillProfile(
    inspection_false_negative=0.10,
    clean_effectiveness=0.85,
    clean_smear_probability=0.04,
    max_clean_rounds=3,
    botch_probability=0.03,
)

#: A technician using Level-1 assist devices (§2.1, §3.3.2: the cleaning
#: unit "can also be used by a technician as a standalone Level 1
#: device"): machine-quality inspection, human-paced everything else.
ASSISTED_TECHNICIAN_SKILL = SkillProfile(
    inspection_false_negative=0.03,
    clean_effectiveness=0.92,
    clean_smear_probability=0.01,
    max_clean_rounds=4,
    botch_probability=0.02,
)

#: The cleaning robot: wet+dry methods, machine-verified inspection
#: (§3.3.2), effectively no motivation lapses.
ROBOT_SKILL = SkillProfile(
    inspection_false_negative=0.02,
    clean_effectiveness=0.92,
    clean_smear_probability=0.01,
    max_clean_rounds=4,
    botch_probability=0.005,
)


class RepairPhysics:
    """Executes the state mutations of each repair action."""

    def __init__(self, fabric: Fabric, health: HealthModel,
                 cascade: CascadeModel,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.fabric = fabric
        self.health = health
        self.cascade = cascade
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # -- individual procedures ----------------------------------------------

    def reach_in(self, link: Link, profile: ContactProfile, now: float):
        """Physically enter the cable bundle around the link.

        Returns the cascade :class:`TouchReport` — every procedure calls
        this exactly once before manipulating anything.
        """
        return self.cascade.touch(link, profile, now)

    def do_reseat(self, link: Link, now: float,
                  skill: SkillProfile) -> str:
        """Unseat and re-seat both transceivers (§3.2)."""
        if self.rng.random() < skill.botch_probability:
            return "botched: transceivers disturbed but not re-seated"
        for unit in link.transceivers():
            unit.unseat()
            unit.seat(now, rng=self.rng)
        return "reseated both ends"

    def do_clean(self, link: Link, now: float,
                 skill: SkillProfile) -> Tuple[bool, str]:
        """Detach, inspect, clean, verify, reassemble (§3.3.2).

        Returns (verified_clean, notes).  ``verified_clean=False`` means
        inspection kept failing after ``max_clean_rounds`` — a robot
        then requests human support; a human escalates the ticket.
        """
        cable = link.cable
        if not cable.cleanable:
            return False, f"{cable.kind.value} cable is not cleanable"
        if self.rng.random() < skill.botch_probability:
            return True, "botched: believed clean, dirt remains"

        all_verified = True
        for side in ("a", "b"):
            cable.detach(side)
            end = cable.endface(side)
            faces = [end]
            unit = link.transceiver_at(side)
            if unit.receptacle is not None:
                faces.append(unit.receptacle)
            for face in faces:
                verified = False
                for round_index in range(skill.max_clean_rounds):
                    if face.passes_inspection(
                            false_negative_rate=skill.
                            inspection_false_negative,
                            rng=self.rng):
                        verified = True
                        break
                    face.clean(
                        self.rng, wet=(round_index > 0),
                        effectiveness=skill.clean_effectiveness,
                        smear_probability=skill.clean_smear_probability)
                else:
                    verified = face.passes_inspection(
                        false_negative_rate=skill.inspection_false_negative,
                        rng=self.rng)
                all_verified = all_verified and verified
            cable.attach(side)
        note = ("cleaned and verified both ends" if all_verified
                else "cleaning could not be verified")
        return all_verified, note

    def pick_suspect_side(self, link: Link) -> str:
        """Which end to replace: visible faults first, then worst wear."""
        for side in ("a", "b"):
            unit = link.transceiver_at(side)
            if unit.hw_fault or unit.firmware_stuck:
                return side
        if link.transceiver_b.oxidation > link.transceiver_a.oxidation:
            return "b"
        return "a"

    def do_replace_transceiver(self, link: Link,
                               now: float) -> Tuple[bool, str]:
        """Swap the suspect transceiver for a spare from stock."""
        side = self.pick_suspect_side(link)
        old = link.transceiver_at(side)
        spare = self.fabric.take_spare_transceiver(
            old.form_factor, optical=old.optical, now=now)
        if spare is None:
            return False, f"no spare {old.form_factor.label} in stock"
        link.replace_transceiver(side, spare)
        return True, f"replaced {old.id} with {spare.id} (side {side})"

    def do_replace_cable(self, link: Link, now: float) -> Tuple[bool, str]:
        """Lay a new cable (and fresh transceivers on both ends)."""
        spare = self.fabric.take_spare_cable(link.cable, now=now)
        if spare is None:
            return False, "no spare cable in stock"
        old = link.replace_cable(spare)
        self.fabric.rebundle(old.id, spare.id, *link.endpoint_ids)
        return True, f"replaced cable {old.id} with {spare.id}"

    def do_replace_switchgear(self, link: Link,
                              now: float) -> Tuple[bool, str]:
        """Clear port / line-card hardware faults on both ends."""
        cleared = []
        for port in link.ports():
            if port.hw_fault:
                port.hw_fault = False
                cleared.append(port.id)
            parent = self.fabric.node(port.parent_id)
            card = getattr(parent, "line_card_of", lambda _pid: None)(
                port.id)
            if card is not None and card.hw_fault:
                card.replace()
                cleared.append(card.id)
        note = (f"replaced switchgear: {', '.join(cleared)}" if cleared
                else "no faulty switchgear found; swapped anyway")
        return True, note

    # -- dispatch --------------------------------------------------------------

    def perform(self, action: RepairAction, link: Link, now: float,
                skill: SkillProfile) -> Tuple[bool, str]:
        """Run one action's physics; returns (completed, notes).

        ``completed=False`` signals a *capability* failure (no spares,
        uncleanable cable) — distinct from a completed-but-ineffective
        repair, which telemetry discovers later.
        """
        if action is RepairAction.RESEAT:
            return True, self.do_reseat(link, now, skill)
        if action is RepairAction.CLEAN:
            return self.do_clean(link, now, skill)
        if action is RepairAction.REPLACE_TRANSCEIVER:
            return self.do_replace_transceiver(link, now)
        if action is RepairAction.REPLACE_CABLE:
            return self.do_replace_cable(link, now)
        if action is RepairAction.REPLACE_SWITCHGEAR:
            return self.do_replace_switchgear(link, now)
        raise ValueError(f"unknown action {action!r}")
