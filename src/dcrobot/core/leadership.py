"""Lease-based active/standby failover for the maintenance controller.

A self-maintaining datacenter cannot depend on an unmaintained
controller: when the primary dies, a standby must take over — and a
primary that merely *looked* dead (GC pause, partition from the lock
service) must not keep dispatching repairs alongside its successor.
The classic machinery:

* :class:`LeaseCoordinator` — the external lock service (etcd/ZooKeeper
  stand-in).  One node holds a TTL lease; acquisition hands out a
  **monotonically increasing fencing token**.  The coordinator is
  infrastructure: it does not crash when a controller does.
* :class:`FencingGuard` — sits at each executor (robot fleet,
  technician pool).  It admits a work order only if its fencing token
  is at least the highest the executor has seen, so orders from a
  deposed primary are rejected instead of double-dispatching a repair.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from dcrobot.core.journal import RecordKind, WriteAheadJournal
from dcrobot.obs import NULL_OBS


@dataclasses.dataclass(frozen=True)
class LeaseConfig:
    """Lease timing: how fast a dead primary is detected."""

    #: Lease lifetime; a primary silent this long is considered dead.
    ttl_seconds: float = 900.0
    #: Heartbeat (renewal) cadence; must give several tries per TTL.
    heartbeat_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        if not 0 < self.heartbeat_seconds < self.ttl_seconds:
            raise ValueError(
                "heartbeat_seconds must be in (0, ttl_seconds)")


class LeaseCoordinator:
    """The lock service: one lease, monotonic fencing tokens."""

    def __init__(self, config: Optional[LeaseConfig] = None,
                 journal: Optional[WriteAheadJournal] = None,
                 obs=NULL_OBS) -> None:
        self.config = config or LeaseConfig()
        self.journal = journal
        self.obs = obs if obs is not None else NULL_OBS
        self.holder: Optional[str] = None
        self.expires_at: float = float("-inf")
        #: The last token handed out; the next acquisition gets +1.
        self.fencing_token: int = 0
        #: (time, node, token) acquisition log, for reporting.
        self.acquisitions: List[Tuple[float, str, int]] = []

    def __repr__(self) -> str:
        return (f"<LeaseCoordinator holder={self.holder!r} "
                f"token={self.fencing_token}>")

    def holder_at(self, now: float) -> Optional[str]:
        """The current lease holder, or None if the lease expired."""
        if self.holder is not None and now < self.expires_at:
            return self.holder
        return None

    def is_held_by(self, node_id: str, now: float) -> bool:
        return self.holder_at(now) == node_id

    def try_acquire(self, node_id: str, now: float) -> Optional[int]:
        """Acquire the lease; returns the new fencing token, or None.

        Succeeds when the lease is free, expired, or already held by
        ``node_id`` (re-acquisition after a restart) — and always hands
        out a *fresh* token, so even a same-node restart is fenced
        against its own pre-crash orders still in executor queues.
        """
        current = self.holder_at(now)
        if current is not None and current != node_id:
            return None
        previous = self.holder
        self.holder = node_id
        self.expires_at = now + self.config.ttl_seconds
        self.fencing_token += 1
        self.acquisitions.append((now, node_id, self.fencing_token))
        if self.obs.enabled:
            self.obs.count("dcrobot_lease_acquisitions_total",
                           node=node_id)
        if self.journal is not None:
            if previous is not None and previous != node_id:
                self.journal.append(now, RecordKind.LEASE_LOST,
                                    node=previous,
                                    taken_by=node_id)
            self.journal.append(now, RecordKind.LEASE_ACQUIRED,
                                node=node_id,
                                token=self.fencing_token,
                                expires_at=self.expires_at)
        return self.fencing_token

    def renew(self, node_id: str, now: float) -> bool:
        """Extend the lease; False if ``node_id`` no longer holds it."""
        if not self.is_held_by(node_id, now):
            return False
        self.expires_at = now + self.config.ttl_seconds
        return True

    def release(self, node_id: str, now: float) -> bool:
        """Voluntarily give up the lease (clean shutdown)."""
        if self.holder != node_id:
            return False
        self.holder = None
        self.expires_at = float("-inf")
        if self.journal is not None:
            self.journal.append(now, RecordKind.LEASE_LOST,
                                node=node_id, taken_by=None)
        return True


@dataclasses.dataclass(frozen=True)
class FencedRejection:
    """One work order refused for carrying a stale fencing token."""

    time: float
    order_id: int
    link_id: str
    token: Optional[int]
    highest_seen: int


class FencingGuard:
    """Per-executor stale-token filter (split-brain protection).

    Executors remember the highest fencing token they have seen; an
    order carrying a lower token comes from a deposed primary and is
    rejected.  Orders without a token (leadership disabled) pass — the
    guard only bites once a fenced control plane is in play.
    """

    def __init__(self, obs=NULL_OBS) -> None:
        self.highest_seen: int = 0
        self.rejections: List[FencedRejection] = []
        self.obs = obs if obs is not None else NULL_OBS

    def __repr__(self) -> str:
        return (f"<FencingGuard highest={self.highest_seen} "
                f"rejected={len(self.rejections)}>")

    def advance(self, token: int) -> None:
        """A new primary announces its token at takeover (the fencing
        handshake): from here on, older tokens are refused even before
        the new primary's first dispatch."""
        self.highest_seen = max(self.highest_seen, int(token))

    def admit(self, token: Optional[int], *, time: float = 0.0,
              order_id: int = -1, link_id: str = "") -> bool:
        """Whether an order with this token may execute."""
        if token is None:
            return True
        if token < self.highest_seen:
            self.rejections.append(FencedRejection(
                time=time, order_id=order_id, link_id=link_id,
                token=token, highest_seen=self.highest_seen))
            if self.obs.enabled:
                self.obs.count("dcrobot_fenced_rejections_total")
            return False
        self.highest_seen = token
        return True


__all__ = [
    "LeaseConfig",
    "LeaseCoordinator",
    "FencingGuard",
    "FencedRejection",
]
