"""Maintenance policies: reactive, proactive, predictive (§4).

A policy decides *what to repair when*, in two hooks:

* :meth:`on_symptom` — the reactive path: telemetry reported a sick
  link; decide priority (and optionally pin an action, otherwise the
  escalation ladder chooses).
* :meth:`periodic` — the proactive path: called on a fixed cadence to
  propose maintenance for links nobody complained about.

The shipped policies mirror the paper's progression: today's reactive
process, the proactive reseat-sweep example ("if several links on a
switch have been fixed by reseating transceivers, the system could
proactively reseat all transceivers on that switch"), and ML-scored
predictive maintenance.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Callable, Dict, List, Optional

from dcrobot.core.actions import Priority, RepairAction
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.telemetry.events import Symptom, TelemetryEvent


@dataclasses.dataclass(frozen=True)
class PlanRequest:
    """A policy's request for maintenance on one link."""

    link_id: str
    priority: Priority
    reason: str
    #: Pin a specific action; None lets the escalation ladder decide.
    action: Optional[RepairAction] = None
    #: Proactive work may be deferred to a low-utilization window.
    proactive: bool = False


class NullPolicy:
    """Ignores everything — the no-maintenance baseline.

    Used by experiments to show what a fabric looks like when nobody
    repairs it (E2's "no repair" series).
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def on_symptom(self, event: TelemetryEvent) -> Optional[PlanRequest]:
        return None

    def periodic(self, now: float) -> List[PlanRequest]:
        return []

    def record_repair(self, link: Link, action: RepairAction,
                      effective: bool, now: float) -> None:
        """No state."""


class ReactivePolicy:
    """Today's process: act only on reported symptoms (§4: "The process
    is mostly reactive")."""

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def on_symptom(self, event: TelemetryEvent) -> Optional[PlanRequest]:
        priority = (Priority.HIGH if event.symptom is Symptom.LINK_DOWN
                    else Priority.NORMAL)
        return PlanRequest(link_id=event.link_id, priority=priority,
                           reason=f"reactive:{event.symptom.value}")

    def periodic(self, now: float) -> List[PlanRequest]:
        return []

    def record_repair(self, link: Link, action: RepairAction,
                      effective: bool, now: float) -> None:
        """Reactive policy keeps no state."""


class ProactivePolicy(ReactivePolicy):
    """Adds the paper's proactive reseat sweep.

    When ``trigger_count`` links on the same switch have been fixed by
    reseating within ``memory_seconds``, every other link on that switch
    is scheduled for a proactive reseat (deferred to a low-utilization
    window by the scheduler).
    """

    def __init__(self, fabric: Fabric, trigger_count: int = 2,
                 memory_seconds: float = 7 * 86400.0,
                 sweep_cooldown_seconds: float = 30 * 86400.0) -> None:
        super().__init__(fabric)
        if trigger_count < 1:
            raise ValueError("trigger_count must be >= 1")
        self.trigger_count = trigger_count
        self.memory_seconds = memory_seconds
        self.sweep_cooldown_seconds = sweep_cooldown_seconds
        self._reseat_fixes: Dict[str, List[float]] = defaultdict(list)
        self._last_sweep: Dict[str, float] = {}
        self._pending: List[PlanRequest] = []

    def record_repair(self, link: Link, action: RepairAction,
                      effective: bool, now: float) -> None:
        """Learn from completed repairs; maybe arm a sweep."""
        if action is not RepairAction.RESEAT or not effective:
            return
        for switch_id in link.endpoint_ids:
            fixes = self._reseat_fixes[switch_id]
            fixes.append(now)
            fixes[:] = [t for t in fixes
                        if now - t <= self.memory_seconds]
            if len(fixes) >= self.trigger_count:
                self._arm_sweep(switch_id, link.id, now)

    def _arm_sweep(self, switch_id: str, fixed_link_id: str,
                   now: float) -> None:
        last = self._last_sweep.get(switch_id, -float("inf"))
        if now - last < self.sweep_cooldown_seconds:
            return
        self._last_sweep[switch_id] = now
        for link in self.fabric.links_of(switch_id):
            if link.id == fixed_link_id:
                continue
            self._pending.append(PlanRequest(
                link_id=link.id, priority=Priority.NORMAL,
                reason=f"proactive:reseat-sweep:{switch_id}",
                action=RepairAction.RESEAT, proactive=True))

    def periodic(self, now: float) -> List[PlanRequest]:
        pending, self._pending = self._pending, []
        return pending


class PredictivePolicy(ReactivePolicy):
    """ML-scored proactive maintenance (§4 "Predictive maintenance").

    ``scorer(link, now) -> float`` returns the predicted probability of
    the link failing within the model's horizon; links above
    ``threshold`` get proactive attention.  The action is chosen from
    the link's construction: cleanable links get a clean (dirt is the
    dominant predictable cause), others a reseat.
    """

    def __init__(self, fabric: Fabric,
                 scorer: Callable[[Link, float], float],
                 threshold: float = 0.5,
                 cooldown_seconds: float = 7 * 86400.0) -> None:
        super().__init__(fabric)
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.scorer = scorer
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._last_request: Dict[str, float] = {}

    def periodic(self, now: float) -> List[PlanRequest]:
        requests = []
        for link in self.fabric.links.values():
            last = self._last_request.get(link.id, -float("inf"))
            if now - last < self.cooldown_seconds:
                continue
            score = self.scorer(link, now)
            if score < self.threshold:
                continue
            self._last_request[link.id] = now
            action = (RepairAction.CLEAN if link.cable.cleanable
                      else RepairAction.RESEAT)
            requests.append(PlanRequest(
                link_id=link.id, priority=Priority.NORMAL,
                reason=f"predictive:score={score:.2f}",
                action=action, proactive=True))
        return requests
