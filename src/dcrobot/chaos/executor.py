"""Acknowledgement chaos at the controller↔executor boundary.

:class:`ChaoticExecutor` wraps any executor (robot fleet, technician
pool) and perturbs only the *acknowledgement path* of
:meth:`submit`: the physical work still happens exactly as the inner
executor performs it, but the controller may see the completion event
late — or never.  This is the distributed-systems classic: you cannot
tell a lost ack from a lost operation, which is why the hardened
controller re-verifies link health before re-dispatching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.faults import ChaosFaultKind, ChaosLog
from dcrobot.core.actions import WorkOrder
from dcrobot.sim.engine import Simulation
from dcrobot.sim.events import Event, defer


class ChaoticExecutor:
    """Executor wrapper that delays or loses acknowledgements."""

    def __init__(self, sim: Simulation, inner, config: ChaosConfig,
                 rng: np.random.Generator,
                 log: Optional[ChaosLog] = None) -> None:
        self.sim = sim
        self.inner = inner
        self.config = config
        self.rng = rng
        self.log = log if log is not None else ChaosLog()
        #: Acks swallowed entirely (the controller never hears these).
        self.lost_acks = 0
        self.delayed_acks = 0

    def __repr__(self) -> str:
        return (f"<ChaoticExecutor over {self.inner!r} "
                f"lost={self.lost_acks} delayed={self.delayed_acks}>")

    # -- executor interface (perturbed) --------------------------------------

    def submit(self, order: WorkOrder) -> Event:
        done = self.inner.submit(order)
        roll = self.rng.random()
        if roll < self.config.ack_loss_prob:
            self.lost_acks += 1
            self.log.record(self.sim.now, ChaosFaultKind.ACK_LOST,
                            order.link_id,
                            f"order {order.order_id} ack swallowed")
            # The work proceeds; its completion event fires into the
            # void.  The caller's event never triggers.
            return Event(self.sim)
        if roll < self.config.ack_loss_prob + self.config.ack_delay_prob:
            low, high = self.config.ack_delay_seconds
            delay = (float(low) if high <= low
                     else float(self.rng.uniform(low, high)))
            self.delayed_acks += 1
            self.log.record(self.sim.now, ChaosFaultKind.ACK_DELAYED,
                            order.link_id,
                            f"order {order.order_id} ack +{delay:.0f}s")
            return defer(self.sim, done, delay)
        return done

    # -- executor interface (delegated untouched) ----------------------------

    @property
    def executor_id(self) -> str:
        return self.inner.executor_id

    @property
    def capabilities(self):
        return self.inner.capabilities

    def can_execute(self, action) -> bool:
        return self.inner.can_execute(action)

    def covers(self, rack_id: str) -> bool:
        return self.inner.covers(rack_id)

    def announce_touches(self, order: WorkOrder):
        return self.inner.announce_touches(order)

    def __getattr__(self, name):
        # Anything else (outcomes lists, unit rosters, ...) passes
        # through to the wrapped executor.
        return getattr(self.inner, name)
