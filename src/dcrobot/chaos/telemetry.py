"""Telemetry delivery chaos: dropout, duplication, corruption.

Installed as a :class:`~dcrobot.telemetry.monitor.TelemetryMonitor`
interceptor, so it sits between detection and the controller exactly
where a lossy reporting pipeline would.  Corruption scrambles the
symptom class (a flap reported as high loss, etc.) but never the link
id — a corrupted report still names a real link, it just lies about
what is wrong with it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.faults import ChaosFaultKind, ChaosLog
from dcrobot.telemetry.events import Symptom, TelemetryEvent


class TelemetryChaos:
    """Interceptor injecting delivery faults into the telemetry path."""

    def __init__(self, config: ChaosConfig, rng: np.random.Generator,
                 log: Optional[ChaosLog] = None) -> None:
        self.config = config
        self.rng = rng
        self.log = log if log is not None else ChaosLog()

    def _corrupt(self, event: TelemetryEvent) -> TelemetryEvent:
        others = [symptom for symptom in Symptom
                  if symptom is not event.symptom]
        scrambled = others[int(self.rng.integers(len(others)))]
        return TelemetryEvent(
            time=event.time, link_id=event.link_id, symptom=scrambled,
            detail=f"(corrupted from {event.symptom.value}) "
                   f"{event.detail}")

    def __call__(self, event: TelemetryEvent) -> List[TelemetryEvent]:
        config = self.config
        if self.rng.random() < config.telemetry_drop_prob:
            self.log.record(event.time, ChaosFaultKind.TELEMETRY_DROP,
                            event.link_id, event.symptom.value)
            return []
        if self.rng.random() < config.telemetry_corrupt_prob:
            corrupted = self._corrupt(event)
            self.log.record(event.time,
                            ChaosFaultKind.TELEMETRY_CORRUPT,
                            event.link_id,
                            f"{event.symptom.value} -> "
                            f"{corrupted.symptom.value}")
            event = corrupted
        if self.rng.random() < config.telemetry_dup_prob:
            self.log.record(event.time, ChaosFaultKind.TELEMETRY_DUP,
                            event.link_id, event.symptom.value)
            return [event, event]
        return [event]
