"""Chaos-injection knobs: per-fault probabilities and magnitudes."""

from __future__ import annotations

import dataclasses
from typing import Tuple

_PROB_FIELDS = (
    "robot_stall_prob",
    "robot_crash_prob",
    "robot_die_prob",
    "robot_zombie_prob",
    "battery_lie_prob",
    "partial_completion_prob",
    "telemetry_drop_prob",
    "telemetry_dup_prob",
    "telemetry_corrupt_prob",
    "ack_loss_prob",
    "ack_delay_prob",
    "controller_crash_prob",
    "controller_pause_prob",
    "controller_restart_prob",
)


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Probabilities and magnitudes of maintenance-plane faults.

    Per-operation probabilities are evaluated independently: each robot
    work order may stall, crash, or only partially complete; each
    telemetry delivery may be dropped, duplicated, or corrupted; each
    executor acknowledgement may be delayed or lost entirely.
    """

    #: Robot wedges mid-operation and must be power-cycled (adds time).
    robot_stall_prob: float = 0.0
    robot_stall_seconds: Tuple[float, float] = (600.0, 7200.0)
    #: Robot crashes mid-operation: the repair is aborted, the unit is
    #: out for the recovery period, and a human is requested.
    robot_crash_prob: float = 0.0
    robot_crash_recovery_seconds: Tuple[float, float] = (1800.0, 14400.0)
    #: Robot dies mid-operation: it stops heartbeating, never reports,
    #: and its carcass stays at the rack until recovered.  Requires a
    #: robot health model on the fleet to take effect.
    robot_die_prob: float = 0.0
    robot_die_work_seconds: Tuple[float, float] = (60.0, 900.0)
    #: Robot goes dark mid-operation (no heartbeats) but keeps working;
    #: its late completion must be refused by the fencing guard.
    robot_zombie_prob: float = 0.0
    robot_zombie_seconds: Tuple[float, float] = (3600.0, 14400.0)
    #: Battery gauge lies: the unit reports full charge but actually
    #: holds only this much, dying when the true charge runs out.
    battery_lie_prob: float = 0.0
    battery_lie_charge: Tuple[float, float] = (0.02, 0.10)
    #: Operation reports success but only partially landed (residual
    #: contact degradation the robot does not notice).
    partial_completion_prob: float = 0.0
    partial_residual_oxidation: Tuple[float, float] = (0.35, 0.7)
    #: Telemetry delivery chaos (between detection and the controller).
    telemetry_drop_prob: float = 0.0
    telemetry_dup_prob: float = 0.0
    telemetry_corrupt_prob: float = 0.0
    #: Work-order acknowledgement chaos at the executor boundary.
    ack_loss_prob: float = 0.0
    ack_delay_prob: float = 0.0
    ack_delay_seconds: Tuple[float, float] = (1800.0, 21600.0)
    #: Control-plane chaos, evaluated once per injector check interval
    #: (see ControllerChaos).  Crash kills the primary outright (a
    #: standby watchdog may promote a successor); pause partitions it
    #: from the lock service so it runs on as a zombie; restart is an
    #: immediate crash-and-recover in place.
    controller_crash_prob: float = 0.0
    controller_pause_prob: float = 0.0
    controller_pause_seconds: Tuple[float, float] = (1800.0, 14400.0)
    controller_restart_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("robot_stall_seconds",
                     "robot_crash_recovery_seconds",
                     "robot_die_work_seconds",
                     "robot_zombie_seconds",
                     "battery_lie_charge",
                     "partial_residual_oxidation",
                     "ack_delay_seconds",
                     "controller_pause_seconds"):
            low, high = getattr(self, name)
            if low < 0 or high < low:
                raise ValueError(
                    f"{name} must satisfy 0 <= low <= high, "
                    f"got ({low}, {high})")

    @property
    def any_enabled(self) -> bool:
        """Whether any injector has a non-zero probability."""
        return any(getattr(self, name) > 0 for name in _PROB_FIELDS)

    def scaled(self, factor: float) -> "ChaosConfig":
        """All probabilities multiplied by ``factor`` (capped at 1).

        Magnitude ranges are left unchanged; this is the fault-rate
        sweep knob for the chaos experiments.
        """
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return dataclasses.replace(
            self, **{name: min(1.0, getattr(self, name) * factor)
                     for name in _PROB_FIELDS})

    @classmethod
    def robot_failures(cls) -> "ChaosConfig":
        """A preset exercising only the robot fault battery (E18):
        stall, crash, die-mid-order, zombie completion, battery lie.
        The control-plane and telemetry injectors stay off so the
        experiment isolates the fleet layer."""
        return cls(
            robot_stall_prob=0.05,
            robot_crash_prob=0.03,
            robot_die_prob=0.05,
            robot_zombie_prob=0.04,
            battery_lie_prob=0.02,
        )

    @classmethod
    def moderate(cls) -> "ChaosConfig":
        """A preset with every injector on at moderate rates."""
        return cls(
            robot_stall_prob=0.08,
            robot_crash_prob=0.04,
            partial_completion_prob=0.06,
            telemetry_drop_prob=0.08,
            telemetry_dup_prob=0.05,
            telemetry_corrupt_prob=0.03,
            ack_loss_prob=0.06,
            ack_delay_prob=0.08,
            # Per check-interval (hourly), not per operation; these
            # draw from their own RNG substream and only fire when a
            # world opts in via ControllerChaos, so enabling them here
            # does not perturb worlds that never attach it.
            controller_crash_prob=0.01,
            controller_pause_prob=0.02,
            controller_restart_prob=0.01,
        )
