"""Chaos layer (S11): fault injection for the maintenance plane itself.

The paper's central risk is not that links fail — that is the job — but
that the *maintenance* plane misbehaves: robots stall or crash
mid-reseat, work-order acknowledgements get lost between executor and
controller, telemetry drops out or lies (§2 "robots will themselves
fail", §4).  This package wraps the simulated robot fleet, the
telemetry monitor, and the controller↔executor boundary with
seed-deterministic fault injectors, and provides a runtime
:class:`SafetyMonitor` that checks control-plane invariants every
simulation step.

Everything draws from dedicated chaos RNG substreams, so enabling chaos
never perturbs the physical world's random sequences: the same seed
produces the same link failures with chaos on or off.
"""

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.controller import ControllerChaos
from dcrobot.chaos.engine import ChaosEngine
from dcrobot.chaos.executor import ChaoticExecutor
from dcrobot.chaos.faults import ChaosFault, ChaosFaultKind, ChaosLog
from dcrobot.chaos.robot import RobotChaos, RobotChaosPlan
from dcrobot.chaos.safety import (
    InvariantViolation,
    SafetyMonitor,
    SafetyReport,
)
from dcrobot.chaos.telemetry import TelemetryChaos

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ControllerChaos",
    "ChaoticExecutor",
    "ChaosFault",
    "ChaosFaultKind",
    "ChaosLog",
    "RobotChaos",
    "RobotChaosPlan",
    "TelemetryChaos",
    "SafetyMonitor",
    "SafetyReport",
    "InvariantViolation",
]
