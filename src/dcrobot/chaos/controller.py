"""Control-plane fault injection: crash, pause, restart the controller.

The rest of the chaos package attacks the maintenance plane's *limbs* —
robots, telemetry, acknowledgements.  This injector attacks its *brain*:
the maintenance controller itself dies (fail-stop crash), stalls long
enough to lose its lease while still running (the GC-pause/partition
zombie), or is crash-restarted in place.  All three are driven through
the :class:`~dcrobot.core.recovery.ControllerSupervisor`, which is the
infrastructure that would notice in a real deployment.

Faults are evaluated as independent coin flips once per check interval,
matching the per-operation style of the other injectors.
"""

from __future__ import annotations

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.faults import ChaosFaultKind, ChaosLog


class ControllerChaos:
    """Periodically crashes, pauses, or restarts the live controller."""

    def __init__(self, sim, config: ChaosConfig, supervisor,
                 rng: np.random.Generator, log: ChaosLog,
                 check_seconds: float = 3600.0) -> None:
        if check_seconds <= 0:
            raise ValueError("check_seconds must be > 0")
        self.sim = sim
        self.config = config
        self.supervisor = supervisor
        self.rng = rng
        self.log = log
        self.check_seconds = check_seconds
        self.injected = 0

    def run(self):
        """Generator process: roll the control-plane dice forever."""
        config = self.config
        while True:
            yield self.sim.timeout(self.check_seconds)
            controller = self.supervisor.controller
            if controller.crashed:
                continue  # already down; give recovery room to work
            node = controller.node_id
            if self.rng.random() < config.controller_crash_prob:
                self.log.record(self.sim.now,
                                ChaosFaultKind.CONTROLLER_CRASH, node)
                self.injected += 1
                self.supervisor.crash_primary("chaos crash")
            elif self.rng.random() < config.controller_pause_prob:
                duration = float(self.rng.uniform(
                    *config.controller_pause_seconds))
                self.log.record(self.sim.now,
                                ChaosFaultKind.CONTROLLER_PAUSE, node,
                                f"{duration:.0f}s partition")
                self.injected += 1
                self.supervisor.partition_primary(duration)
            elif self.rng.random() < config.controller_restart_prob:
                self.log.record(self.sim.now,
                                ChaosFaultKind.CONTROLLER_RESTART, node)
                self.injected += 1
                self.supervisor.restart_primary("chaos restart")
