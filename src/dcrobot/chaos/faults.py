"""Ground-truth records of injected maintenance-plane faults."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List

from dcrobot.obs import NULL_OBS


class ChaosFaultKind(enum.Enum):
    """The maintenance-plane fault classes the chaos layer injects."""

    ROBOT_STALL = "robot-stall"
    ROBOT_CRASH = "robot-crash"
    ROBOT_DIE = "robot-die"
    ROBOT_ZOMBIE = "robot-zombie"
    BATTERY_LIE = "battery-lie"
    PARTIAL_COMPLETION = "partial-completion"
    TELEMETRY_DROP = "telemetry-drop"
    TELEMETRY_DUP = "telemetry-dup"
    TELEMETRY_CORRUPT = "telemetry-corrupt"
    ACK_LOST = "ack-lost"
    ACK_DELAYED = "ack-delayed"
    CONTROLLER_CRASH = "controller-crash"
    CONTROLLER_PAUSE = "controller-pause"
    CONTROLLER_RESTART = "controller-restart"


@dataclasses.dataclass(frozen=True)
class ChaosFault:
    """One injected maintenance-plane fault (ground truth)."""

    time: float
    kind: ChaosFaultKind
    #: What the fault hit: a link id, robot unit id, or order id string.
    target: str
    detail: str = ""


class ChaosLog:
    """Append-only fault log shared by all injectors of one engine."""

    def __init__(self, obs=NULL_OBS) -> None:
        self.faults: List[ChaosFault] = []
        self.counts: Dict[ChaosFaultKind, int] = {
            kind: 0 for kind in ChaosFaultKind}
        self.obs = obs if obs is not None else NULL_OBS

    def record(self, time: float, kind: ChaosFaultKind, target: str,
               detail: str = "") -> ChaosFault:
        fault = ChaosFault(time, kind, target, detail)
        self.faults.append(fault)
        self.counts[kind] += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_chaos_faults_total",
                           kind=kind.value)
        return fault

    def count(self, kind: ChaosFaultKind) -> int:
        return self.counts[kind]

    @property
    def total(self) -> int:
        return len(self.faults)

    def summary(self) -> Dict[str, int]:
        """Fault counts keyed by kind value (stable for reporting)."""
        return {kind.value: self.counts[kind] for kind in ChaosFaultKind}
