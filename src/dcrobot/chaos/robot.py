"""Mid-operation robot faults: stall, crash, partial completion.

The fleet consults :class:`RobotChaos` once per executed work order and
gets back a :class:`RobotChaosPlan` — the faults that will strike this
operation.  Drawing the whole plan up front from a dedicated RNG keeps
chaos deterministic per seed regardless of how the operation itself
interleaves with other simulation processes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.faults import ChaosFaultKind, ChaosLog
from dcrobot.core.actions import WorkOrder


@dataclasses.dataclass(frozen=True)
class RobotChaosPlan:
    """The faults striking one robot operation (drawn up front)."""

    stall_seconds: float = 0.0
    crash: bool = False
    crash_recovery_seconds: float = 0.0
    partial: bool = False

    @property
    def any(self) -> bool:
        return self.stall_seconds > 0 or self.crash or self.partial


class RobotChaos:
    """Per-operation fault planner for the robot fleet."""

    def __init__(self, config: ChaosConfig, rng: np.random.Generator,
                 log: Optional[ChaosLog] = None) -> None:
        self.config = config
        self.rng = rng
        self.log = log if log is not None else ChaosLog()

    def _uniform(self, bounds) -> float:
        low, high = bounds
        if high <= low:
            return float(low)
        return float(self.rng.uniform(low, high))

    def plan_for(self, order: WorkOrder, now: float) -> RobotChaosPlan:
        """Draw this operation's fault plan (and log what was drawn)."""
        config = self.config
        stall_seconds = 0.0
        if self.rng.random() < config.robot_stall_prob:
            stall_seconds = self._uniform(config.robot_stall_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_STALL,
                            order.link_id,
                            f"order {order.order_id} stalled "
                            f"{stall_seconds:.0f}s")
        crash = self.rng.random() < config.robot_crash_prob
        recovery = 0.0
        if crash:
            recovery = self._uniform(config.robot_crash_recovery_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_CRASH,
                            order.link_id,
                            f"order {order.order_id} crashed; recovery "
                            f"{recovery:.0f}s")
        partial = (not crash
                   and self.rng.random() < config.partial_completion_prob)
        if partial:
            self.log.record(now, ChaosFaultKind.PARTIAL_COMPLETION,
                            order.link_id,
                            f"order {order.order_id} will only "
                            f"partially complete")
        return RobotChaosPlan(stall_seconds=stall_seconds, crash=crash,
                              crash_recovery_seconds=recovery,
                              partial=partial)

    def apply_partial(self, link, now: float) -> None:
        """Leave residual degradation after a 'successful' repair.

        The robot reports completion; physically, one contact retains
        oxidation — the lie the controller's verification step exists
        to catch.
        """
        side = "a" if self.rng.random() < 0.5 else "b"
        unit = link.transceiver_at(side)
        residue = self._uniform(self.config.partial_residual_oxidation)
        unit.oxidation = min(1.0, unit.oxidation + residue)
