"""Mid-operation robot faults: stall, crash, partial completion.

The fleet consults :class:`RobotChaos` once per executed work order and
gets back a :class:`RobotChaosPlan` — the faults that will strike this
operation.  Drawing the whole plan up front from a dedicated RNG keeps
chaos deterministic per seed regardless of how the operation itself
interleaves with other simulation processes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.faults import ChaosFaultKind, ChaosLog
from dcrobot.core.actions import WorkOrder


@dataclasses.dataclass(frozen=True)
class RobotChaosPlan:
    """The faults striking one robot operation (drawn up front)."""

    stall_seconds: float = 0.0
    crash: bool = False
    crash_recovery_seconds: float = 0.0
    partial: bool = False
    #: Unit dies after this much rack work (health-model fleets only).
    die: bool = False
    die_after_seconds: float = 0.0
    #: Unit goes dark (no heartbeats) for this long mid-operation,
    #: then tries to report a late completion.
    zombie: bool = False
    zombie_seconds: float = 0.0
    #: Battery gauge lies: true charge is this fraction, not "full".
    battery_lie: bool = False
    battery_lie_charge: float = 0.0

    @property
    def any(self) -> bool:
        return (self.stall_seconds > 0 or self.crash or self.partial
                or self.die or self.zombie or self.battery_lie)


class RobotChaos:
    """Per-operation fault planner for the robot fleet."""

    def __init__(self, config: ChaosConfig, rng: np.random.Generator,
                 log: Optional[ChaosLog] = None) -> None:
        self.config = config
        self.rng = rng
        self.log = log if log is not None else ChaosLog()

    def _uniform(self, bounds) -> float:
        low, high = bounds
        if high <= low:
            return float(low)
        return float(self.rng.uniform(low, high))

    def plan_for(self, order: WorkOrder, now: float) -> RobotChaosPlan:
        """Draw this operation's fault plan (and log what was drawn)."""
        config = self.config
        stall_seconds = 0.0
        if self.rng.random() < config.robot_stall_prob:
            stall_seconds = self._uniform(config.robot_stall_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_STALL,
                            order.link_id,
                            f"order {order.order_id} stalled "
                            f"{stall_seconds:.0f}s")
        crash = self.rng.random() < config.robot_crash_prob
        recovery = 0.0
        if crash:
            recovery = self._uniform(config.robot_crash_recovery_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_CRASH,
                            order.link_id,
                            f"order {order.order_id} crashed; recovery "
                            f"{recovery:.0f}s")
        partial = (not crash
                   and self.rng.random() < config.partial_completion_prob)
        if partial:
            self.log.record(now, ChaosFaultKind.PARTIAL_COMPLETION,
                            order.link_id,
                            f"order {order.order_id} will only "
                            f"partially complete")
        # The robot-death battery (die / zombie / battery-lie) draws are
        # gated on their probabilities being enabled at all, so worlds
        # configured before these faults existed consume a bit-identical
        # RNG stream (the chaos goldens depend on it).
        die = False
        die_after = 0.0
        if (config.robot_die_prob > 0
                and self.rng.random() < config.robot_die_prob):
            die = True
            die_after = self._uniform(config.robot_die_work_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_DIE,
                            order.link_id,
                            f"order {order.order_id}: unit dies after "
                            f"{die_after:.0f}s at the rack")
        zombie = False
        zombie_seconds = 0.0
        if (not die and config.robot_zombie_prob > 0
                and self.rng.random() < config.robot_zombie_prob):
            zombie = True
            zombie_seconds = self._uniform(config.robot_zombie_seconds)
            self.log.record(now, ChaosFaultKind.ROBOT_ZOMBIE,
                            order.link_id,
                            f"order {order.order_id}: unit goes dark "
                            f"{zombie_seconds:.0f}s mid-operation")
        battery_lie = False
        battery_charge = 0.0
        if (not die and config.battery_lie_prob > 0
                and self.rng.random() < config.battery_lie_prob):
            battery_lie = True
            battery_charge = self._uniform(config.battery_lie_charge)
            self.log.record(now, ChaosFaultKind.BATTERY_LIE,
                            order.link_id,
                            f"order {order.order_id}: gauge says full, "
                            f"true charge {battery_charge:.2f}")
        return RobotChaosPlan(stall_seconds=stall_seconds, crash=crash,
                              crash_recovery_seconds=recovery,
                              partial=partial,
                              die=die, die_after_seconds=die_after,
                              zombie=zombie,
                              zombie_seconds=zombie_seconds,
                              battery_lie=battery_lie,
                              battery_lie_charge=battery_charge)

    def apply_partial(self, link, now: float) -> None:
        """Leave residual degradation after a 'successful' repair.

        The robot reports completion; physically, one contact retains
        oxidation — the lie the controller's verification step exists
        to catch.
        """
        side = "a" if self.rng.random() < 0.5 else "b"
        unit = link.transceiver_at(side)
        residue = self._uniform(self.config.partial_residual_oxidation)
        unit.oxidation = min(1.0, unit.oxidation + residue)
