"""Runtime invariant checking for the maintenance control plane.

The :class:`SafetyMonitor` hangs off the simulation engine's step hook
and audits the control plane's externally observable state every step
(or every ``check_interval_seconds`` of simulated time):

* **maintenance-orphan** — a link sits in ``MAINTENANCE`` state with no
  in-flight work order claiming it and no executor physically touching
  it: someone forgot to give the link back.
* **double-owner** — two in-flight work orders claim the same link: the
  controller double-dispatched a repair.
* **escalation-regression** — an incident's attempt history walked
  *down* the escalation ladder: the §3.2 stage ordering was violated.
* **drain-orphan** — the scheduler still holds traffic drained for a
  work order that is no longer in flight: drained capacity was never
  restored.

Violations are recorded once at onset (a persistent condition is one
violation, not one per step) as structured
:class:`InvariantViolation` records.  A separate *gauge* counts stuck
work orders — claims older than ``stuck_after_seconds`` — which is the
signature failure of the naive (no-timeout) controller under ack loss.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from dcrobot.network.enums import LinkState


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach, recorded at onset."""

    time: float
    kind: str
    #: Link id, order id, or incident link id the breach concerns.
    target: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class SafetyReport:
    """Summary of a run's safety posture."""

    checks_run: int
    total_violations: int
    by_kind: Dict[str, int]
    stuck_order_count: int

    def clean(self) -> bool:
        return self.total_violations == 0


class SafetyMonitor:
    """Audits control-plane invariants as the simulation runs."""

    MAINTENANCE_ORPHAN = "maintenance-orphan"
    DOUBLE_OWNER = "double-owner"
    ESCALATION_REGRESSION = "escalation-regression"
    DRAIN_ORPHAN = "drain-orphan"

    def __init__(self, sim, controller,
                 executors: Sequence = (),
                 check_interval_seconds: float = 0.0,
                 stuck_after_seconds: float = 86400.0) -> None:
        if check_interval_seconds < 0:
            raise ValueError("check_interval_seconds must be >= 0")
        if stuck_after_seconds <= 0:
            raise ValueError("stuck_after_seconds must be > 0")
        self.sim = sim
        self.controller = controller
        self.fabric = controller.fabric
        self.scheduler = controller.scheduler
        self.ladder = controller.ladder
        self.executors = list(executors)
        self.check_interval_seconds = check_interval_seconds
        self.stuck_after_seconds = stuck_after_seconds

        self.checks_run = 0
        self.violations: List[InvariantViolation] = []
        #: Currently-violating (kind, target) pairs, for onset dedup.
        self._active_keys: Set[Tuple[str, str]] = set()
        #: Attempt-history prefix already audited, per incident.
        self._audited: Dict[int, int] = {}
        self._last_check: Optional[float] = None
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "SafetyMonitor":
        """Register with the engine's per-step hook."""
        if not self._attached:
            self.sim.add_step_hook(self.check)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_step_hook(self.check)
            self._attached = False

    def rebind(self, controller) -> None:
        """Audit a successor controller after a failover.

        The fabric, scheduler, ladder, and executors are shared
        infrastructure — only the controller object is replaced.  The
        audited-history cursors carry over (keyed by incident identity),
        so adopted incidents are not re-audited from scratch.
        """
        self.controller = controller
        self.scheduler = controller.scheduler
        self.ladder = controller.ladder

    # -- checking ------------------------------------------------------------

    def check(self, now: float) -> None:
        """One audit pass (throttled to the check interval)."""
        if (self.check_interval_seconds > 0
                and self._last_check is not None
                and now - self._last_check < self.check_interval_seconds):
            return
        self._last_check = now
        self.checks_run += 1

        current: List[Tuple[Tuple[str, str], str]] = []
        current.extend(self._check_maintenance_orphans())
        current.extend(self._check_double_owners())
        current.extend(self._check_drain_orphans())

        keys_now = {key for key, _ in current}
        for key, detail in current:
            if key not in self._active_keys:
                self._record(InvariantViolation(
                    time=now, kind=key[0], target=key[1], detail=detail))
        self._active_keys = keys_now

        # History audits record directly (the cursor prevents repeats).
        self._check_escalation_monotone(now)

    def _record(self, violation: InvariantViolation) -> None:
        """Append one violation (and surface it to observability)."""
        self.violations.append(violation)
        obs = self.controller.obs
        if obs.enabled:
            target = violation.target
            if violation.kind == self.DRAIN_ORPHAN:
                # The target is a raw (process-global) order id; spans
                # carry the per-trace ordinal to stay reproducible.
                target = f"order-{obs.ordinal('order', int(target))}"
            obs.tracer.record("safety.violation", kind=violation.kind,
                              target=target)
            obs.count("dcrobot_safety_violations_total",
                      kind=violation.kind)

    def _touched_by_executor(self, link_id: str) -> bool:
        return any(link_id in getattr(executor, "busy_links", ())
                   for executor in self.executors)

    def _check_maintenance_orphans(self):
        found = []
        claimed = set(self.controller.active_orders)
        for link in self.fabric.links.values():
            if link.state is not LinkState.MAINTENANCE:
                continue
            if link.id in claimed or self._touched_by_executor(link.id):
                continue
            found.append(((self.MAINTENANCE_ORPHAN, link.id),
                          "link under maintenance with no owner"))
        return found

    def _check_double_owners(self):
        found = []
        for link_id, claims in self.controller.active_orders.items():
            if len(claims) > 1:
                owners = ", ".join(
                    f"order {claim.order.order_id} "
                    f"({claim.executor_id})" for claim in claims)
                found.append(((self.DOUBLE_OWNER, link_id), owners))
        return found

    def _check_drain_orphans(self):
        found = []
        in_flight = self.controller.inflight_order_ids()
        for order_id, links in self.scheduler.outstanding_drains().items():
            if order_id not in in_flight:
                found.append(
                    ((self.DRAIN_ORPHAN, str(order_id)),
                     f"drains held for finished order: {links}"))
        return found

    def _incidents(self):
        yield from self.controller.open_incidents.values()
        yield from self.controller.closed_incidents
        yield from self.controller.unresolved_incidents

    def _check_escalation_monotone(self, now: float) -> None:
        ladder = self.ladder.config.ladder
        for incident in self._incidents():
            history = incident.attempt_history
            cursor = self._audited.get(id(incident), 0)
            if cursor >= len(history):
                continue
            prev_rank = -1
            if cursor > 0:
                ranked = [ladder.index(action)
                          for _, action in history[:cursor]
                          if action in ladder]
                prev_rank = max(ranked, default=-1)
            for index in range(cursor, len(history)):
                when, action = history[index]
                if action not in ladder:
                    continue
                rank = ladder.index(action)
                if rank < prev_rank:
                    self._record(InvariantViolation(
                        time=now, kind=self.ESCALATION_REGRESSION,
                        target=incident.link_id,
                        detail=f"{action.value} (stage {rank}) after "
                               f"stage {prev_rank} at t={when:.0f}"))
                prev_rank = max(prev_rank, rank)
            self._audited[id(incident)] = len(history)

    # -- gauges and reporting ------------------------------------------------

    def stuck_orders(self, now: Optional[float] = None) -> List:
        """Claims older than the stuck threshold (leaked work orders)."""
        now = self.sim.now if now is None else now
        return [claim
                for claims in self.controller.active_orders.values()
                for claim in claims
                if now - claim.dispatched_at > self.stuck_after_seconds]

    def report(self, now: Optional[float] = None) -> SafetyReport:
        by_kind: Dict[str, int] = {}
        for violation in self.violations:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        return SafetyReport(
            checks_run=self.checks_run,
            total_violations=len(self.violations),
            by_kind=by_kind,
            stuck_order_count=len(self.stuck_orders(now)))
