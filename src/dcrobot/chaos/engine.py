"""Wires the chaos injectors into a built world.

One :class:`ChaosEngine` owns the unified ground-truth
:class:`~dcrobot.chaos.faults.ChaosLog` and the dedicated RNG
substreams (spawned under ``"chaos"`` so the physical world's random
sequences are untouched by turning chaos on).  Attachment is explicit
and piecemeal — experiments can enable only the injector families a
sweep calls for.
"""

from __future__ import annotations

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.controller import ControllerChaos
from dcrobot.chaos.executor import ChaoticExecutor
from dcrobot.chaos.faults import ChaosLog
from dcrobot.chaos.robot import RobotChaos
from dcrobot.chaos.telemetry import TelemetryChaos
from dcrobot.sim.engine import Simulation
from dcrobot.sim.rng import RandomStreams


class ChaosEngine:
    """Factory and registry for one simulation's chaos injectors."""

    def __init__(self, sim: Simulation, config: ChaosConfig,
                 streams: RandomStreams, obs=None) -> None:
        self.sim = sim
        self.config = config
        self.log = ChaosLog(obs=obs)
        chaos_streams = streams.spawn("chaos")
        self.robot = RobotChaos(config, chaos_streams.stream("robot"),
                                self.log)
        self.telemetry = TelemetryChaos(
            config, chaos_streams.stream("telemetry"), self.log)
        self._ack_rng = chaos_streams.stream("ack")
        self._controller_rng = chaos_streams.stream("controller")
        self.wrapped_executors = []
        self.controller_chaos = None

    def attach_fleet(self, fleet) -> None:
        """Enable mid-operation robot faults on a fleet."""
        fleet.chaos = self.robot

    def attach_monitor(self, monitor) -> None:
        """Enable telemetry delivery faults on a monitor."""
        monitor.add_interceptor(self.telemetry)

    def attach_supervisor(self, supervisor,
                          check_seconds: float = 3600.0) -> ControllerChaos:
        """Enable crash/pause/restart faults on the control plane."""
        self.controller_chaos = ControllerChaos(
            self.sim, self.config, supervisor, self._controller_rng,
            self.log, check_seconds=check_seconds)
        self.sim.process(self.controller_chaos.run())
        return self.controller_chaos

    def wrap_executor(self, inner) -> ChaoticExecutor:
        """Wrap an executor's ack path with loss/delay chaos."""
        wrapped = ChaoticExecutor(self.sim, inner, self.config,
                                  self._ack_rng, self.log)
        self.wrapped_executors.append(wrapped)
        return wrapped

    def summary(self) -> dict:
        """Injected-fault counts by kind (ground truth for scoring)."""
        return self.log.summary()
