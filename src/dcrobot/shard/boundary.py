"""The boundary shard: cross-hall links of a campus world (S20).

Hall shards are fully independent columnar worlds; everything that
crosses a hall wall lives here instead.  The boundary shard owns the
inter-hall links (a small ECMP fan per hall pair, wired as a ring so a
campus stays connected with O(halls) links), spreads offered cross-hall
traffic over the live members of each fan, and keeps byte/flow
accounting precise enough to prove conservation: every offered byte is
either delivered over some live boundary link or counted lost, and the
per-hall attribution (half of each link's bytes to each of its two
endpoint halls) sums back to the delivered total exactly.

The federation layer (:mod:`dcrobot.shard.federation`) drives this
shard from its own RNG substream, so boundary activity never perturbs
any hall's streams — the shard-isolation property the test battery
pins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

__all__ = [
    "BoundaryConfig",
    "BoundaryLink",
    "BoundaryShard",
    "boundary_pairs",
]


@dataclasses.dataclass(frozen=True)
class BoundaryConfig:
    """Shape and load of the campus boundary."""

    #: Parallel links per hall pair (the cross-hall ECMP fan width).
    links_per_pair: int = 2
    #: Per-link capacity, used for utilization reporting.
    capacity_gbps: float = 400.0
    #: Cross-hall traffic cadence and per-window load.
    window_seconds: float = 1800.0
    flows_per_window: int = 60
    mean_flow_bytes: float = 4.0e9
    #: Boundary-link failure rate (per link per day) and repair model.
    failure_rate_per_day: float = 0.05
    detect_seconds: float = 300.0
    repair_hours_mean: float = 2.0

    def __post_init__(self) -> None:
        if self.links_per_pair < 1:
            raise ValueError("links_per_pair must be >= 1")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        for name in ("capacity_gbps", "mean_flow_bytes",
                     "repair_hours_mean"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.flows_per_window < 0:
            raise ValueError("flows_per_window must be >= 0")
        if self.failure_rate_per_day < 0 or self.detect_seconds < 0:
            raise ValueError("rates/delays must be >= 0")


def boundary_pairs(halls: int) -> List[Tuple[int, int]]:
    """The hall pairs the boundary wires: a ring of adjacent halls.

    1 hall has no boundary; 2 halls share one pair; 3+ halls form a
    ring (consecutive pairs plus the wrap link), so every hall has two
    cross-hall neighbours and the campus survives any single pair
    going dark.
    """
    if halls < 2:
        return []
    pairs = [(index, index + 1) for index in range(halls - 1)]
    if halls > 2:
        pairs.append((0, halls - 1))
    return pairs


@dataclasses.dataclass
class BoundaryLink:
    """One cross-hall link and its accumulated accounting."""

    lid: str
    hall_a: int
    hall_b: int
    capacity_bps: float
    drained: bool = False
    failed: bool = False
    bytes_total: float = 0.0
    flows_total: int = 0

    @property
    def live(self) -> bool:
        """Carrying traffic: neither administratively drained nor
        failed."""
        return not (self.drained or self.failed)

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.hall_a, self.hall_b)

    def __repr__(self) -> str:
        state = "live" if self.live else (
            "failed" if self.failed else "drained")
        return (f"<BoundaryLink {self.lid} {self.hall_a}<->"
                f"{self.hall_b} {state} bytes={self.bytes_total:.3g}>")


class BoundaryShard:
    """Cross-hall links plus conservation-grade traffic accounting.

    ``offer`` spreads a window's bytes/flows evenly over the live
    members of the pair's fan (bytes exactly, flows with the remainder
    assigned to the lexically-first links so integer totals conserve);
    with the whole fan dark the window is counted lost.  Totals obey
    ``offered == delivered + lost`` and ``delivered == sum(link
    bytes) == sum(per-hall attribution)`` — the invariants the
    hypothesis suite holds to 1e-12.
    """

    def __init__(self, halls: int,
                 config: BoundaryConfig = BoundaryConfig()) -> None:
        if halls < 1:
            raise ValueError("halls must be >= 1")
        self.halls = halls
        self.config = config
        self.links: Dict[str, BoundaryLink] = {}
        self._by_pair: Dict[Tuple[int, int], List[str]] = {}
        capacity_bps = config.capacity_gbps * 1e9
        for hall_a, hall_b in boundary_pairs(halls):
            lids = []
            for index in range(config.links_per_pair):
                lid = f"xh:{hall_a}-{hall_b}:{index}"
                self.links[lid] = BoundaryLink(
                    lid=lid, hall_a=hall_a, hall_b=hall_b,
                    capacity_bps=capacity_bps)
                lids.append(lid)
            self._by_pair[(hall_a, hall_b)] = lids
        self.offered_bytes = 0.0
        self.lost_bytes = 0.0
        self.offered_flows = 0
        self.lost_flows = 0

    def __repr__(self) -> str:
        return (f"<BoundaryShard halls={self.halls} "
                f"links={len(self.links)} "
                f"live={sum(1 for link in self.links.values() if link.live)}>")

    # -- structure ----------------------------------------------------

    @property
    def pairs(self) -> List[Tuple[int, int]]:
        return list(self._by_pair)

    def link(self, lid: str) -> BoundaryLink:
        return self.links[lid]

    def links_between(self, hall_a: int,
                      hall_b: int) -> List[BoundaryLink]:
        pair = (hall_a, hall_b) if hall_a < hall_b else (hall_b, hall_a)
        return [self.links[lid] for lid in self._by_pair.get(pair, [])]

    def live_links(self, hall_a: int,
                   hall_b: int) -> List[BoundaryLink]:
        return [link for link in self.links_between(hall_a, hall_b)
                if link.live]

    def hall_links(self, hall_id: int) -> List[BoundaryLink]:
        return [link for link in self.links.values()
                if hall_id in link.pair]

    # -- state transitions --------------------------------------------

    def drain(self, lid: str) -> None:
        self.links[lid].drained = True

    def undrain(self, lid: str) -> None:
        self.links[lid].drained = False

    def fail(self, lid: str) -> None:
        self.links[lid].failed = True

    def repair(self, lid: str) -> None:
        self.links[lid].failed = False

    # -- traffic ------------------------------------------------------

    def offer(self, hall_a: int, hall_b: int, bytes_: float,
              flows: int) -> float:
        """Offer one window of cross-hall traffic; returns delivered
        bytes (0.0 when the whole fan is down)."""
        if bytes_ < 0 or flows < 0:
            raise ValueError("offered bytes/flows must be >= 0")
        self.offered_bytes += bytes_
        self.offered_flows += flows
        live = self.live_links(hall_a, hall_b)
        if not live:
            self.lost_bytes += bytes_
            self.lost_flows += flows
            return 0.0
        share = bytes_ / len(live)
        flow_share, remainder = divmod(flows, len(live))
        for index, link in enumerate(sorted(live,
                                            key=lambda item: item.lid)):
            link.bytes_total += share
            link.flows_total += flow_share + (1 if index < remainder
                                              else 0)
        return bytes_

    # -- accounting ---------------------------------------------------

    @property
    def delivered_bytes(self) -> float:
        return sum(link.bytes_total for link in self.links.values())

    @property
    def delivered_flows(self) -> int:
        return sum(link.flows_total for link in self.links.values())

    def hall_attributed_bytes(self, hall_id: int) -> float:
        """This hall's share of boundary bytes: half of every link it
        terminates (each cross-hall byte belongs to exactly two
        halls)."""
        return sum(link.bytes_total / 2.0
                   for link in self.hall_links(hall_id))

    def conservation_error(self) -> float:
        """|offered - delivered - lost| — zero up to float addition
        noise; the property suite holds it to 1e-12 relative."""
        return abs(self.offered_bytes - self.delivered_bytes
                   - self.lost_bytes)

    def live_fraction(self) -> float:
        """Fraction of boundary links carrying traffic (1.0 for a
        boundary-less single hall)."""
        if not self.links:
            return 1.0
        live = sum(1 for link in self.links.values() if link.live)
        return live / len(self.links)

    def smi_factor(self) -> float:
        """The boundary's contribution to campus SMI: its live
        fraction, i.e. how maintainable the hall interconnect
        currently is."""
        return self.live_fraction()
