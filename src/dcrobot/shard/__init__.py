"""Sharded multi-hall worlds with a federated control plane (S20).

One columnar shard per hall (:class:`HallShard`), cross-hall links on
a :class:`BoundaryShard`, and a :class:`CampusWorld` composing N
halls behind the existing ``WorldConfig`` surface with a thin
:class:`CampusFederation` routing cross-hall incidents, merging
per-shard metrics, and keeping campus-wide SMI.
"""

from dcrobot.shard.boundary import (
    BoundaryConfig,
    BoundaryLink,
    BoundaryShard,
    boundary_pairs,
)
from dcrobot.shard.campus import (
    CampusSummary,
    CampusWorld,
    legacy_summary,
    run_campus,
)
from dcrobot.shard.federation import (
    CampusFederation,
    CrossHallIncident,
    FederationRegistry,
    FederationReport,
    campus_smi,
    merge_metric_snapshots,
)
from dcrobot.shard.hall import HALL_SEED_STRIDE, HallShard, hall_config

__all__ = [
    "BoundaryConfig",
    "BoundaryLink",
    "BoundaryShard",
    "boundary_pairs",
    "CampusSummary",
    "CampusWorld",
    "run_campus",
    "legacy_summary",
    "CampusFederation",
    "CrossHallIncident",
    "FederationRegistry",
    "FederationReport",
    "campus_smi",
    "merge_metric_snapshots",
    "HALL_SEED_STRIDE",
    "HallShard",
    "hall_config",
]
