"""CampusWorld: N hall shards behind the one-world surface (S20).

``WorldConfig(halls=N)`` describes a campus; :class:`CampusWorld`
composes it from N independent :class:`~dcrobot.shard.hall.HallShard`
worlds plus a :class:`~dcrobot.shard.boundary.BoundaryShard` of
cross-hall links driven by the
:class:`~dcrobot.shard.federation.CampusFederation`.  Halls run
either serially in-process (keeping live ``RunResult`` access for
tests) or fanned out over a process pool (``jobs > 1``), with
bit-identical summaries either way — workers rebuild their hall from
its picklable config, exactly the PR-1 trial-engine pattern.

The contract the test battery pins:

* ``halls=1`` is **bit-identical** to the legacy single-hall world
  (same summary, same RNG streams, same parity goldens);
* a hall's shard never perturbs a sibling (columns, substreams,
  conclusions) — chaos or failover on one hall leaves the others
  equal to an undisturbed control run;
* campus wall-clock is bounded by the slowest shard, not the sum,
  once halls run in parallel — and per-hall cost stays near-flat even
  serially (the ``bench_campus_scale`` CI gate).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from dcrobot.experiments.runner import (
    WorldConfig,
    WorldSummary,
    run_world,
    summarize_world,
)
from dcrobot.shard.boundary import BoundaryConfig, BoundaryShard
from dcrobot.shard.federation import (
    CampusFederation,
    FederationReport,
    campus_smi,
    merge_metric_snapshots,
)
from dcrobot.shard.hall import HallShard, hall_config

__all__ = ["CampusSummary", "CampusWorld", "run_campus"]


@dataclasses.dataclass
class CampusSummary:
    """One finished campus, as plain picklable data.

    Carries every hall's :class:`WorldSummary` verbatim (hall 0 of a
    1-hall campus is bit-identical to the legacy world's summary)
    plus the federated aggregates and the boundary accounting.
    """

    halls: int
    seed: int
    horizon_seconds: float
    hall_summaries: List[WorldSummary]
    #: -- federated aggregates ----------------------------------------
    incidents: int
    closed_incidents: int
    unresolved_incidents: int
    open_incidents: int
    link_count: int
    #: Link-weighted mean availability across halls.
    availability_mean: float
    invariant_violations: int
    failovers: int
    #: hall id -> final fencing token (epoch registry view).
    hall_epochs: Dict[int, int]
    #: -- boundary / cross-hall ---------------------------------------
    boundary_links: int
    boundary_offered_bytes: float
    boundary_delivered_bytes: float
    boundary_lost_bytes: float
    cross_hall_incidents: int
    cross_hall_concluded: int
    cross_hall_routed: Dict[int, int]
    #: -- campus SMI ---------------------------------------------------
    hall_smi: List[float]
    boundary_smi: float
    campus_smi: float
    #: -- wall-clock telemetry ----------------------------------------
    hall_build_seconds: List[float]
    hall_run_seconds: List[float]
    #: Wall-clock of the whole run() call (includes pool overhead).
    total_wall_seconds: float = 0.0
    #: Merged per-shard S15 metrics (None unless observing).
    merged_metrics: Optional[dict] = None

    @property
    def hall_wall_seconds(self) -> List[float]:
        return [build + run for build, run
                in zip(self.hall_build_seconds, self.hall_run_seconds)]

    @property
    def slowest_shard_seconds(self) -> float:
        return max(self.hall_wall_seconds) if self.halls else 0.0

    @property
    def per_hall_wall_seconds(self) -> float:
        """Mean wall-clock per hall — the near-flat scaling metric."""
        return (sum(self.hall_wall_seconds) / self.halls
                if self.halls else 0.0)

    @property
    def mature_resolution_rate(self) -> float:
        mature = sum(summary.mature_incidents
                     for summary in self.hall_summaries)
        if mature == 0:
            return 1.0
        return sum(summary.mature_concluded
                   for summary in self.hall_summaries) / mature


def _hall_worker(payload) -> tuple:
    """Process-pool unit: rebuild one hall from its config and run it
    (module-level, hence picklable)."""
    hall_id, campus_halls, config = payload
    shard = HallShard(hall_id, config, campus_halls=campus_halls)
    summary = shard.run()
    return (hall_id, summary, shard.build_wall_seconds,
            shard.run_wall_seconds, shard.smi)


class CampusWorld:
    """N hall shards + boundary shard + federation, one surface."""

    def __init__(self, config: WorldConfig) -> None:
        if config.halls < 1:
            raise ValueError("halls must be >= 1")
        for hall_id in (config.hall_overrides or {}):
            if not 0 <= hall_id < config.halls:
                raise ValueError(
                    f"hall_overrides key {hall_id} outside "
                    f"0..{config.halls - 1}")
        self.config = config
        self.shards = [
            HallShard(hall_id, hall_config(config, hall_id),
                      campus_halls=config.halls)
            for hall_id in range(config.halls)]
        boundary_config = config.boundary or BoundaryConfig()
        if not isinstance(boundary_config, BoundaryConfig):
            raise TypeError("config.boundary must be a BoundaryConfig")
        self.boundary = BoundaryShard(config.halls, boundary_config)
        self.federation = CampusFederation(
            self.boundary, seed=config.seed,
            horizon_seconds=config.horizon_seconds)
        self.federation_report: Optional[FederationReport] = None
        self.summary: Optional[CampusSummary] = None

    def __repr__(self) -> str:
        return (f"<CampusWorld halls={self.config.halls} "
                f"seed={self.config.seed} "
                f"{'run' if self.summary else 'cold'}>")

    def hall(self, hall_id: int) -> HallShard:
        return self.shards[hall_id]

    def build(self) -> "CampusWorld":
        """Assemble every hall in-process (serial mode prep)."""
        for shard in self.shards:
            shard.build()
        return self

    # -- execution ----------------------------------------------------

    def run(self, jobs: Optional[int] = None) -> CampusSummary:
        """Run every hall to the horizon plus the federation pass.

        ``jobs`` > 1 fans un-built halls out over a process pool;
        summaries are bit-identical to the serial path because each
        worker rebuilds the same hall config.  Already-built halls
        (or ``jobs in (None, 1)``) run serially in-process.
        """
        if self.summary is not None:
            return self.summary
        started = time.perf_counter()
        parallel = (jobs or 1) > 1 and len(self.shards) > 1 \
            and not any(shard.built for shard in self.shards)
        if parallel:
            payloads = [(shard.hall_id, self.config.halls,
                         shard.config) for shard in self.shards]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for hall_id, summary, build_wall, run_wall, smi \
                        in pool.map(_hall_worker, payloads):
                    shard = self.shards[hall_id]
                    shard.summary = summary
                    shard.build_wall_seconds = build_wall
                    shard.run_wall_seconds = run_wall
                    shard.smi = smi
        else:
            for shard in self.shards:
                shard.run()
        self.federation_report = self.federation.run()
        for shard in self.shards:
            self.federation.registry.observe(
                shard.hall_id, shard.summary.fencing_token)
        self.summary = self._assemble(
            time.perf_counter() - started)
        return self.summary

    # -- assembly -----------------------------------------------------

    def _assemble(self, total_wall: float) -> CampusSummary:
        summaries = [shard.summary for shard in self.shards]
        report = self.federation_report
        links = sum(summary.link_count for summary in summaries)
        availability = (
            sum(summary.availability_mean * summary.link_count
                for summary in summaries) / links if links else 1.0)
        hall_smis = [shard.smi for shard in self.shards]
        return CampusSummary(
            halls=self.config.halls,
            seed=self.config.seed,
            horizon_seconds=self.config.horizon_seconds,
            hall_summaries=summaries,
            incidents=sum(s.incidents for s in summaries),
            closed_incidents=sum(s.closed_incidents
                                 for s in summaries),
            unresolved_incidents=sum(s.unresolved_incidents
                                     for s in summaries),
            open_incidents=sum(s.open_incidents for s in summaries),
            link_count=links,
            availability_mean=availability,
            invariant_violations=sum(s.invariant_violations
                                     for s in summaries),
            failovers=sum(s.failovers for s in summaries),
            hall_epochs=dict(self.federation.registry.epochs),
            boundary_links=len(self.boundary.links),
            boundary_offered_bytes=report.offered_bytes,
            boundary_delivered_bytes=report.delivered_bytes,
            boundary_lost_bytes=report.lost_bytes,
            cross_hall_incidents=len(report.incidents),
            cross_hall_concluded=report.concluded,
            cross_hall_routed=dict(report.routed_by_hall),
            hall_smi=hall_smis,
            boundary_smi=self.boundary.smi_factor(),
            campus_smi=campus_smi(
                hall_smis,
                [s.link_count for s in summaries], self.boundary),
            hall_build_seconds=[shard.build_wall_seconds
                                for shard in self.shards],
            hall_run_seconds=[shard.run_wall_seconds
                              for shard in self.shards],
            total_wall_seconds=total_wall,
            merged_metrics=merge_metric_snapshots(
                [s.metrics for s in summaries]))


def run_campus(config: WorldConfig,
               jobs: Optional[int] = None) -> CampusSummary:
    """Build and run a campus (or, at ``halls=1`` with the legacy
    in-process path, a plain world wrapped as a 1-hall campus) —
    the campus counterpart of
    :func:`~dcrobot.experiments.runner.run_world`."""
    return CampusWorld(config).run(jobs=jobs)


def legacy_summary(config: WorldConfig) -> WorldSummary:
    """The legacy single-hall summary for a campus config's hall 0 —
    the bit-identity oracle the parity suite compares against."""
    return summarize_world(run_world(hall_config(config, 0)))
