"""One hall = one shard: a complete columnar world per hall (S20).

A :class:`HallShard` wraps exactly the stack :func:`build_world`
assembles — one ``FabricState`` + optional ``TrafficState``, its own
``Simulation`` clock, controller, chaos, journal/leadership machinery
— under a hall-local seed, plus a per-shard
:class:`~dcrobot.topology.smi.SmiTracker` so campus SMI stays
incremental.  Halls share *nothing*: no arrays, no RNG streams, no
event heaps.  That is the isolation the campus battery proves, and
what lets a full chaos run be bounded by the slowest shard instead of
the sum.

Hall 0 runs under the campus seed itself, so a 1-hall campus is
bit-identical to the legacy single-hall world; halls 1..N-1 derive
disjoint seeds via a large stride that keeps every hall's ``seed + k``
substream family (k = 1..16) collision-free across a campus of any
realistic size.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional

from dcrobot.experiments.runner import (
    RunResult,
    WorldConfig,
    WorldSummary,
    build_world,
    summarize_world,
)
from dcrobot.topology.smi import SmiTracker

__all__ = ["HALL_SEED_STRIDE", "HallShard", "hall_config"]

#: Seed distance between adjacent halls.  The runner derives per-hall
#: substreams as ``seed + 1 .. seed + 16``; a prime stride of ~1e6
#: keeps those families disjoint for thousands of halls.
HALL_SEED_STRIDE = 1_000_003


def hall_config(config: WorldConfig, hall_id: int) -> WorldConfig:
    """The hall-local :class:`WorldConfig` for one shard of a campus.

    Hall 0 keeps the campus seed unchanged (the bit-identity anchor);
    later halls shift by :data:`HALL_SEED_STRIDE`.  Campus-level
    fields (``halls``, ``hall_overrides``, ``boundary``) are stripped
    so the result is a plain single-hall config, then any per-hall
    overrides are applied on top.
    """
    if hall_id < 0:
        raise ValueError("hall_id must be >= 0")
    overrides: Dict = dict((config.hall_overrides or {}).get(hall_id,
                                                             {}))
    seed = config.seed + HALL_SEED_STRIDE * hall_id
    return dataclasses.replace(
        config, seed=seed, halls=1, hall_overrides=None,
        boundary=None, **overrides)


class HallShard:
    """A lazily-built, independently-runnable hall world.

    ``build()`` assembles the stack (and attaches the shard's
    SmiTracker); ``run()`` drives it to its horizon, measuring build
    and run wall-clock separately, and returns the hall's
    :class:`WorldSummary` stamped with its campus position.  The
    shard is picklable *before* build (it is just a config), which is
    how the campus ships halls to worker processes.
    """

    def __init__(self, hall_id: int, config: WorldConfig,
                 campus_halls: int = 1) -> None:
        if config.halls != 1:
            raise ValueError("HallShard takes a hall-local config "
                             "(use hall_config)")
        self.hall_id = hall_id
        self.config = config
        self.campus_halls = campus_halls
        self.result: Optional[RunResult] = None
        self.summary: Optional[WorldSummary] = None
        self.smi_tracker: Optional[SmiTracker] = None
        self.smi: float = 0.0
        self.build_wall_seconds: float = 0.0
        self.run_wall_seconds: float = 0.0

    def __repr__(self) -> str:
        state = ("summarized" if self.summary is not None
                 else "built" if self.result is not None else "cold")
        return (f"<HallShard {self.hall_id}/{self.campus_halls} "
                f"seed={self.config.seed} {state}>")

    @property
    def built(self) -> bool:
        return self.result is not None

    def build(self) -> RunResult:
        """Assemble the hall stack (idempotent)."""
        if self.result is None:
            started = time.perf_counter()
            self.result = build_world(self.config)
            # Event-subscribed and RNG-free: the tracker observes
            # structural changes without touching any hall stream, so
            # attaching it cannot perturb parity.
            self.smi_tracker = SmiTracker(self.result.topology)
            self.build_wall_seconds = time.perf_counter() - started
        return self.result

    def run(self) -> WorldSummary:
        """Run this hall to its horizon and summarize it.

        Mirrors :func:`~dcrobot.experiments.runner.run_world` exactly
        (spares accounting included) so a shard's summary is
        bit-identical to the same config run standalone.
        """
        if self.summary is not None:
            return self.summary
        result = self.build()
        initial_transceivers = sum(
            result.fabric.spare_transceivers.values())
        initial_cables = result.fabric.spare_cables
        started = time.perf_counter()
        result.sim.run(until=self.config.horizon_seconds)
        self.run_wall_seconds = time.perf_counter() - started
        result.spares_consumed_transceivers = (
            initial_transceivers
            - sum(result.fabric.spare_transceivers.values()))
        result.spares_consumed_cables = (
            initial_cables - result.fabric.spare_cables)
        self.smi = self.smi_tracker.report().smi
        self.summary = dataclasses.replace(
            summarize_world(result),
            hall=self.hall_id, halls=self.campus_halls)
        return self.summary

    @property
    def fabric(self):
        if self.result is None:
            raise RuntimeError("hall not built yet")
        return self.result.fabric

    @property
    def wall_seconds(self) -> float:
        return self.build_wall_seconds + self.run_wall_seconds
