"""The thin federation layer over a campus's hall shards (S20).

Halls heal locally; the federation handles only what crosses a hall
wall:

* **cross-hall incidents** — boundary-link failures are detected,
  routed to an *owner* hall (least-loaded of the link's two endpoint
  halls, ties to the lower id), and repaired on a drawn repair time;
  the boundary link stays failed (shedding its share of every
  overlapping traffic window) until the repair lands;
* **epochs** — a campus-wide registry of each hall's S14 fencing
  token, so a hall failing over independently is visible (and
  monotonicity violations are a recorded tripwire, held at zero by
  the property suite);
* **metrics** — per-shard S15 metrics snapshots merge associatively
  into one campus snapshot;
* **SMI** — campus-wide SMI is the link-weighted mean of the per-hall
  ``SmiTracker`` values plus the boundary shard's live-fraction
  aggregate.

Everything here runs on the dedicated ``seed + 16`` campus substream
and never reads hall internals, so the schedule is identical whether
halls ran serially, in parallel worker processes, or not at all —
which is what keeps serial and parallel campus runs bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from dcrobot.shard.boundary import BoundaryConfig, BoundaryShard

__all__ = [
    "CrossHallIncident",
    "FederationReport",
    "FederationRegistry",
    "CampusFederation",
    "merge_metric_snapshots",
    "campus_smi",
]

#: Offset of the campus federation RNG substream relative to the
#: campus seed; hall worlds consume ``hall_seed + 1 .. + 14``, so with
#: the hall stride this never collides with any hall stream.
FEDERATION_SEED_OFFSET = 16


@dataclasses.dataclass
class CrossHallIncident:
    """One boundary-link failure routed through the federation."""

    link_id: str
    pair: Tuple[int, int]
    opened_at: float
    detected_at: float
    owner_hall: int
    #: Repair landing time; None = still open at the horizon.
    concluded_at: Optional[float] = None

    @property
    def concluded(self) -> bool:
        return self.concluded_at is not None


@dataclasses.dataclass
class FederationReport:
    """What the federation did over one campus run."""

    windows: int
    incidents: List[CrossHallIncident]
    routed_by_hall: Dict[int, int]
    offered_bytes: float
    delivered_bytes: float
    lost_bytes: float
    offered_flows: int
    delivered_flows: int
    conservation_error: float

    @property
    def concluded(self) -> int:
        return sum(1 for incident in self.incidents
                   if incident.concluded)

    @property
    def open(self) -> int:
        return len(self.incidents) - self.concluded


class FederationRegistry:
    """Campus-wide view of per-hall leadership epochs.

    Each hall's lease coordinator hands out monotonically increasing
    fencing tokens (S14); the registry records the highest token seen
    per hall and trips on any regression — the cross-shard fencing
    invariant the hypothesis suite holds.
    """

    def __init__(self) -> None:
        self.epochs: Dict[int, int] = {}
        #: (hall_id, stale_token, highest_seen) regressions; must
        #: stay empty.
        self.regressions: List[Tuple[int, int, int]] = []

    def __repr__(self) -> str:
        return (f"<FederationRegistry halls={len(self.epochs)} "
                f"regressions={len(self.regressions)}>")

    def observe(self, hall_id: int, token: int) -> bool:
        """Record a hall's announced epoch; False (and a tripwire
        entry) if it regressed below the highest already seen."""
        current = self.epochs.get(hall_id, 0)
        if token < current:
            self.regressions.append((hall_id, token, current))
            return False
        self.epochs[hall_id] = token
        return True

    def epoch(self, hall_id: int) -> int:
        return self.epochs.get(hall_id, 0)


class CampusFederation:
    """Drives the boundary shard deterministically over the horizon."""

    def __init__(self, boundary: BoundaryShard, seed: int,
                 horizon_seconds: float,
                 config: Optional[BoundaryConfig] = None) -> None:
        self.boundary = boundary
        self.config = config or boundary.config
        self.seed = seed
        self.horizon_seconds = horizon_seconds
        self.registry = FederationRegistry()
        self.report: Optional[FederationReport] = None

    def run(self) -> FederationReport:
        """Play the whole boundary schedule: failures, routing,
        repairs, and offered traffic windows, in time order."""
        rng = np.random.default_rng(self.seed + FEDERATION_SEED_OFFSET)
        config = self.config
        boundary = self.boundary
        windows = int(self.horizon_seconds // config.window_seconds)
        per_window_rate = (config.failure_rate_per_day
                           * config.window_seconds / 86400.0)
        incidents: List[CrossHallIncident] = []
        routed: Dict[int, int] = {hall: 0
                                  for hall in range(boundary.halls)}
        open_by_link: Dict[str, CrossHallIncident] = {}
        pending_repairs: List[Tuple[float, str]] = []
        lids = sorted(boundary.links)
        pairs = sorted(boundary.pairs)

        for window in range(windows):
            now = window * config.window_seconds
            # 1. land repairs due by this window.
            due = [item for item in pending_repairs if item[0] <= now]
            for when, lid in sorted(due):
                boundary.repair(lid)
                open_by_link.pop(lid, None)
            pending_repairs = [item for item in pending_repairs
                               if item[0] > now]
            # 2. draw failures.  One draw per link per window
            # regardless of its state, so the stream's position never
            # depends on what already failed.
            draws = rng.random(len(lids)) if lids else []
            for lid, draw in zip(lids, draws):
                link = boundary.links[lid]
                if draw >= per_window_rate or not link.live \
                        or lid in open_by_link:
                    continue
                boundary.fail(lid)
                detected = now + config.detect_seconds
                owner = self._route(link.pair, routed)
                repair_seconds = float(rng.exponential(
                    config.repair_hours_mean * 3600.0))
                concluded = detected + repair_seconds
                incident = CrossHallIncident(
                    link_id=lid, pair=link.pair, opened_at=now,
                    detected_at=detected, owner_hall=owner)
                routed[owner] += 1
                if concluded <= self.horizon_seconds:
                    incident.concluded_at = concluded
                    pending_repairs.append((concluded, lid))
                incidents.append(incident)
                open_by_link[lid] = incident
            # 3. offer this window's cross-hall traffic.
            for pair in pairs:
                flows = int(rng.poisson(config.flows_per_window))
                boundary.offer(pair[0], pair[1],
                               flows * config.mean_flow_bytes, flows)

        for when, lid in sorted(pending_repairs):
            if when <= self.horizon_seconds:
                boundary.repair(lid)
                open_by_link.pop(lid, None)

        self.report = FederationReport(
            windows=windows,
            incidents=incidents,
            routed_by_hall=routed,
            offered_bytes=boundary.offered_bytes,
            delivered_bytes=boundary.delivered_bytes,
            lost_bytes=boundary.lost_bytes,
            offered_flows=boundary.offered_flows,
            delivered_flows=boundary.delivered_flows,
            conservation_error=boundary.conservation_error())
        return self.report

    @staticmethod
    def _route(pair: Tuple[int, int],
               routed: Dict[int, int]) -> int:
        """Owner hall for a boundary incident: the less-loaded of the
        link's two endpoint halls, ties to the lower id."""
        hall_a, hall_b = pair
        if routed.get(hall_b, 0) < routed.get(hall_a, 0):
            return hall_b
        return hall_a


def merge_metric_snapshots(snapshots: List[dict]) -> Optional[dict]:
    """Associatively merge per-shard S15 metrics snapshots.

    Counter and gauge samples sum per (name, labels) — a campus gauge
    is the campus-wide level, e.g. total open incidents; histogram
    samples sum count/sum/bucket_counts (bucket layouts must match).
    Returns ``None`` when no shard carried metrics.
    """
    live = [snap for snap in snapshots if snap]
    if not live:
        return None
    merged: dict = {"kind": "metrics",
                    "schema_version": live[0]["schema_version"],
                    "metrics": {}}
    out = merged["metrics"]
    for snapshot in live:
        for name, entry in snapshot["metrics"].items():
            target = out.setdefault(
                name, {"kind": entry["kind"], "help": entry["help"],
                       **({"buckets": list(entry["buckets"])}
                          if "buckets" in entry else {}),
                       "samples": []})
            if "buckets" in entry \
                    and target.get("buckets") != entry["buckets"]:
                raise ValueError(
                    f"histogram {name!r} bucket layouts differ")
            index = {tuple(sorted(sample["labels"].items())): sample
                     for sample in target["samples"]}
            for sample in entry["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                current = index.get(key)
                if current is None:
                    copy = {"labels": dict(sample["labels"])}
                    if "value" in sample:
                        copy["value"] = sample["value"]
                    else:
                        copy["count"] = sample["count"]
                        copy["sum"] = sample["sum"]
                        copy["bucket_counts"] = list(
                            sample["bucket_counts"])
                    target["samples"].append(copy)
                    index[key] = copy
                elif "value" in sample:
                    current["value"] += sample["value"]
                else:
                    current["count"] += sample["count"]
                    current["sum"] += sample["sum"]
                    current["bucket_counts"] = [
                        a + b for a, b in zip(current["bucket_counts"],
                                              sample["bucket_counts"])]
    for entry in out.values():
        entry["samples"].sort(
            key=lambda sample: sorted(sample["labels"].items()))
    return merged


def campus_smi(hall_smis: List[float], hall_link_counts: List[int],
               boundary: BoundaryShard) -> float:
    """Campus-wide SMI: link-weighted mean of per-shard SMI plus the
    boundary aggregate, each hall weighted by its link count and the
    boundary by its."""
    total = 0.0
    weight = 0.0
    for smi, links in zip(hall_smis, hall_link_counts):
        total += smi * links
        weight += links
    boundary_links = len(boundary.links)
    if boundary_links:
        total += boundary.smi_factor() * boundary_links
        weight += boundary_links
    return total / weight if weight else 1.0
