"""Per-robot health: wear, batteries, and mid-order fault hazards.

The paper's closing argument is that the maintainers must themselves be
maintained: "robots will themselves fail" (§4).  Every robot unit gets
a :class:`UnitHealth` record tracking mechanical wear (accumulated per
executed order), battery charge (drained by travel and rack work,
restored by charge cycles that themselves add wear), and a fault
history used to bench flaky units.  The :class:`RobotHealthModel` draws
stochastic mid-order faults from its own deterministic RNG substream —
a worn unit is more likely to die mid-operation than a fresh one — and
the fleet's heartbeat/watchdog machinery turns those deaths into
*detected* losses rather than silently hung work orders.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

HOUR = 3600.0


@dataclasses.dataclass(frozen=True)
class RobotHealthParams:
    """Knobs of the per-robot wear/battery/fault model."""

    #: Mechanical wear added per executed work order (0..1 scale).
    wear_per_operation: float = 0.01
    #: Mid-order fault hazard = fault_per_order + wear * wear_fault_weight.
    fault_per_order: float = 0.0
    wear_fault_weight: float = 0.05
    #: Seconds of travel + rack work one full charge supports.
    battery_capacity_seconds: float = 16.0 * HOUR
    #: Recharge before an order once charge drops to this fraction.
    recharge_threshold: float = 0.2
    recharge_seconds: float = 1800.0
    #: Each charge cycle ages the pack (adds wear).
    charge_cycle_wear: float = 0.002
    #: Organic mid-order deaths strike this long after rack work starts.
    fault_onset_seconds: tuple = (30.0, 900.0)
    #: Heartbeat cadence into the telemetry monitor, and how many
    #: consecutive missed beats declare a unit lost.
    heartbeat_seconds: float = 60.0
    heartbeat_miss_threshold: int = 3
    #: Bench a unit after this many faults inside the window.
    flaky_fault_threshold: int = 3
    flaky_window_seconds: float = 24.0 * HOUR
    #: Master switch for the healing half (watchdog, re-dispatch,
    #: quarantine, robot-repairs-robot).  Health, wear, and deaths are
    #: modelled either way — a naive fleet suffers them undetected.
    self_healing: bool = True
    #: Below this in-service fraction the fleet stops taking work and
    #: escalates to humans (graceful degradation).
    quorum_fraction: float = 0.5
    #: Spare robot modules available for robot-repairs-robot work.
    robot_spares: int = 2
    robot_repair_seconds: float = 1.0 * HOUR

    def __post_init__(self) -> None:
        if self.wear_per_operation < 0:
            raise ValueError("wear_per_operation must be >= 0")
        if not 0.0 <= self.fault_per_order <= 1.0:
            raise ValueError("fault_per_order must be in [0, 1]")
        if self.battery_capacity_seconds <= 0:
            raise ValueError("battery_capacity_seconds must be > 0")
        if not 0.0 <= self.recharge_threshold < 1.0:
            raise ValueError("recharge_threshold must be in [0, 1)")
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be > 0")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be >= 1")
        if not 0.0 <= self.quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in [0, 1]")
        if self.robot_spares < 0:
            raise ValueError("robot_spares must be >= 0")
        low, high = self.fault_onset_seconds
        if low < 0 or high < low:
            raise ValueError("fault_onset_seconds must satisfy "
                             "0 <= low <= high")

    @property
    def heartbeat_timeout_seconds(self) -> float:
        """Silence longer than this declares a unit lost."""
        return self.heartbeat_miss_threshold * self.heartbeat_seconds


@dataclasses.dataclass
class UnitHealth:
    """Mutable health record of one robot unit."""

    unit_id: str
    wear: float = 0.0
    #: Battery state of charge, 0..1.
    battery: float = 1.0
    charge_cycles: int = 0
    orders_done: int = 0
    alive: bool = True
    #: Declared lost by the watchdog (heartbeats went stale).
    lost: bool = False
    #: Benched for flakiness; not dispatched until repaired.
    quarantined: bool = False
    #: Heartbeats suppressed until this sim time (zombie injection).
    suppress_until: float = float("-inf")
    #: Sim times of recorded faults (crash/stall/zombie), for the
    #: flakiness window.
    fault_times: List[float] = dataclasses.field(default_factory=list)
    died_at: Optional[float] = None
    death_cause: Optional[str] = None
    #: Link the unit was holding in maintenance when it died (the
    #: carcass stays physically at the rack until recovered).
    holding_link_id: Optional[str] = None
    #: A repair/rescue for this unit has been initiated.
    recovery_started: bool = False

    @property
    def in_service(self) -> bool:
        return self.alive and not self.lost and not self.quarantined

    def beating(self, now: float) -> bool:
        """Whether the unit emits a heartbeat at ``now``."""
        return self.alive and now >= self.suppress_until


@dataclasses.dataclass(frozen=True)
class OrderHazard:
    """The organic fault (if any) striking one order, drawn up front."""

    dies: bool = False
    #: Seconds of rack work after which the unit dies.
    after_seconds: float = 0.0


class RobotHealthModel:
    """Tracks per-unit health and draws organic mid-order faults.

    One RNG substream (``seed + 14`` in the world builder) feeds every
    hazard draw, so robot failures are deterministic per seed and
    independent of the chaos layer's streams.
    """

    def __init__(self, params: Optional[RobotHealthParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.params = params or RobotHealthParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.records: Dict[str, UnitHealth] = {}

    def __repr__(self) -> str:
        in_service = sum(1 for record in self.records.values()
                        if record.in_service)
        return (f"<RobotHealthModel units={len(self.records)} "
                f"in_service={in_service}>")

    def register(self, unit) -> UnitHealth:
        """Start tracking a unit (idempotent)."""
        record = self.records.get(unit.id)
        if record is None:
            record = UnitHealth(unit_id=unit.id)
            self.records[unit.id] = record
        return record

    def record_for(self, unit_id: str) -> Optional[UnitHealth]:
        return self.records.get(unit_id)

    # -- hazards ---------------------------------------------------------------

    def fault_probability(self, record: UnitHealth) -> float:
        params = self.params
        return min(1.0, params.fault_per_order
                   + record.wear * params.wear_fault_weight)

    def plan_order(self, record: UnitHealth) -> OrderHazard:
        """Draw this order's organic fault (one draw per order, so the
        stream stays aligned regardless of what the chaos layer does)."""
        dies = self.rng.random() < self.fault_probability(record)
        if not dies:
            return OrderHazard()
        low, high = self.params.fault_onset_seconds
        after = float(low if high <= low
                      else self.rng.uniform(low, high))
        return OrderHazard(dies=True, after_seconds=after)

    # -- battery ---------------------------------------------------------------

    def drain(self, record: UnitHealth, seconds: float) -> None:
        if seconds <= 0:
            return
        record.battery = max(
            0.0, record.battery
            - seconds / self.params.battery_capacity_seconds)

    def needs_charge(self, record: UnitHealth) -> bool:
        return record.battery <= self.params.recharge_threshold

    def recharge(self, record: UnitHealth) -> None:
        record.battery = 1.0
        record.charge_cycles += 1
        record.wear += self.params.charge_cycle_wear

    # -- wear and flakiness ----------------------------------------------------

    def record_operation(self, record: UnitHealth) -> None:
        record.orders_done += 1
        record.wear += self.params.wear_per_operation

    def record_fault(self, record: UnitHealth, now: float) -> None:
        record.fault_times.append(now)

    def is_flaky(self, record: UnitHealth, now: float) -> bool:
        window_start = now - self.params.flaky_window_seconds
        recent = sum(1 for when in record.fault_times
                     if when >= window_start)
        return recent >= self.params.flaky_fault_threshold

    # -- fleet aggregates ------------------------------------------------------

    def in_service_ids(self) -> List[str]:
        return [unit_id for unit_id, record in self.records.items()
                if record.in_service]


__all__ = [
    "RobotHealthParams",
    "UnitHealth",
    "OrderHazard",
    "RobotHealthModel",
]
