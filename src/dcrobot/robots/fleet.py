"""The robot fleet: a maintenance executor built from modular units.

"Rather than a small number of large robots ... there will be many small
robotic units that will need to collaborate to achieve network repair
and maintenance tasks" (§1).  A fleet pairs manipulator robots
(Figure 1) with cleaning robots (Figure 2): the manipulator unplugs the
transceiver and feeds the cleaning unit, then reverses the process
(§3.3.2).

Capabilities follow the prototypes: reseat, clean, and spare-transceiver
swap.  Cable laying and switchgear replacement stay human ("Currently,
we are not focusing on the replacement of fibers", §3.3) unless
``advanced_capabilities`` is enabled — the Level-4 future the paper
sketches in §4.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from dcrobot.core.actions import RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.repairs import ROBOT_SKILL, RepairPhysics
from dcrobot.failures.cascade import ROBOT_GRIPPER, ContactProfile
from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.robots.cleaner import CleaningRobot
from dcrobot.robots.manipulator import ManipulatorRobot
from dcrobot.robots.mobility import MobilityScope
from dcrobot.sim.engine import Simulation
from dcrobot.sim.events import Event
from dcrobot.sim.resources import Store

BASIC_CAPABILITIES = frozenset({
    RepairAction.RESEAT,
    RepairAction.CLEAN,
    RepairAction.REPLACE_TRANSCEIVER,
})

ADVANCED_CAPABILITIES = frozenset(RepairAction)


@dataclasses.dataclass
class FleetConfig:
    """Fleet composition and policy."""

    manipulators: int = 2
    cleaners: int = 1
    scope: MobilityScope = MobilityScope.HALL
    manipulator_speed_m_s: float = 0.5
    cleaner_speed_m_s: float = 0.4
    #: "nearest" picks the closest idle unit; "fifo" the longest-idle.
    allocation: str = "nearest"
    #: Level-4 future: robots lay cables and swap switchgear too.
    advanced_capabilities: bool = False
    replace_cable_seconds: float = 2.0 * 3600
    replace_switchgear_seconds: float = 1.5 * 3600
    #: Home racks for units, round-robin; defaults to spreading across
    #: the hall's rows.
    home_racks: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.manipulators < 1:
            raise ValueError("need at least one manipulator")
        if self.cleaners < 0:
            raise ValueError("cleaners must be >= 0")
        if self.allocation not in ("nearest", "fifo"):
            raise ValueError(
                f"allocation must be 'nearest' or 'fifo', "
                f"got {self.allocation!r}")


class RobotFleet:
    """Maintenance executor backed by collaborating robot units."""

    def __init__(self, sim: Simulation, fabric: Fabric,
                 health: HealthModel, physics: RepairPhysics,
                 config: Optional[FleetConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 executor_id: str = "robots") -> None:
        self.sim = sim
        self.fabric = fabric
        self.health = health
        self.physics = physics
        self.config = config or FleetConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.executor_id = executor_id
        self.contact: ContactProfile = ROBOT_GRIPPER

        self.manipulators: List[ManipulatorRobot] = []
        self.cleaners: List[CleaningRobot] = []
        self._idle_manipulators = Store(sim)
        self._idle_cleaners = Store(sim)
        self._build_units()

        self.outcomes: List[RepairOutcome] = []
        #: Orders rejected because no unit's scope covers the target.
        self.unreachable_orders: List[WorkOrder] = []
        #: Leadership fencing guard (set by the world builder when
        #: failover is enabled); orders with stale tokens are refused.
        self.fence = None
        #: Orders refused for carrying a stale fencing token.
        self.rejected_orders: List[WorkOrder] = []
        #: order id -> completion event: the fleet's work-order queue is
        #: ground truth that survives a controller crash, so a recovered
        #: controller can re-attach to in-flight orders instead of
        #: dispatching the repair a second time.
        self.pending_acks: Dict[int, Event] = {}
        #: Mid-operation fault planner (set by the chaos engine).
        self.chaos = None
        #: link id -> number of operations physically touching it now
        #: (the safety monitor's "who is at the rack" ground truth).
        self.busy_links: Dict[str, int] = {}

    def _default_homes(self, count: int) -> List[str]:
        """Spread units across rows (one per row, round-robin)."""
        layout = self.fabric.layout
        homes = []
        for index in range(count):
            row = index % layout.rows
            homes.append(layout.rack_at(row, 0).id)
        return homes

    def _build_units(self) -> None:
        config = self.config
        homes = config.home_racks or self._default_homes(
            config.manipulators + config.cleaners)
        cursor = 0
        for index in range(config.manipulators):
            robot = ManipulatorRobot(
                self.sim, self.fabric, f"{self.executor_id}-manip-{index}",
                homes[cursor % len(homes)], scope=config.scope,
                speed_m_s=config.manipulator_speed_m_s,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)))
            cursor += 1
            self.manipulators.append(robot)
            self._idle_manipulators.put(robot)
        for index in range(config.cleaners):
            robot = CleaningRobot(
                self.sim, self.fabric, f"{self.executor_id}-clean-{index}",
                homes[cursor % len(homes)], scope=config.scope,
                speed_m_s=config.cleaner_speed_m_s,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)))
            cursor += 1
            self.cleaners.append(robot)
            self._idle_cleaners.put(robot)

    def __repr__(self) -> str:
        return (f"<RobotFleet manipulators={len(self.manipulators)} "
                f"cleaners={len(self.cleaners)} "
                f"done={len(self.outcomes)}>")

    # -- executor interface -----------------------------------------------------

    @property
    def capabilities(self) -> frozenset:
        if self.config.advanced_capabilities:
            return ADVANCED_CAPABILITIES
        caps = set(BASIC_CAPABILITIES)
        if not self.cleaners:
            caps.discard(RepairAction.CLEAN)
        return frozenset(caps)

    def can_execute(self, action: RepairAction) -> bool:
        return action in self.capabilities

    def covers(self, rack_id: str) -> bool:
        """Whether any manipulator's scope includes the rack."""
        return any(robot.can_reach(rack_id)
                   for robot in self.manipulators)

    def coverage_fraction(self) -> float:
        """Fraction of hall racks inside some manipulator's scope."""
        racks = list(self.fabric.layout.racks)
        covered = sum(1 for rack in racks if self.covers(rack))
        return covered / len(racks) if racks else 1.0

    def announce_touches(self, order: WorkOrder) -> List[str]:
        """Pre-maintenance contact announcement (§2)."""
        link = self.fabric.links[order.link_id]
        return self.physics.cascade.predict_touched(link, self.contact)

    def submit(self, order: WorkOrder) -> Event:
        """Queue an order; event fires with the RepairOutcome."""
        done = self.sim.event()
        if self.fence is not None and not self.fence.admit(
                order.fencing_token, time=self.sim.now,
                order_id=order.order_id, link_id=order.link_id):
            # Split-brain protection: this order was dispatched by a
            # deposed primary.  Refuse before any robot moves.
            self.rejected_orders.append(order)
            done.succeed(RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=self.sim.now, finished_at=self.sim.now,
                completed=False, rejected=True,
                notes="stale fencing token: dispatching primary deposed"))
            return done
        self.pending_acks[order.order_id] = done
        self.sim.process(self._execute(order, done))
        return done

    def _depot_rack_id(self) -> str:
        """The spares depot: the hall's first rack by convention."""
        return self.fabric.layout.rack_at(0, 0).id

    def acquire_manipulator(self, rack_id: str):
        """Generator: claim an idle manipulator that can reach the rack.

        Public hook for non-repair choreographies (e.g. robotic
        rewiring); pair with :meth:`release_manipulator`.
        """
        robot = yield from self._acquire(self._idle_manipulators,
                                         rack_id)
        return robot

    def release_manipulator(self, robot) -> None:
        """Return a manipulator claimed via acquire_manipulator."""
        self._idle_manipulators.put(robot)

    # -- fleet internals -----------------------------------------------------------

    def _acquire(self, store: Store, rack_id: str):
        """Generator: claim an idle unit able to reach ``rack_id``."""
        if self.config.allocation == "nearest":
            layout = self.fabric.layout
            target = layout.racks[rack_id].position
            candidates = [robot for robot in store.items
                          if robot.can_reach(rack_id)]
            if candidates:
                best = min(candidates, key=lambda robot:
                           layout.travel_distance(
                               layout.racks[robot.mobility.current_rack_id]
                               .position, target))
                robot = yield store.get(lambda item: item is best)
                return robot
        robot = yield store.get(lambda item: item.can_reach(rack_id))
        return robot

    def _fail(self, order: WorkOrder, done: Event, note: str,
              needs_human: bool = True) -> None:
        outcome = RepairOutcome(
            order=order, executor_id=self.executor_id,
            started_at=self.sim.now, finished_at=self.sim.now,
            completed=False, needs_human=needs_human, notes=note)
        self.outcomes.append(outcome)
        done.succeed(outcome)

    def _execute(self, order: WorkOrder, done: Event):
        sim = self.sim
        link = self.fabric.links[order.link_id]
        if not self.can_execute(order.action):
            self._fail(order, done,
                       f"fleet cannot perform {order.action.value}")
            return
        rack_id = self.manipulators[0].rack_of_link(link)
        if not self.covers(rack_id):
            self.unreachable_orders.append(order)
            self._fail(order, done, f"no unit covers rack {rack_id}")
            return

        manipulator = yield from self._acquire(
            self._idle_manipulators, rack_id)
        cleaner = None
        if order.action is RepairAction.CLEAN:
            cleaner = yield from self._acquire(self._idle_cleaners,
                                               rack_id)
        plan = (self.chaos.plan_for(order, sim.now)
                if self.chaos is not None else None)
        touching = False
        try:
            started = sim.now
            travels = [sim.process(manipulator.travel_to(rack_id))]
            if cleaner is not None:
                travels.append(sim.process(cleaner.travel_to(rack_id)))
            yield sim.all_of(travels)

            self.busy_links[link.id] = self.busy_links.get(link.id, 0) + 1
            touching = True
            self.health.begin_maintenance(link, sim.now)
            touch = self.physics.reach_in(link, self.contact, sim.now)
            if plan is not None and plan.stall_seconds > 0:
                # The unit wedges mid-operation; it eventually recovers
                # and continues, but the ack is this much later.
                yield from manipulator.work(plan.stall_seconds)
            if plan is not None and plan.crash:
                # Aborted mid-operation: give the link back untouched,
                # sit out the recovery, then report failure upward.
                self.health.release_from_maintenance(link, sim.now)
                if plan.crash_recovery_seconds > 0:
                    yield from manipulator.work(
                        plan.crash_recovery_seconds)
                outcome = RepairOutcome(
                    order=order, executor_id=self.executor_id,
                    started_at=started, finished_at=sim.now,
                    completed=False, needs_human=True,
                    notes="robot crashed mid-operation",
                    secondary_disturbed=len(touch.disturbed_links),
                    secondary_damaged=len(touch.damaged_links))
                self.outcomes.append(outcome)
                done.succeed(outcome)
                return
            completed, needs_human, notes = yield from self._perform(
                order, link, manipulator, cleaner)
            if plan is not None and plan.partial and completed:
                # The repair only half-landed; the robot does not know
                # and still reports success.
                self.chaos.apply_partial(link, sim.now)
            self.health.release_from_maintenance(link, sim.now)

            outcome = RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=started, finished_at=sim.now,
                completed=completed, needs_human=needs_human,
                notes=notes,
                secondary_disturbed=len(touch.disturbed_links),
                secondary_damaged=len(touch.damaged_links))
            self.outcomes.append(outcome)
            done.succeed(outcome)
        finally:
            if touching:
                remaining = self.busy_links.get(link.id, 0) - 1
                if remaining <= 0:
                    self.busy_links.pop(link.id, None)
                else:
                    self.busy_links[link.id] = remaining
            self._idle_manipulators.put(manipulator)
            if cleaner is not None:
                self._idle_cleaners.put(cleaner)

    def _perform(self, order: WorkOrder, link, manipulator, cleaner):
        """Generator: run the action's robot choreography.

        Returns (completed, needs_human, notes).
        """
        action = order.action
        if action is RepairAction.RESEAT:
            ok, note = yield from manipulator.reseat(link)
            return ok, not ok, note

        if action is RepairAction.CLEAN:
            notes = []
            for side in ("a", "b"):
                extracted = yield from manipulator.extract(link, side)
                if not extracted:
                    notes.append(f"extraction failed on side {side}")
                    return False, True, "; ".join(notes)
                verified, note = yield from cleaner.clean_cycle(link, side)
                yield from manipulator.reinsert(link, side)
                notes.append(note)
                if not verified:
                    # §3.3.2: the robot requests human support.
                    return False, True, "; ".join(notes)
            return True, False, "; ".join(notes)

        if action is RepairAction.REPLACE_TRANSCEIVER:
            # Spares ride in the manipulator's magazine; an empty one
            # costs a depot round trip before the swap can happen.
            yield from manipulator.ensure_spare(self._depot_rack_id())
            side = self.physics.pick_suspect_side(link)
            extracted = yield from manipulator.extract(link, side)
            if not extracted:
                return False, True, f"extraction failed on side {side}"
            ok, note = self.physics.do_replace_transceiver(
                link, self.sim.now)
            if ok:
                manipulator.consume_spare()
            yield from manipulator.work(
                manipulator.params.swap_spare_seconds)
            # On success the spare goes in; with no spare in stock the
            # old unit is put back so the link is not left disconnected.
            yield from manipulator.reinsert(link, side)
            if not ok:
                return False, False, note  # out of spares, not a skill gap
            return True, False, note

        # Advanced (Level 4) actions run through shared physics with
        # fleet-level durations.
        seconds = (self.config.replace_cable_seconds
                   if action is RepairAction.REPLACE_CABLE
                   else self.config.replace_switchgear_seconds)
        yield from manipulator.work(seconds)
        ok, note = self.physics.perform(action, link, self.sim.now,
                                        ROBOT_SKILL)
        return ok, False, note
