"""The robot fleet: a maintenance executor built from modular units.

"Rather than a small number of large robots ... there will be many small
robotic units that will need to collaborate to achieve network repair
and maintenance tasks" (§1).  A fleet pairs manipulator robots
(Figure 1) with cleaning robots (Figure 2): the manipulator unplugs the
transceiver and feeds the cleaning unit, then reverses the process
(§3.3.2).

Capabilities follow the prototypes: reseat, clean, and spare-transceiver
swap.  Cable laying and switchgear replacement stay human ("Currently,
we are not focusing on the replacement of fibers", §3.3) unless
``advanced_capabilities`` is enabled — the Level-4 future the paper
sketches in §4.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from dcrobot.core.actions import RepairAction, RepairOutcome, WorkOrder
from dcrobot.core.leadership import FencingGuard
from dcrobot.core.repairs import ROBOT_SKILL, RepairPhysics
from dcrobot.failures.cascade import ROBOT_GRIPPER, ContactProfile
from dcrobot.failures.health import HealthModel
from dcrobot.network.inventory import Fabric
from dcrobot.obs import NULL_OBS
from dcrobot.robots.cleaner import CleaningRobot
from dcrobot.robots.health import RobotHealthModel, UnitHealth
from dcrobot.robots.manipulator import ManipulatorRobot
from dcrobot.robots.mobility import MobilityScope
from dcrobot.sim.engine import Simulation
from dcrobot.sim.events import Event
from dcrobot.sim.resources import Store

BASIC_CAPABILITIES = frozenset({
    RepairAction.RESEAT,
    RepairAction.CLEAN,
    RepairAction.REPLACE_TRANSCEIVER,
})

ADVANCED_CAPABILITIES = frozenset(RepairAction)


@dataclasses.dataclass
class FleetConfig:
    """Fleet composition and policy."""

    manipulators: int = 2
    cleaners: int = 1
    scope: MobilityScope = MobilityScope.HALL
    manipulator_speed_m_s: float = 0.5
    cleaner_speed_m_s: float = 0.4
    #: "nearest" picks the closest idle unit; "fifo" the longest-idle.
    allocation: str = "nearest"
    #: Level-4 future: robots lay cables and swap switchgear too.
    advanced_capabilities: bool = False
    replace_cable_seconds: float = 2.0 * 3600
    replace_switchgear_seconds: float = 1.5 * 3600
    #: Home racks for units, round-robin; defaults to spreading across
    #: the hall's rows.
    home_racks: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.manipulators < 1:
            raise ValueError("need at least one manipulator")
        if self.cleaners < 0:
            raise ValueError("cleaners must be >= 0")
        if self.allocation not in ("nearest", "fifo"):
            raise ValueError(
                f"allocation must be 'nearest' or 'fifo', "
                f"got {self.allocation!r}")


@dataclasses.dataclass
class Assignment:
    """One submitted order's dispatch state under fleet self-healing.

    Each (re)dispatch runs under a monotonically increasing *epoch*
    admitted through a per-order :class:`FencingGuard` — the literal
    S14 fencing mechanism, reused at order granularity.  When the
    watchdog re-dispatches an orphaned order, the guard advances, and a
    zombie unit's late completion (stale epoch) is refused before it
    can double-conclude the order.
    """

    order: WorkOrder
    done: Event
    guard: FencingGuard
    epoch: int = 1
    #: Unit currently executing (None between loss and re-acquire).
    unit_id: Optional[str] = None
    redispatches: int = 0


class RobotFleet:
    """Maintenance executor backed by collaborating robot units."""

    def __init__(self, sim: Simulation, fabric: Fabric,
                 health: HealthModel, physics: RepairPhysics,
                 config: Optional[FleetConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 executor_id: str = "robots") -> None:
        self.sim = sim
        self.fabric = fabric
        self.health = health
        self.physics = physics
        self.config = config or FleetConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.executor_id = executor_id
        self.contact: ContactProfile = ROBOT_GRIPPER

        self.manipulators: List[ManipulatorRobot] = []
        self.cleaners: List[CleaningRobot] = []
        self._idle_manipulators = Store(sim)
        self._idle_cleaners = Store(sim)
        self._build_units()

        self.outcomes: List[RepairOutcome] = []
        #: Orders rejected because no unit's scope covers the target.
        self.unreachable_orders: List[WorkOrder] = []
        #: Leadership fencing guard (set by the world builder when
        #: failover is enabled); orders with stale tokens are refused.
        self.fence = None
        #: Orders refused for carrying a stale fencing token.
        self.rejected_orders: List[WorkOrder] = []
        #: order id -> completion event: the fleet's work-order queue is
        #: ground truth that survives a controller crash, so a recovered
        #: controller can re-attach to in-flight orders instead of
        #: dispatching the repair a second time.
        self.pending_acks: Dict[int, Event] = {}
        #: Mid-operation fault planner (set by the chaos engine).
        self.chaos = None
        #: link id -> number of operations physically touching it now
        #: (the safety monitor's "who is at the rack" ground truth).
        self.busy_links: Dict[str, int] = {}

        # -- robot health / self-healing (attach_health wires these) ----
        #: Per-robot health model; None keeps the legacy immortal fleet.
        self.robot_health: Optional[RobotHealthModel] = None
        #: Telemetry monitor receiving unit heartbeats.
        self.monitor = None
        self.obs = NULL_OBS
        #: Human escalation hook: ``rescue(unit_id, rack_id) -> Event``.
        self.rescue = None
        #: order id -> Assignment (fenced dispatch state per order).
        self.assignments: Dict[int, Assignment] = {}
        #: Spare robot modules for robot-repairs-robot work orders.
        self.spares_left = 0
        self.deaths = 0
        self.heartbeat_losses = 0
        self.redispatch_count = 0
        self.quarantine_count = 0
        #: Late completions refused by a per-order fencing guard.
        self.zombie_refusals = 0
        #: Tripwire: a late completion that *was* accepted after the
        #: order had already concluded.  Must stay zero — a non-zero
        #: value is a fencing violation.
        self.zombie_acks_accepted = 0
        self.repairs_done = 0
        self.human_rescues = 0
        #: Orders concluded needs-human because the fleet fell below
        #: quorum (or lost coverage) mid-incident.
        self.quorum_escalations = 0

    def _default_homes(self, count: int) -> List[str]:
        """Spread units across rows (one per row, round-robin)."""
        layout = self.fabric.layout
        homes = []
        for index in range(count):
            row = index % layout.rows
            homes.append(layout.rack_at(row, 0).id)
        return homes

    def _build_units(self) -> None:
        config = self.config
        homes = config.home_racks or self._default_homes(
            config.manipulators + config.cleaners)
        cursor = 0
        for index in range(config.manipulators):
            robot = ManipulatorRobot(
                self.sim, self.fabric, f"{self.executor_id}-manip-{index}",
                homes[cursor % len(homes)], scope=config.scope,
                speed_m_s=config.manipulator_speed_m_s,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)))
            cursor += 1
            self.manipulators.append(robot)
            self._idle_manipulators.put(robot)
        for index in range(config.cleaners):
            robot = CleaningRobot(
                self.sim, self.fabric, f"{self.executor_id}-clean-{index}",
                homes[cursor % len(homes)], scope=config.scope,
                speed_m_s=config.cleaner_speed_m_s,
                rng=np.random.default_rng(self.rng.integers(2 ** 31)))
            cursor += 1
            self.cleaners.append(robot)
            self._idle_cleaners.put(robot)

    def __repr__(self) -> str:
        return (f"<RobotFleet manipulators={len(self.manipulators)} "
                f"cleaners={len(self.cleaners)} "
                f"done={len(self.outcomes)}>")

    # -- executor interface -----------------------------------------------------

    @property
    def capabilities(self) -> frozenset:
        if self.config.advanced_capabilities:
            return ADVANCED_CAPABILITIES
        caps = set(BASIC_CAPABILITIES)
        if not self.cleaners:
            caps.discard(RepairAction.CLEAN)
        return frozenset(caps)

    def can_execute(self, action: RepairAction) -> bool:
        return action in self.capabilities

    def _service_manipulators(self) -> List[ManipulatorRobot]:
        """Manipulators fit for dispatch (all of them when no health
        model is attached; only in-service units otherwise)."""
        if self.robot_health is None:
            return self.manipulators
        records = self.robot_health.records
        return [robot for robot in self.manipulators
                if robot.id not in records
                or records[robot.id].in_service]

    def covers(self, rack_id: str) -> bool:
        """Whether any in-service manipulator's scope includes the rack.

        With a health model attached, dead/lost/quarantined units drop
        out — coverage physically shrinks as the fleet degrades.
        """
        return any(robot.can_reach(rack_id)
                   for robot in self._service_manipulators())

    def coverage_fraction(self) -> float:
        """Fraction of hall racks inside some manipulator's scope."""
        racks = list(self.fabric.layout.racks)
        covered = sum(1 for rack in racks if self.covers(rack))
        return covered / len(racks) if racks else 1.0

    def healthy_fraction(self) -> float:
        """In-service fraction of the manipulator fleet (1.0 when no
        health model is attached)."""
        if self.robot_health is None or not self.manipulators:
            return 1.0
        return len(self._service_manipulators()) / len(self.manipulators)

    def operational(self) -> bool:
        """Whether the fleet should take new work at all.

        Below quorum the controller falls back to humans (graceful
        degradation) instead of queueing orders on a dying fleet.
        """
        if self.robot_health is None:
            return True
        if not self._service_manipulators():
            return False
        return (self.healthy_fraction()
                >= self.robot_health.params.quorum_fraction)

    def announce_touches(self, order: WorkOrder) -> List[str]:
        """Pre-maintenance contact announcement (§2)."""
        link = self.fabric.links[order.link_id]
        return self.physics.cascade.predict_touched(link, self.contact)

    def submit(self, order: WorkOrder) -> Event:
        """Queue an order; event fires with the RepairOutcome."""
        done = self.sim.event()
        if self.fence is not None and not self.fence.admit(
                order.fencing_token, time=self.sim.now,
                order_id=order.order_id, link_id=order.link_id):
            # Split-brain protection: this order was dispatched by a
            # deposed primary.  Refuse before any robot moves.
            self.rejected_orders.append(order)
            done.succeed(RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=self.sim.now, finished_at=self.sim.now,
                completed=False, rejected=True,
                notes="stale fencing token: dispatching primary deposed"))
            return done
        self.pending_acks[order.order_id] = done
        if self.robot_health is not None:
            # Fenced dispatch: each (re)dispatch of this order runs
            # under an epoch admitted through a per-order guard.
            self.assignments[order.order_id] = Assignment(
                order=order, done=done, guard=FencingGuard(obs=self.obs))
            self.sim.process(self._execute(order, done, epoch=1))
        else:
            self.sim.process(self._execute(order, done))
        return done

    def _depot_rack_id(self) -> str:
        """The spares depot: the hall's first rack by convention."""
        return self.fabric.layout.rack_at(0, 0).id

    def acquire_manipulator(self, rack_id: str):
        """Generator: claim an idle manipulator that can reach the rack.

        Public hook for non-repair choreographies (e.g. robotic
        rewiring); pair with :meth:`release_manipulator`.
        """
        robot = yield from self._acquire(self._idle_manipulators,
                                         rack_id)
        return robot

    def release_manipulator(self, robot) -> None:
        """Return a manipulator claimed via acquire_manipulator."""
        self._idle_manipulators.put(robot)

    # -- robot health, heartbeats, and self-healing ------------------------------

    def attach_health(self, model: RobotHealthModel, monitor=None,
                      obs=None) -> None:
        """Wire the per-robot health model (and start its processes).

        Every unit is registered and starts heartbeating into the
        telemetry ``monitor``; with ``self_healing`` enabled the
        watchdog detects stale units, re-dispatches their orphaned
        orders under an advanced fencing epoch, quarantines flaky
        units, and schedules robot-repairs-robot (or human rescue)
        recovery.
        """
        self.robot_health = model
        self.monitor = monitor
        if obs is not None:
            self.obs = obs
        self.spares_left = model.params.robot_spares
        for unit in self.manipulators + self.cleaners:
            model.register(unit)
            if monitor is not None:
                monitor.record_heartbeat(unit.id, self.sim.now)
        if monitor is not None:
            self.sim.process(self._heartbeat_loop())
            if model.params.self_healing:
                self.sim.process(self._watchdog_loop())

    def _unit_by_id(self, unit_id: str):
        for unit in self.manipulators + self.cleaners:
            if unit.id == unit_id:
                return unit
        return None

    def _record_for(self, unit) -> Optional[UnitHealth]:
        if self.robot_health is None:
            return None
        return self.robot_health.record_for(unit.id)

    def _heartbeat_loop(self):
        """Generator: units report liveness into the telemetry monitor.

        Dead units simply stop appearing here — their absence, not any
        self-report, is what the watchdog detects.
        """
        sim = self.sim
        interval = self.robot_health.params.heartbeat_seconds
        while True:
            now = sim.now
            for record in self.robot_health.records.values():
                if record.beating(now):
                    self.monitor.record_heartbeat(record.unit_id, now)
            if self.obs.enabled:
                self.obs.gauge("dcrobot_fleet_healthy_fraction",
                               self.healthy_fraction())
                for record in self.robot_health.records.values():
                    self.obs.gauge("dcrobot_robot_wear", record.wear,
                                   unit=record.unit_id)
                    self.obs.gauge("dcrobot_robot_battery",
                                   record.battery,
                                   unit=record.unit_id)
            yield sim.timeout(interval)

    def _watchdog_loop(self):
        """Generator: detect lost units from heartbeat silence, then
        re-dispatch their orders and schedule recovery."""
        sim = self.sim
        params = self.robot_health.params
        interval = params.heartbeat_seconds
        timeout = params.heartbeat_timeout_seconds
        while True:
            yield sim.timeout(interval)
            now = sim.now
            stale = (set(self.monitor.stale_sources(now, timeout))
                     if self.monitor is not None else set())
            for unit_id in sorted(self.robot_health.records):
                record = self.robot_health.records[unit_id]
                if (unit_id in stale and not record.lost
                        and not record.quarantined):
                    # Silence is the only signal: the unit may be dead,
                    # wedged, or a zombie still working — either way it
                    # no longer owns its order.
                    record.lost = True
                    self.heartbeat_losses += 1
                    if self.obs.enabled:
                        self.obs.count(
                            "dcrobot_robot_heartbeat_losses_total",
                            unit=unit_id)
                    assignment = self._assignment_of(unit_id)
                    if assignment is not None:
                        self._redispatch(assignment)
                # Recovery starts only once the loss has been *detected*
                # (a dead unit looks identical to a healthy one until its
                # heartbeats go stale), so the orphaned order is always
                # re-dispatched before a rescue can revive the unit and
                # let its heartbeats resume.
                if (((record.lost and not record.alive)
                        or record.quarantined)
                        and not record.recovery_started):
                    record.recovery_started = True
                    sim.process(self._recover(record))

    def _assignment_of(self, unit_id: str) -> Optional[Assignment]:
        for order_id in sorted(self.assignments):
            assignment = self.assignments[order_id]
            if (assignment.unit_id == unit_id
                    and not assignment.done.triggered):
                return assignment
        return None

    def _redispatch(self, assignment: Assignment) -> None:
        """Fenced re-dispatch of an orphaned order to a healthy unit.

        Advances the order's fencing epoch *first*, so the previous
        owner's late completion is refused even if it arrives before
        the replacement finishes.  Idempotent: a concluded order is
        left alone.
        """
        if assignment.done.triggered:
            return
        order = assignment.order
        assignment.epoch += 1
        assignment.redispatches += 1
        assignment.unit_id = None
        assignment.guard.advance(assignment.epoch)
        self.redispatch_count += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_robot_redispatches_total")
        link = self.fabric.links[order.link_id]
        rack_id = self.manipulators[0].rack_of_link(link)
        in_service = self._service_manipulators()
        reachable = any(robot.can_reach(rack_id)
                        for robot in in_service)
        if (not reachable or self.healthy_fraction()
                < self.robot_health.params.quorum_fraction):
            # Graceful degradation: too few healthy units (or none in
            # range) — conclude needs-human under the new epoch so the
            # controller escalates instead of waiting forever.
            self.quorum_escalations += 1
            if self.obs.enabled:
                self.obs.count("dcrobot_robot_quorum_escalations_total")
            self._finish(order, assignment.done, RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=self.sim.now, finished_at=self.sim.now,
                completed=False, needs_human=True,
                notes="fleet degraded below quorum; escalating"),
                assignment.epoch)
            return
        self.sim.process(self._execute(order, assignment.done,
                                       epoch=assignment.epoch))

    def _quarantine(self, record: UnitHealth) -> None:
        """Bench a flaky or returned-zombie unit (kept out of the idle
        stores until repaired)."""
        record.quarantined = True
        record.lost = False
        self.quarantine_count += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_robot_quarantines_total",
                           unit=record.unit_id)

    def _recover(self, record: UnitHealth):
        """Generator: bring a dead or quarantined unit back.

        Preferred path is robot-repairs-robot: a healthy peer travels
        to the unit with a spare module.  Out of spares (or peers), the
        fleet escalates to the human rescue hook; with neither, the
        unit stays down and the fleet is permanently smaller.
        """
        sim = self.sim
        params = self.robot_health.params
        unit = self._unit_by_id(record.unit_id)
        if record.holding_link_id is not None:
            link = self.fabric.links[record.holding_link_id]
            rack_id = self.manipulators[0].rack_of_link(link)
        else:
            rack_id = unit.mobility.current_rack_id
        helpers = [robot for robot in self._service_manipulators()
                   if robot.id != record.unit_id
                   and robot.can_reach(rack_id)]
        if (params.self_healing and self.spares_left > 0 and helpers):
            helper = yield from self._acquire(self._idle_manipulators,
                                              rack_id)
            yield from helper.travel_to(rack_id)
            yield from helper.work(params.robot_repair_seconds)
            self.spares_left -= 1
            self.repairs_done += 1
            if self.obs.enabled:
                self.obs.count("dcrobot_robot_repairs_total",
                               unit=record.unit_id)
            self._idle_manipulators.put(helper)
        elif self.rescue is not None:
            self.human_rescues += 1
            if self.obs.enabled:
                self.obs.count("dcrobot_robot_human_rescues_total",
                               unit=record.unit_id)
            yield self.rescue(record.unit_id, rack_id)
        else:
            return  # no spares, no humans: the unit stays down
        self._revive(record, unit)

    def _revive(self, record: UnitHealth, unit) -> None:
        """Return a repaired unit to service (fresh module, full pack)."""
        record.alive = True
        record.lost = False
        record.quarantined = False
        record.battery = 1.0
        record.wear = 0.0
        record.fault_times.clear()
        record.suppress_until = float("-inf")
        record.died_at = None
        record.death_cause = None
        record.recovery_started = False
        if record.holding_link_id is not None:
            # The carcass (and its tools) leave the rack.
            self._release_touch(record.holding_link_id)
            record.holding_link_id = None
        if self.monitor is not None:
            self.monitor.record_heartbeat(record.unit_id, self.sim.now)
        store = (self._idle_cleaners
                 if isinstance(unit, CleaningRobot)
                 else self._idle_manipulators)
        store.put(unit)

    def _release_touch(self, link_id: str) -> None:
        remaining = self.busy_links.get(link_id, 0) - 1
        if remaining <= 0:
            self.busy_links.pop(link_id, None)
        else:
            self.busy_links[link_id] = remaining

    # -- fleet internals -----------------------------------------------------------

    def _acquire(self, store: Store, rack_id: str):
        """Generator: claim an idle unit able to reach ``rack_id``."""
        if self.config.allocation == "nearest":
            layout = self.fabric.layout
            target = layout.racks[rack_id].position
            candidates = [robot for robot in store.items
                          if robot.can_reach(rack_id)]
            if candidates:
                best = min(candidates, key=lambda robot:
                           layout.travel_distance(
                               layout.racks[robot.mobility.current_rack_id]
                               .position, target))
                robot = yield store.get(lambda item: item is best)
                return robot
        robot = yield store.get(lambda item: item.can_reach(rack_id))
        return robot

    def _fail(self, order: WorkOrder, done: Event, note: str,
              needs_human: bool = True,
              epoch: Optional[int] = None) -> None:
        outcome = RepairOutcome(
            order=order, executor_id=self.executor_id,
            started_at=self.sim.now, finished_at=self.sim.now,
            completed=False, needs_human=needs_human, notes=note)
        self._finish(order, done, outcome, epoch)

    def _finish(self, order: WorkOrder, done: Event,
                outcome: RepairOutcome,
                epoch: Optional[int]) -> bool:
        """Conclude an order — through its fencing guard when epoched.

        A stale epoch (the order was re-dispatched while this unit was
        lost) is refused: the outcome is dropped and the ``done`` event
        left to the replacement.  Returns whether the conclusion was
        accepted.
        """
        if epoch is None:
            # Legacy path (no health model): conclude directly.
            self.outcomes.append(outcome)
            done.succeed(outcome)
            return True
        assignment = self.assignments.get(order.order_id)
        guard = assignment.guard if assignment is not None else None
        if guard is not None and not guard.admit(
                epoch, time=self.sim.now, order_id=order.order_id,
                link_id=order.link_id):
            self.zombie_refusals += 1
            if self.obs.enabled:
                self.obs.count("dcrobot_robot_zombie_refusals_total")
            return False
        if done.triggered:
            # Fencing violation tripwire: the guard admitted a second
            # conclusion.  Count it (must stay zero) and do not raise
            # through Event.succeed.
            self.zombie_acks_accepted += 1
            return False
        self.outcomes.append(outcome)
        if guard is not None:
            # Retire the epoch: conclusion is at-most-once, so even a
            # same-epoch duplicate is now refused as stale instead of
            # reaching the tripwire above.
            guard.advance(epoch + 1)
        done.succeed(outcome)
        return True

    def _superseded(self, order: WorkOrder, epoch: Optional[int]) -> bool:
        """Whether this execution's epoch has been fenced out."""
        if epoch is None:
            return False
        assignment = self.assignments.get(order.order_id)
        return assignment is not None and assignment.epoch != epoch

    def _execute(self, order: WorkOrder, done: Event,
                 epoch: Optional[int] = None):
        sim = self.sim
        link = self.fabric.links[order.link_id]
        if not self.can_execute(order.action):
            self._fail(order, done,
                       f"fleet cannot perform {order.action.value}",
                       epoch=epoch)
            return
        rack_id = self.manipulators[0].rack_of_link(link)
        if not self.covers(rack_id):
            self.unreachable_orders.append(order)
            self._fail(order, done, f"no unit covers rack {rack_id}",
                       epoch=epoch)
            return

        manipulator = yield from self._acquire(
            self._idle_manipulators, rack_id)
        cleaner = None
        if order.action is RepairAction.CLEAN:
            cleaner = yield from self._acquire(self._idle_cleaners,
                                               rack_id)
        record = self._record_for(manipulator)
        assignment = self.assignments.get(order.order_id)
        if (assignment is not None and epoch is not None
                and assignment.epoch == epoch):
            assignment.unit_id = manipulator.id
        plan = (self.chaos.plan_for(order, sim.now)
                if self.chaos is not None else None)
        #: (cause, seconds of rack work before dying), or None.
        death = None
        zombie = (plan is not None and plan.zombie
                  and record is not None)
        if record is not None:
            hazard = self.robot_health.plan_order(record)
            if plan is not None and plan.die:
                death = ("chaos", plan.die_after_seconds)
            elif plan is not None and plan.battery_lie:
                # The gauge lies high: the recharge check is skipped
                # and the unit dies when the true charge runs out.
                record.battery = plan.battery_lie_charge
                death = ("battery", plan.battery_lie_charge
                         * self.robot_health.params
                         .battery_capacity_seconds)
            elif hazard.dies:
                death = ("wear", hazard.after_seconds)
            if zombie and death is not None:
                zombie = False  # a dead unit does not report late
            if ((death is None or death[0] != "battery")
                    and self.robot_health.needs_charge(record)):
                yield from manipulator.work(
                    self.robot_health.params.recharge_seconds)
                self.robot_health.recharge(record)
        touching = False
        holding = False
        died = False
        try:
            started = sim.now
            travels = [sim.process(manipulator.travel_to(rack_id))]
            if cleaner is not None:
                travels.append(sim.process(cleaner.travel_to(rack_id)))
            yield sim.all_of(travels)
            if record is not None:
                self.robot_health.drain(record, sim.now - started)

            self.busy_links[link.id] = self.busy_links.get(link.id, 0) + 1
            touching = True
            rack_work_started = sim.now
            self.health.begin_maintenance(link, sim.now)
            holding = True
            touch = self.physics.reach_in(link, self.contact, sim.now)
            if death is not None:
                # The unit dies mid-order: no report, no release — the
                # link stays in maintenance with the carcass at the
                # rack until the watchdog notices the silence and a
                # replacement (or human) takes over.
                cause, after_seconds = death
                if after_seconds > 0:
                    yield from manipulator.work(after_seconds)
                died = True
                self._die(record, link, cause)
                return
            if plan is not None and plan.stall_seconds > 0:
                # The unit wedges mid-operation; it eventually recovers
                # and continues, but the ack is this much later.
                if record is not None:
                    self.robot_health.record_fault(record, sim.now)
                yield from manipulator.work(plan.stall_seconds)
            if zombie:
                # The unit goes dark but keeps working: heartbeats
                # stop (the watchdog will declare it lost) while the
                # operation silently drags on toward a late report.
                record.suppress_until = sim.now + plan.zombie_seconds
                self.robot_health.record_fault(record, sim.now)
                yield from manipulator.work(plan.zombie_seconds)
            if plan is not None and plan.crash and not zombie:
                # Aborted mid-operation: give the link back untouched,
                # sit out the recovery, then report failure upward.
                if record is not None:
                    self.robot_health.record_fault(record, sim.now)
                if not self._superseded(order, epoch):
                    self.health.release_from_maintenance(link, sim.now)
                    holding = False
                if plan.crash_recovery_seconds > 0:
                    yield from manipulator.work(
                        plan.crash_recovery_seconds)
                outcome = RepairOutcome(
                    order=order, executor_id=self.executor_id,
                    started_at=started, finished_at=sim.now,
                    completed=False, needs_human=True,
                    notes="robot crashed mid-operation",
                    secondary_disturbed=len(touch.disturbed_links),
                    secondary_damaged=len(touch.damaged_links))
                self._finish(order, done, outcome, epoch)
                return
            if self._superseded(order, epoch):
                # A replacement owns this order now (the watchdog
                # declared this unit lost while it was dark): walk away
                # without touching the link further; the per-order
                # guard formally refuses the late ack.
                outcome = RepairOutcome(
                    order=order, executor_id=self.executor_id,
                    started_at=started, finished_at=sim.now,
                    completed=False,
                    notes="late completion fenced (stale epoch)")
                self._finish(order, done, outcome, epoch)
                return
            completed, needs_human, notes = yield from self._perform(
                order, link, manipulator, cleaner)
            if plan is not None and plan.partial and completed:
                # The repair only half-landed; the robot does not know
                # and still reports success.
                self.chaos.apply_partial(link, sim.now)
            self.health.release_from_maintenance(link, sim.now)
            holding = False
            if record is not None:
                self.robot_health.drain(record,
                                        sim.now - rack_work_started)
                self.robot_health.record_operation(record)

            outcome = RepairOutcome(
                order=order, executor_id=self.executor_id,
                started_at=started, finished_at=sim.now,
                completed=completed, needs_human=needs_human,
                notes=notes,
                secondary_disturbed=len(touch.disturbed_links),
                secondary_damaged=len(touch.damaged_links))
            self._finish(order, done, outcome, epoch)
        finally:
            if touching and not died:
                self._release_touch(link.id)
            if holding and not died \
                    and not self._superseded(order, epoch):
                # An exception escaping the choreography above must not
                # leave the link stuck in maintenance forever.
                self.health.release_from_maintenance(link, sim.now)
            if not died:
                self._return_unit(manipulator, self._idle_manipulators)
            if cleaner is not None:
                self._return_unit(cleaner, self._idle_cleaners)

    def _die(self, record: UnitHealth, link, cause: str) -> None:
        """Mark a unit dead mid-order (its busy-links touch is kept:
        the carcass is physically at the rack until recovered)."""
        record.alive = False
        record.died_at = self.sim.now
        record.death_cause = cause
        record.holding_link_id = link.id
        self.deaths += 1
        if self.obs.enabled:
            self.obs.count("dcrobot_robot_deaths_total",
                           unit=record.unit_id, cause=cause)

    def _return_unit(self, unit, store: Store) -> None:
        """Restock a unit after an order — unless self-healing policy
        benches it (declared lost while out, or flaky)."""
        record = self._record_for(unit)
        if record is None:
            store.put(unit)
            return
        if self.robot_health.params.self_healing and (
                record.lost
                or self.robot_health.is_flaky(record, self.sim.now)):
            self._quarantine(record)
            return
        store.put(unit)

    def _perform(self, order: WorkOrder, link, manipulator, cleaner):
        """Generator: run the action's robot choreography.

        Returns (completed, needs_human, notes).
        """
        action = order.action
        if action is RepairAction.RESEAT:
            ok, note = yield from manipulator.reseat(link)
            return ok, not ok, note

        if action is RepairAction.CLEAN:
            notes = []
            for side in ("a", "b"):
                extracted = yield from manipulator.extract(link, side)
                if not extracted:
                    notes.append(f"extraction failed on side {side}")
                    return False, True, "; ".join(notes)
                verified, note = yield from cleaner.clean_cycle(link, side)
                yield from manipulator.reinsert(link, side)
                notes.append(note)
                if not verified:
                    # §3.3.2: the robot requests human support.
                    return False, True, "; ".join(notes)
            return True, False, "; ".join(notes)

        if action is RepairAction.REPLACE_TRANSCEIVER:
            # Spares ride in the manipulator's magazine; an empty one
            # costs a depot round trip before the swap can happen.
            yield from manipulator.ensure_spare(self._depot_rack_id())
            side = self.physics.pick_suspect_side(link)
            extracted = yield from manipulator.extract(link, side)
            if not extracted:
                return False, True, f"extraction failed on side {side}"
            ok, note = self.physics.do_replace_transceiver(
                link, self.sim.now)
            if ok:
                manipulator.consume_spare()
            yield from manipulator.work(
                manipulator.params.swap_spare_seconds)
            # On success the spare goes in; with no spare in stock the
            # old unit is put back so the link is not left disconnected.
            yield from manipulator.reinsert(link, side)
            if not ok:
                return False, False, note  # out of spares, not a skill gap
            return True, False, note

        # Advanced (Level 4) actions run through shared physics with
        # fleet-level durations.
        seconds = (self.config.replace_cable_seconds
                   if action is RepairAction.REPLACE_CABLE
                   else self.config.replace_switchgear_seconds)
        yield from manipulator.work(seconds)
        ok, note = self.physics.perform(action, link, self.sim.now,
                                        ROBOT_SKILL)
        return ok, False, note
