"""Robot mobility: deployment scopes and travel (§3.4).

"There are several potential deployment scopes for robotics:
device-level within the rack, rack-level, row-level, hall level, and
full datacenter level. The chosen scope significantly influences the
mobility model required."  A robot's scope bounds which racks it can
service from its home position; travel follows the aisles (Manhattan
geometry), plus a fixed alignment overhead on arrival.
"""

from __future__ import annotations

import enum

from dcrobot.network.inventory import Fabric


class MobilityScope(enum.Enum):
    """How far from home a robot unit can operate."""

    DEVICE = "device"  #: fixed installation serving a single rack
    RACK = "rack"      #: in-rack unit, single rack
    ROW = "row"        #: moves along the XY plane of one row (§3.4)
    HALL = "hall"      #: free-roaming across the hall


class MobilityModel:
    """Reachability and travel times for one robot."""

    def __init__(self, fabric: Fabric, home_rack_id: str,
                 scope: MobilityScope, speed_m_s: float = 0.5,
                 alignment_seconds: float = 30.0) -> None:
        if speed_m_s <= 0:
            raise ValueError(f"speed must be > 0, got {speed_m_s}")
        if alignment_seconds < 0:
            raise ValueError("alignment_seconds must be >= 0")
        if home_rack_id not in fabric.layout.racks:
            raise ValueError(f"unknown rack {home_rack_id}")
        self.fabric = fabric
        self.home_rack_id = home_rack_id
        self.scope = scope
        self.speed_m_s = speed_m_s
        self.alignment_seconds = alignment_seconds
        self.current_rack_id = home_rack_id

    def __repr__(self) -> str:
        return (f"<MobilityModel {self.scope.value} "
                f"home={self.home_rack_id} at={self.current_rack_id}>")

    def can_reach(self, rack_id: str) -> bool:
        """Whether the robot's scope covers the target rack."""
        if rack_id not in self.fabric.layout.racks:
            return False
        if self.scope in (MobilityScope.DEVICE, MobilityScope.RACK):
            return rack_id == self.home_rack_id
        if self.scope is MobilityScope.ROW:
            home_row = self.fabric.layout.racks[self.home_rack_id].row
            return self.fabric.layout.racks[rack_id].row == home_row
        return True  # HALL

    def travel_seconds(self, rack_id: str) -> float:
        """Aisle travel time from the current rack to the target."""
        if not self.can_reach(rack_id):
            raise ValueError(
                f"rack {rack_id} outside {self.scope.value} scope "
                f"of {self.home_rack_id}")
        if rack_id == self.current_rack_id:
            return 0.0
        layout = self.fabric.layout
        origin = layout.racks[self.current_rack_id].position
        target = layout.racks[rack_id].position
        distance = layout.travel_distance(origin, target)
        return distance / self.speed_m_s + self.alignment_seconds

    def move_to(self, rack_id: str) -> float:
        """Travel and update position; returns the travel time."""
        seconds = self.travel_seconds(rack_id)
        self.current_rack_id = rack_id
        return seconds
