"""The fiber and transceiver cleaning robot (Figure 2).

"The cleaning unit robot automatically detaches the cable from the
transceiver, visually inspects the fiber end-face cores and the
transceiver and then cleans any parts needed to pass inspection, before
reassembling" (§3.3.2).  The paper's headline timing — 8-core end-face
inspection in under 30 seconds — is the default here
(``per_core_inspect_seconds * 8 = 28 s``).

Cleaning consumables (tape/solvent) are a finite reservoir; refills
consume time, which matters at fleet scale.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from dcrobot.core.repairs import ROBOT_SKILL, SkillProfile
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.robots.base import RobotUnit
from dcrobot.robots.mobility import MobilityScope
from dcrobot.sim.engine import Simulation
from dcrobot.sim.resources import Container


@dataclasses.dataclass
class CleanerParams:
    """Cleaning-unit stage timings and consumable capacity."""

    detach_seconds: float = 20.0
    per_core_inspect_seconds: float = 3.5
    dry_clean_seconds: float = 15.0
    wet_clean_seconds: float = 25.0
    reassemble_seconds: float = 20.0
    rotate_seconds: float = 6.0     #: actuator re-positioning per face
    consumable_capacity: float = 200.0  #: cleaning passes per cartridge
    refill_seconds: float = 600.0
    skill: SkillProfile = ROBOT_SKILL

    def __post_init__(self) -> None:
        if self.per_core_inspect_seconds <= 0:
            raise ValueError("per_core_inspect_seconds must be > 0")
        if self.consumable_capacity <= 0:
            raise ValueError("consumable_capacity must be > 0")


class CleaningRobot(RobotUnit):
    """Inspects and cleans end-faces and transceiver receptacles."""

    KIND = "cleaner"

    def __init__(self, sim: Simulation, fabric: Fabric, unit_id: str,
                 home_rack_id: str,
                 scope: MobilityScope = MobilityScope.HALL,
                 speed_m_s: float = 0.4,
                 params: Optional[CleanerParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(sim, fabric, unit_id, home_rack_id, scope,
                         speed_m_s, rng)
        self.params = params or CleanerParams()
        self.consumables = Container(
            sim, capacity=self.params.consumable_capacity,
            init=self.params.consumable_capacity)
        self.refills = 0

    # -- stage helpers -----------------------------------------------------------

    def inspect_seconds(self, core_count: int) -> float:
        """Machine-inspection time for one face of ``core_count`` cores."""
        return core_count * self.params.per_core_inspect_seconds

    def _consume_pass(self):
        """Generator: draw one cleaning pass of consumables, refilling
        the cartridge when empty."""
        if self.consumables.level < 1.0:
            self.refills += 1
            yield from self.work(self.params.refill_seconds)
            yield self.consumables.put(
                self.params.consumable_capacity - self.consumables.level)
        yield self.consumables.get(1.0)

    def _service_face(self, face):
        """Generator: inspect→clean loop for one face.

        Returns True if the face verifiably passes inspection.
        """
        params = self.params
        skill = params.skill
        yield from self.work(self.inspect_seconds(face.core_count))
        for round_index in range(skill.max_clean_rounds):
            if face.passes_inspection(
                    false_negative_rate=skill.inspection_false_negative,
                    rng=self.rng):
                return True
            wet = round_index > 0  # dry first, then wet (§3.3.2)
            yield from self._consume_pass()
            yield from self.work(params.wet_clean_seconds if wet
                                 else params.dry_clean_seconds)
            face.clean(self.rng, wet=wet,
                       effectiveness=skill.clean_effectiveness,
                       smear_probability=skill.clean_smear_probability)
            yield from self.work(self.inspect_seconds(face.core_count))
        return face.passes_inspection(
            false_negative_rate=skill.inspection_false_negative,
            rng=self.rng)

    # -- the full cycle -------------------------------------------------------------

    def clean_cycle(self, link: Link, side: str):
        """Generator: full §3.3.2 cycle for one end of the link.

        Detach → inspect/clean cable end-face → rotate → inspect/clean
        transceiver receptacle → reassemble.  Returns (verified, note);
        unverified cleanliness means the robot "requests human support".
        """
        cable = link.cable
        if not cable.cleanable:
            return False, f"{cable.kind.value} cable cannot be detached"
        params = self.params
        cable.detach(side)
        yield from self.work(params.detach_seconds)

        verified = yield from self._service_face(cable.endface(side))
        unit = link.transceiver_at(side)
        if unit.receptacle is not None:
            yield from self.work(params.rotate_seconds)
            receptacle_ok = yield from self._service_face(unit.receptacle)
            verified = verified and receptacle_ok

        cable.attach(side)
        yield from self.work(params.reassemble_seconds)
        self.operations_done += 1
        if verified:
            return True, f"cleaned and verified side {side}"
        return False, (f"side {side} failed verification after "
                       f"{params.skill.max_clean_rounds} rounds")

    def clean_link(self, link: Link):
        """Generator: clean both ends; success requires both verified."""
        notes = []
        all_ok = True
        for side in ("a", "b"):
            ok, note = yield from self.clean_cycle(link, side)
            notes.append(note)
            all_ok = all_ok and ok
        return all_ok, "; ".join(notes)
