"""Base robot unit: identity, mobility, busy-state, utilization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.robots.mobility import MobilityModel, MobilityScope
from dcrobot.sim.engine import Simulation


class RobotUnit:
    """One modular robot: a mobility platform plus task-specific tooling.

    Subclasses implement the actual operations as generator methods that
    yield simulation timeouts; the base class tracks movement and the
    busy/utilization accounting that experiments report.
    """

    KIND = "robot"

    def __init__(self, sim: Simulation, fabric: Fabric, unit_id: str,
                 home_rack_id: str,
                 scope: MobilityScope = MobilityScope.HALL,
                 speed_m_s: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.id = unit_id
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.mobility = MobilityModel(fabric, home_rack_id, scope,
                                      speed_m_s)
        self.busy_seconds = 0.0
        self.operations_done = 0

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.id} "
                f"at={self.mobility.current_rack_id}>")

    @property
    def scope(self) -> MobilityScope:
        return self.mobility.scope

    def can_reach(self, rack_id: str) -> bool:
        return self.mobility.can_reach(rack_id)

    def rack_of_link(self, link) -> str:
        """The rack a robot stands at to service a link (A-end parent)."""
        node = self.fabric.node(link.port_a.parent_id)
        if node.rack_id is None:
            raise ValueError(
                f"link {link.id} endpoint {node.id} is unplaced")
        return node.rack_id

    def travel_to(self, rack_id: str):
        """Generator: move to a rack, consuming simulated time."""
        seconds = self.mobility.move_to(rack_id)
        if seconds > 0:
            self.busy_seconds += seconds
            yield self.sim.timeout(seconds)

    def work(self, seconds: float):
        """Generator: spend ``seconds`` of tracked busy time."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.busy_seconds += seconds
        yield self.sim.timeout(seconds)

    def utilization(self, horizon_seconds: float) -> float:
        """Busy fraction over a horizon starting at t=0."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be > 0")
        return min(1.0, self.busy_seconds / horizon_seconds)
