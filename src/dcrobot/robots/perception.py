"""Robot perception: recognizing components in cluttered cabling.

§3.3.3: "The largest challenges have been the diversity of components
and high cabling density, which complicate perception and planning."
Recognition time and success depend on (i) how cluttered the bundle
around the target is and (ii) how unusual the transceiver's mechanical
backend is.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from dcrobot.network.transceiver import TransceiverModel


@dataclasses.dataclass
class PerceptionParams:
    """Vision-system timing/quality constants."""

    base_scan_seconds: float = 12.0
    #: Extra scan time per neighbouring cable in the bundle.
    per_neighbor_seconds: float = 0.8
    #: Baseline misrecognition probability for a catalog-known design.
    base_misrecognition: float = 0.01
    #: Extra misrecognition per unit of mechanical unusualness.
    difficulty_misrecognition: float = 0.05
    #: Re-scan time after a misrecognition.
    rescan_seconds: float = 8.0
    max_rescans: int = 3

    def __post_init__(self) -> None:
        if self.base_scan_seconds <= 0:
            raise ValueError("base_scan_seconds must be > 0")
        if self.max_rescans < 0:
            raise ValueError("max_rescans must be >= 0")


class PerceptionModel:
    """Samples recognition attempts for a target transceiver."""

    def __init__(self, params: Optional[PerceptionParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.params = params or PerceptionParams()
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def occlusion(self, bundle_density: int) -> float:
        """Clutter multiplier >= 1 from the surrounding bundle."""
        return 1.0 + max(0, bundle_density - 1) / 20.0

    def recognize(self, model: TransceiverModel,
                  bundle_density: int) -> Tuple[bool, float]:
        """Attempt to identify the target; returns (success, seconds).

        Misrecognitions trigger up to ``max_rescans`` re-scans; if all
        fail the operation needs human support.
        """
        params = self.params
        occlusion = self.occlusion(bundle_density)
        seconds = (params.base_scan_seconds
                   + params.per_neighbor_seconds
                   * max(0, bundle_density - 1)) * occlusion
        miss = (params.base_misrecognition
                + params.difficulty_misrecognition * model.grip_difficulty)
        for _attempt in range(1 + params.max_rescans):
            if self.rng.random() >= miss:
                return True, seconds
            seconds += params.rescan_seconds * occlusion
        return False, seconds
