"""Robotics substrate (S7): modular maintenance robot units and fleet."""

from dcrobot.robots.base import RobotUnit
from dcrobot.robots.cleaner import CleanerParams, CleaningRobot
from dcrobot.robots.fleet import (
    ADVANCED_CAPABILITIES,
    BASIC_CAPABILITIES,
    FleetConfig,
    RobotFleet,
)
from dcrobot.robots.manipulator import ManipulatorParams, ManipulatorRobot
from dcrobot.robots.mobility import MobilityModel, MobilityScope
from dcrobot.robots.perception import PerceptionModel, PerceptionParams

__all__ = [
    "RobotUnit",
    "ManipulatorRobot",
    "ManipulatorParams",
    "CleaningRobot",
    "CleanerParams",
    "RobotFleet",
    "FleetConfig",
    "BASIC_CAPABILITIES",
    "ADVANCED_CAPABILITIES",
    "MobilityModel",
    "MobilityScope",
    "PerceptionModel",
    "PerceptionParams",
]
