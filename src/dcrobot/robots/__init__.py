"""Robotics substrate (S7): modular maintenance robot units and fleet."""

from dcrobot.robots.base import RobotUnit
from dcrobot.robots.cleaner import CleanerParams, CleaningRobot
from dcrobot.robots.fleet import (
    ADVANCED_CAPABILITIES,
    BASIC_CAPABILITIES,
    Assignment,
    FleetConfig,
    RobotFleet,
)
from dcrobot.robots.health import (
    OrderHazard,
    RobotHealthModel,
    RobotHealthParams,
    UnitHealth,
)
from dcrobot.robots.manipulator import ManipulatorParams, ManipulatorRobot
from dcrobot.robots.mobility import MobilityModel, MobilityScope
from dcrobot.robots.perception import PerceptionModel, PerceptionParams

__all__ = [
    "RobotUnit",
    "ManipulatorRobot",
    "ManipulatorParams",
    "CleaningRobot",
    "CleanerParams",
    "RobotFleet",
    "FleetConfig",
    "Assignment",
    "RobotHealthParams",
    "RobotHealthModel",
    "UnitHealth",
    "OrderHazard",
    "BASIC_CAPABILITIES",
    "ADVANCED_CAPABILITIES",
    "MobilityModel",
    "MobilityScope",
    "PerceptionModel",
    "PerceptionParams",
]
