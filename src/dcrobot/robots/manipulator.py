"""The transceiver manipulation robot (Figure 1).

"A manipulator arm and gripper that allows automated transceiver
manipulation ... designed to grip and manipulate a single transceiver
while minimizing accidental interaction with physically close cables"
(§3.3.1).  Operations are generator methods; each returns
``(success, note)`` after consuming the modeled time.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link
from dcrobot.robots.base import RobotUnit
from dcrobot.robots.mobility import MobilityScope
from dcrobot.robots.perception import PerceptionModel, PerceptionParams
from dcrobot.sim.engine import Simulation


@dataclasses.dataclass
class ManipulatorParams:
    """Arm/gripper operation timings and grip reliability."""

    grip_attempt_seconds: float = 8.0
    unplug_seconds: float = 6.0
    #: §3.2: reseating involves "waiting a few seconds" before re-insert.
    reseat_pause_seconds: float = 5.0
    insert_seconds: float = 8.0
    swap_spare_seconds: float = 25.0
    max_grip_attempts: int = 4
    #: Grip failure scales with the backend's mechanical unusualness.
    grip_difficulty_weight: float = 0.5
    #: Onboard spare-transceiver magazine (§3.3.2: "the robots can
    #: carry spares"); empty magazines force a depot round trip.
    spare_capacity: int = 4
    depot_restock_seconds: float = 120.0

    def __post_init__(self) -> None:
        if self.max_grip_attempts < 1:
            raise ValueError("max_grip_attempts must be >= 1")
        if self.spare_capacity < 0:
            raise ValueError("spare_capacity must be >= 0")


class ManipulatorRobot(RobotUnit):
    """Grips, unplugs, re-seats, and swaps transceivers."""

    KIND = "manipulator"

    def __init__(self, sim: Simulation, fabric: Fabric, unit_id: str,
                 home_rack_id: str,
                 scope: MobilityScope = MobilityScope.HALL,
                 speed_m_s: float = 0.5,
                 params: Optional[ManipulatorParams] = None,
                 perception: Optional[PerceptionParams] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(sim, fabric, unit_id, home_rack_id, scope,
                         speed_m_s, rng)
        self.params = params or ManipulatorParams()
        self.perception = PerceptionModel(perception, rng=self.rng)
        #: Remaining onboard spare transceivers (form-factor-agnostic
        #: magazine; the catalog's standardized front-ends make slots
        #: interchangeable).
        self.onboard_spares = self.params.spare_capacity
        self.depot_trips = 0

    # -- primitive steps -----------------------------------------------------

    def _bundle_density(self, link: Link) -> int:
        bundle = self.fabric.bundles.bundle_of(link.cable.id)
        return bundle.density if bundle else 1

    def locate(self, link: Link, side: str):
        """Generator: vision scan to find the target port/transceiver."""
        unit = link.transceiver_at(side)
        found, seconds = self.perception.recognize(
            unit.model, self._bundle_density(link))
        yield from self.work(seconds)
        return found

    def grip(self, link: Link, side: str):
        """Generator: attempt to grip the pull tab, with retries."""
        params = self.params
        unit = link.transceiver_at(side)
        p_fail = min(0.9, params.grip_difficulty_weight
                     * unit.model.grip_difficulty)
        for _attempt in range(params.max_grip_attempts):
            yield from self.work(params.grip_attempt_seconds)
            if self.rng.random() >= p_fail:
                return True
        return False

    # -- operations --------------------------------------------------------------

    def reseat_side(self, link: Link, side: str):
        """Generator: full locate→grip→unplug→pause→insert for one end.

        Returns (success, note).  Physics (oxidation wipe, firmware
        reboot) is applied via the transceiver's own seat() so the same
        rules hold for every executor.
        """
        params = self.params
        found = yield from self.locate(link, side)
        if not found:
            return False, f"could not identify transceiver on side {side}"
        gripped = yield from self.grip(link, side)
        if not gripped:
            return False, f"could not grip transceiver on side {side}"
        unit = link.transceiver_at(side)
        unit.unseat()
        yield from self.work(params.unplug_seconds
                             + params.reseat_pause_seconds)
        unit.seat(self.sim.now, rng=self.rng)
        yield from self.work(params.insert_seconds)
        self.operations_done += 1
        return True, f"reseated side {side}"

    def reseat(self, link: Link):
        """Generator: reseat both ends (success requires both)."""
        notes = []
        for side in ("a", "b"):
            ok, note = yield from self.reseat_side(link, side)
            notes.append(note)
            if not ok:
                return False, "; ".join(notes)
        return True, "; ".join(notes)

    def extract(self, link: Link, side: str):
        """Generator: unplug one transceiver + cable for cleaning.

        Used when collaborating with the cleaning robot (§3.3.2: "the
        latter handles unplugging the transceiver from the switch and
        inserting the transceiver into the cleaning device").
        """
        found = yield from self.locate(link, side)
        if not found:
            return False
        gripped = yield from self.grip(link, side)
        if not gripped:
            return False
        link.transceiver_at(side).unseat()
        yield from self.work(self.params.unplug_seconds)
        return True

    def reinsert(self, link: Link, side: str):
        """Generator: return a transceiver to its port after cleaning."""
        link.transceiver_at(side).seat(self.sim.now, rng=self.rng)
        yield from self.work(self.params.insert_seconds)
        self.operations_done += 1

    def ensure_spare(self, depot_rack_id: str):
        """Generator: guarantee a spare is in the magazine.

        An empty magazine costs a depot round trip (travel + restock +
        travel back), which is the real latency price of carrying a
        finite spares magazine.  Robots whose scope cannot reach the
        depot are assumed to have an in-rack spares cache (no time
        cost).  Returns the extra seconds spent.
        """
        if self.onboard_spares > 0:
            return 0.0
        if not self.can_reach(depot_rack_id):
            self.onboard_spares = self.params.spare_capacity
            return 0.0
        origin = self.mobility.current_rack_id
        started = self.sim.now
        self.depot_trips += 1
        yield from self.travel_to(depot_rack_id)
        yield from self.work(self.params.depot_restock_seconds)
        self.onboard_spares = self.params.spare_capacity
        yield from self.travel_to(origin)
        return self.sim.now - started

    def consume_spare(self) -> None:
        """Take one spare from the magazine (after ensure_spare)."""
        if self.onboard_spares <= 0:
            raise ValueError(f"{self.id} has no onboard spares")
        self.onboard_spares -= 1
