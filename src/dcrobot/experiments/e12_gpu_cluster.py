"""E12 — The AI-cluster dilemma: goodput vs link failures.

Paper anchor: §1 — "a single network link failing ... changes the
resource availability per GPU, potentially causing significant fraction
of the GPU-cluster to go offline, which is costly.  However, providing a
spare network link for every link in a GPU cluster ... is simply
impractical."

A rail-optimized GPU cluster (no redundancy, by design) is run across a
link-failure-rate sweep with Level-0 vs Level-3 maintenance.  A server
contributes to training goodput only while *all* its rails are up.
Reported: mean healthy-server fraction (the goodput proxy) and its
worst dip.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import DAY, WorldConfig, build_world
from dcrobot.metrics.report import Table
from dcrobot.topology.gpu import build_gpu_cluster, healthy_server_fraction

EXPERIMENT_ID = "e12"
TITLE = "GPU-cluster goodput vs failure rate, with/without self-maintenance"
PAPER_ANCHOR = "§1: the AI-cluster redundancy dilemma"

_LEVELS = {"L0": AutomationLevel.L0_NO_AUTOMATION,
           "L0+spare": AutomationLevel.L0_NO_AUTOMATION,
           "L3": AutomationLevel.L3_HIGH_AUTOMATION}


def _trial(params: Dict, seed: int) -> Dict:
    """One rail-optimized cluster world, sampling healthy servers."""
    horizon_days = params["horizon_days"]
    world = build_world(WorldConfig(
        topology_builder=build_gpu_cluster,
        topology_kwargs={"servers": 16, "gpus_per_server": 4,
                         "spare_rails": params["spare_rails"]},
        horizon_days=horizon_days, seed=seed,
        failure_scale=params["scale"],
        level=_LEVELS[params["mode"]]))
    samples = []

    def sampler(sim=world.sim):
        while True:
            yield sim.timeout(1800.0)
            samples.append(healthy_server_fraction(world.topology))

    world.sim.process(sampler())
    world.sim.run(until=horizon_days * DAY)
    return {"mean_fraction": float(np.mean(samples)),
            "worst": float(np.min(samples))}


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    scales = (1.0, 4.0, 16.0)
    horizon_days = 10.0 if quick else 30.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["failure-rate scale", "L0 mean goodput", "L0 worst",
         "L0+spare rail mean", "L3 mean goodput", "L3 worst"],
        title="Healthy-server fraction in a rail-optimized cluster: "
              "robots vs hardware redundancy")

    param_sets = [
        {"label": f"{mode}@{scale:g}x", "mode": mode, "scale": scale,
         "spare_rails": spare, "seed": seed + int(scale),
         "horizon_days": horizon_days}
        for scale in scales
        for mode, spare in (("L0", 0), ("L0+spare", 1), ("L3", 0))
    ]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_key = {(group.params["scale"], group.params["mode"]): group
              for group in groups}

    series = {"L0": [], "L0+spare": [], "L3": []}
    for scale in scales:
        row = [f"{scale:g}x"]
        for mode in ("L0", "L0+spare", "L3"):
            group = by_key[(scale, mode)]
            mean_fraction = group.mean("mean_fraction")
            worst = group.mean("worst")
            series[mode].append((scale, mean_fraction))
            if mode == "L0+spare":
                row.append(f"{mean_fraction:.4f}")
            else:
                row.extend([f"{mean_fraction:.4f}", f"{worst:.3f}"])
        table.add_row(*row)

    result.add_table(table)
    # What the spare rail costs, that robots don't: 16 extra always-on
    # links' optics + an extra rail switch.
    from dcrobot.metrics.energy import TRANSCEIVER_WATTS
    from dcrobot.network.enums import FormFactor

    spare_watts = 16 * 2 * TRANSCEIVER_WATTS[FormFactor.OSFP]
    result.note(f"the spare rail burns {spare_watts:.0f} W of optics "
                f"continuously (plus a switch and 16 NICs) to buy what "
                f"the robot fleet buys with ~0.1% duty cycle — the §1 "
                f"cost/energy dilemma, priced")
    result.add_series("goodput_vs_rate_L0", series["L0"])
    result.add_series("goodput_vs_rate_L3", series["L3"])
    loss_l0 = 1.0 - series["L0"][-1][1]
    loss_l3 = 1.0 - series["L3"][-1][1]
    result.note(
        f"at the {scales[-1]:g}x rate, human maintenance loses "
        f"{100 * loss_l0:.1f}% of cluster goodput vs "
        f"{100 * loss_l3:.1f}% with self-maintenance — the robots "
        f"substitute for the per-link redundancy the paper calls "
        f"impractical")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
