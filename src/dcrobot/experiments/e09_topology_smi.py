"""E9 — A self-maintainability metric for network topologies.

Paper anchor: §4 Scalable network topologies — "perhaps we can create a
metric for self-maintainability of a network design?"

Four equal-degree fabrics — fat-tree, leaf–spine, Jellyfish, Xpander —
are scored with the SMI (structural metric, no simulation) and then run
under identical Level-3 robotic maintenance.  Reported: SMI factor
decomposition per topology and the achieved availability / MTTR, with
the rank correlation between SMI and availability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    WorldConfig,
    world_trial,
)
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table
from dcrobot.topology.fattree import build_fattree
from dcrobot.topology.jellyfish import build_jellyfish
from dcrobot.topology.leafspine import build_leafspine
from dcrobot.topology.smi import compute_smi
from dcrobot.topology.xpander import build_xpander

EXPERIMENT_ID = "e9"
TITLE = "Self-Maintainability Index across datacenter topologies"
PAPER_ANCHOR = "§4: 'a metric for self-maintainability of a network design?'"

_TOPOLOGIES = (
    ("fat-tree k=4", build_fattree, {"k": 4}),
    ("leaf-spine 8x4", build_leafspine,
     {"leaves": 8, "spines": 4, "uplinks_per_pair": 1}),
    ("jellyfish n=20 d=4", build_jellyfish,
     {"switches": 20, "degree": 4, "rack_stride": 8}),
    ("xpander d=4 L=4", build_xpander,
     {"degree": 4, "lift": 4, "rack_stride": 8}),
)


def _rank_correlation(xs, ys) -> float:
    """Spearman rank correlation (ties broken by order)."""
    def ranks(values):
        order = np.argsort(values)
        result = np.empty(len(values))
        result[order] = np.arange(len(values))
        return result
    rx, ry = ranks(np.asarray(xs)), ranks(np.asarray(ys))
    if rx.std() == 0 or ry.std() == 0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 15.0 if quick else 60.0
    failure_scale = 4.0

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    smi_table = Table(
        ["topology", "SMI", "reach", "occl.", "service.", "uniform.",
         "granul."],
        title="SMI factor decomposition (structural, no simulation)")
    sim_table = Table(
        ["topology", "links", "incidents", "ampl.", "p50 ttr",
         "availability"],
        title=f"Level-0 human maintenance, {horizon_days:.0f} days, "
              f"identical fault rates (cascade physics is where "
              f"maintainability bites)")

    param_sets = []
    smi_reports = {}
    for label, builder, kwargs in _TOPOLOGIES:
        topology = builder(rng=np.random.default_rng(seed + 1), **kwargs)
        smi_reports[label] = compute_smi(topology)
        param_sets.append({
            "label": label, "seed": seed,
            "config": WorldConfig(
                topology_builder=builder, topology_kwargs=kwargs,
                horizon_days=horizon_days, seed=seed,
                failure_scale=failure_scale,
                level=AutomationLevel.L0_NO_AUTOMATION)})
    groups = run_trials(EXPERIMENT_ID, world_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    smis, availabilities = [], []
    for group in groups:
        label = group.params["label"]
        report = smi_reports[label]
        factors = report.factors
        smi_table.add_row(label, f"{report.smi:.3f}",
                          f"{factors['reach']:.2f}",
                          f"{factors['occlusion']:.2f}",
                          f"{factors['serviceability']:.2f}",
                          f"{factors['uniformity']:.2f}",
                          f"{factors['granularity']:.2f}")

        summary = group.value
        stats = summary.repair_stats
        sim_table.add_row(label, summary.link_count,
                          summary.incidents,
                          f"{summary.amplification_factor:.2f}",
                          format_duration(stats.p50) if stats else "-",
                          f"{summary.availability_mean:.6f}")
        smis.append(report.smi)
        availabilities.append(summary.availability_mean)

    result.add_table(smi_table)
    result.add_table(sim_table)
    result.add_series("smi_vs_availability",
                      list(zip(smis, availabilities)))
    result.note(f"Spearman rank correlation SMI vs achieved "
                f"availability: "
                f"{_rank_correlation(smis, availabilities):.2f} "
                f"(4 topologies; treat as directional, not "
                f"statistical)")
    result.note("the decomposition is the deliverable: leaf-spine "
                "wins on serviceability (separable uplink fiber), "
                "fat-tree on granularity (per-pod trunks), and "
                "DAC-heavy intra-pod wiring is what drags "
                "serviceability down — §4's metric question, "
                "made concrete and computable")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
