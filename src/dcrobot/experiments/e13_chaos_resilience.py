"""E13 — Chaos-hardening the maintenance plane itself.

Paper anchor: §2/§4 — the maintenance plane's own actuators and sensors
fail: "robots will themselves fail", acknowledgements get lost, and
telemetry can drop out or lie.  A self-maintaining system must stay
live and safe when its repair machinery misbehaves.

Two controllers run across a sweep of maintenance-plane fault rates
(robot stall/crash/partial completion, telemetry drop/dup/corrupt, ack
loss/delay, all scaled together):

* **naive** — the legacy trusting loop: no work-order timeout, no
  retry, telemetry mutes never expire.
* **hardened** — per-order timeouts, bounded retry with jittered
  exponential backoff, idempotent re-dispatch (health re-checked before
  retrying, so a lost ack never causes a double repair), a circuit
  breaker benching a repeatedly failing fleet, and a telemetry mute TTL.

Both run under the invariant-checking
:class:`~dcrobot.chaos.safety.SafetyMonitor`.  Reported: the fraction
of incidents resolved-or-escalated (vs silently stuck), leaked work
orders, and invariant violations, as curves over the fault-rate scale.
"""

from __future__ import annotations

from typing import Dict, Optional

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.controller import ControllerConfig
from dcrobot.core.resilience import ResilienceConfig
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    DAY,
    WorldConfig,
    run_world,
    summarize_world,
)
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e13"
TITLE = "Chaos resilience: hardened vs naive maintenance control plane"
PAPER_ANCHOR = "§2/§4: the maintenance plane's own failures"

MODES = ("naive", "hardened")


def _world_config(params: Dict, seed: int) -> WorldConfig:
    chaos = ChaosConfig.moderate().scaled(params["chaos_scale"])
    hardened = params["mode"] == "hardened"
    return WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        failure_scale=params["failure_scale"],
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=chaos if chaos.any_enabled else None,
        safety=True,
        # Anything older than the human-order timeout is truly leaked,
        # not merely a slow ticket.
        stuck_after_seconds=5.0 * DAY,
        mute_ttl_seconds=2.0 * DAY if hardened else None,
        observe=bool(params.get("observe", False)),
        controller_config=ControllerConfig(
            resilience=ResilienceConfig() if hardened else None))


def _trial(params: Dict, seed: int) -> Dict:
    """One chaos world; returns the resilience scoreboard."""
    summary = summarize_world(run_world(_world_config(params, seed)))
    return {
        "incidents": summary.incidents,
        "closed": summary.closed_incidents,
        "escalated": summary.unresolved_incidents,
        "open": summary.open_incidents,
        "resolution_rate": summary.mature_resolution_rate,
        "raw_resolution_rate": summary.resolved_or_escalated_rate,
        "stuck_orders": summary.stuck_orders,
        "violations": summary.invariant_violations,
        "timeouts": summary.work_order_timeouts,
        "retries": summary.work_order_retries,
        "idempotent_skips": summary.idempotent_skips,
        "breaker_trips": summary.breaker_trips,
        "chaos_faults": sum(summary.chaos_fault_counts.values()),
        "trace": summary.trace,
        "metrics": summary.metrics,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None,
        observe: bool = False) -> ExperimentResult:
    scales = (0.0, 1.0, 2.0, 4.0)
    horizon_days = 20.0 if quick else 45.0
    failure_scale = 4.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    param_sets = [
        {"label": f"{mode}@{scale:g}x", "mode": mode,
         "chaos_scale": scale, "failure_scale": failure_scale,
         "horizon_days": horizon_days}
        for scale in scales for mode in MODES
    ]
    if observe:
        # One designated trial point carries the trace/metrics export:
        # the hardened controller at the 1x chaos operating point.
        for params in param_sets:
            if params["mode"] == "hardened" \
                    and params["chaos_scale"] == 1.0:
                params["observe"] = True
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_key = {(group.params["chaos_scale"], group.params["mode"]): group
              for group in groups}
    if observe:
        observed = by_key[(1.0, "hardened")].value
        result.trace = observed.get("trace")
        result.metrics = observed.get("metrics")

    table = Table(
        ["chaos scale", "mode", "incidents", "concluded %",
         "stuck orders", "invariant violations", "timeouts", "retries"],
        title="Maintenance-plane fault tolerance: naive vs hardened "
              "controller")
    series = {mode: {"resolution": [], "violations": [], "stuck": []}
              for mode in MODES}
    for scale in scales:
        for mode in MODES:
            group = by_key[(scale, mode)]
            rate = group.mean("resolution_rate")
            stuck = group.mean("stuck_orders")
            violations = group.mean("violations")
            series[mode]["resolution"].append((scale, rate))
            series[mode]["violations"].append((scale, violations))
            series[mode]["stuck"].append((scale, stuck))
            table.add_row(
                f"{scale:g}x", mode,
                f"{group.mean('incidents'):.1f}",
                f"{100 * rate:.1f}",
                f"{stuck:.1f}",
                f"{violations:.1f}",
                f"{group.mean('timeouts'):.1f}",
                f"{group.mean('retries'):.1f}")
    result.add_table(table)

    for mode in MODES:
        result.add_series(f"resolution_vs_chaos_{mode}",
                          series[mode]["resolution"])
        result.add_series(f"violations_vs_chaos_{mode}",
                          series[mode]["violations"])
        result.add_series(f"stuck_orders_vs_chaos_{mode}",
                          series[mode]["stuck"])

    worst = scales[-1]
    naive = by_key[(worst, "naive")]
    hardened = by_key[(worst, "hardened")]
    result.note(
        f"at {worst:g}x chaos the naive controller leaves "
        f"{naive.mean('stuck_orders'):.1f} work orders stuck and "
        f"resolves {100 * naive.mean('resolution_rate'):.1f}% of "
        f"incidents; the hardened controller resolves "
        f"{100 * hardened.mean('resolution_rate'):.1f}% with "
        f"{hardened.mean('stuck_orders'):.1f} stuck "
        f"({hardened.mean('timeouts'):.1f} timeouts recovered, "
        f"{hardened.mean('idempotent_skips'):.1f} double-repairs "
        f"avoided by the idempotency guard)")
    result.note(
        f"invariant violations at {worst:g}x chaos: naive "
        f"{naive.mean('violations'):.1f} vs hardened "
        f"{hardened.mean('violations'):.1f} per run "
        f"(safety monitor: maintenance-orphan, double-owner, "
        f"escalation-regression, drain-orphan)")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
