"""The shared experiment engine: build a world, run it, measure it.

Every closed-loop experiment (E1, E4–E7, E11, E12) assembles the same
stack — topology, environment, health, dust, injector, telemetry,
executors, controller — varying only the configuration.  This module
owns that assembly so experiments stay declarative.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from dcrobot.chaos.config import ChaosConfig
from dcrobot.chaos.engine import ChaosEngine
from dcrobot.chaos.safety import SafetyMonitor
from dcrobot.core.actions import RepairAction
from dcrobot.core.automation import AutomationLevel, spec_for
from dcrobot.core.controller import ControllerConfig, MaintenanceController
from dcrobot.core.escalation import EscalationConfig, EscalationLadder
from dcrobot.core.journal import WriteAheadJournal
from dcrobot.core.leadership import FencingGuard, LeaseConfig, LeaseCoordinator
from dcrobot.core.recovery import ControllerSupervisor
from dcrobot.core.policy import (
    NullPolicy,
    ProactivePolicy,
    ReactivePolicy,
)
from dcrobot.core.impact import CongestionGate, ImpactConfig
from dcrobot.core.planner import TwinPlanner, TwinPlannerConfig
from dcrobot.core.repairs import (
    ASSISTED_TECHNICIAN_SKILL,
    RepairPhysics,
)
from dcrobot.core.scheduler import ImpactAwareScheduler, SchedulerConfig
from dcrobot.failures.cascade import CascadeModel
from dcrobot.failures.aging import OxidationAging
from dcrobot.failures.dust import DustProcess
from dcrobot.failures.environment import Environment
from dcrobot.failures.health import HealthModel, HealthParams
from dcrobot.failures.injector import FailureRates, FaultInjector
from dcrobot.humans.workforce import TechnicianParams, TechnicianPool
from dcrobot.metrics.amplification import (
    AmplificationStats,
    amplification_from_outcomes,
)
from dcrobot.metrics.availability import (
    AvailabilitySummary,
    link_availability,
)
from dcrobot.metrics.cost import CostBreakdown, CostModel
from dcrobot.metrics.mttr import (
    RepairTimeStats,
    repair_time_stats,
)
from dcrobot.network.enums import FormFactor
from dcrobot.obs import NULL_OBS, observability_for_seed
from dcrobot.obs.export import metrics_snapshot
from dcrobot.robots.fleet import FleetConfig, RobotFleet
from dcrobot.robots.health import RobotHealthModel, RobotHealthParams
from dcrobot.sim.batch import BatchTicker
from dcrobot.sim.engine import Simulation
from dcrobot.sim.rng import RandomStreams
from dcrobot.telemetry.detectors import DetectorParams
from dcrobot.telemetry.monitor import TelemetryMonitor
from dcrobot.topology.base import SwitchRole, Topology
from dcrobot.topology.fattree import build_fattree
from dcrobot.topology.smi import SmiTracker
from dcrobot.traffic.driver import TrafficDriver
from dcrobot.traffic.state import TrafficState

DAY = 86400.0


@dataclasses.dataclass
class WorldConfig:
    """Everything that defines one experiment run."""

    #: Builds the topology; receives an rng.
    topology_builder: Callable[..., Topology] = build_fattree
    topology_kwargs: Dict = dataclasses.field(
        default_factory=lambda: {"k": 4})
    horizon_days: float = 30.0
    seed: int = 0
    #: Fault-rate multiplier over FailureRates defaults.
    failure_scale: float = 1.0
    rates: Optional[FailureRates] = None
    #: Replay this exact fault campaign instead of live injection
    #: (fabric link ids must match, i.e. same topology seed).
    fault_trace: Optional[object] = None
    dust_rate_per_day: float = 0.004
    aging_rate_per_day: float = 0.002
    level: AutomationLevel = AutomationLevel.L0_NO_AUTOMATION
    technicians: int = 4
    fleet_config: Optional[FleetConfig] = None
    #: "reactive" | "proactive" | "none", or a policy factory.
    policy: object = "reactive"
    proactive_trigger: int = 2
    health_tick_seconds: float = 300.0
    monitor_poll_seconds: float = 300.0
    detector_params: Optional[DetectorParams] = None
    escalation: Optional[EscalationConfig] = None
    controller_config: Optional[ControllerConfig] = None
    scheduler_config: Optional[SchedulerConfig] = None
    spare_transceivers: int = 500
    spare_cables: int = 200
    #: Maintenance-plane fault injection; ``None`` = no chaos.
    chaos: Optional[ChaosConfig] = None
    #: Telemetry mute TTL (lets dropped reports re-fire); ``None``
    #: keeps the legacy mute-until-unmuted behaviour.
    mute_ttl_seconds: Optional[float] = None
    #: Attach the invariant-checking safety monitor.
    safety: bool = False
    safety_check_interval_seconds: float = 300.0
    #: A claim older than this is a leaked ("stuck") work order.
    stuck_after_seconds: float = 7.0 * DAY
    #: Give the controller a write-ahead journal (crash recoverability).
    journal: bool = False
    #: Lease-based active/standby failover with fencing tokens; implies
    #: a supervisor that promotes a successor when the lease expires.
    leadership: bool = False
    lease_config: Optional[LeaseConfig] = None
    #: Attach the control-plane chaos injector (crash/pause/restart,
    #: rates from the chaos config).  Requires ``chaos``.
    controller_chaos: bool = False
    controller_chaos_check_seconds: float = 3600.0
    #: Force a ControllerSupervisor even without journal/leadership —
    #: the journal-less cold-restart baseline still needs the restart
    #: machinery it is being measured without.
    supervise: bool = False
    #: Attach the observability layer (incident-lifecycle tracing +
    #: metrics registry); off by default so trials pay nothing for it.
    observe: bool = False
    #: Drive the periodic fleet sweeps (health, telemetry, dust, aging)
    #: through the columnar batch kernels instead of the per-link
    #: object loops.  Bit-identical results either way; the kernels are
    #: what make hall-scale fabrics tractable (E15).
    vectorized: bool = True
    #: With ``vectorized``, multiplex all periodic sweeps through one
    #: BatchTicker process (one heap event per boundary) instead of
    #: four independent generator processes.
    coalesce_ticks: bool = True
    #: Attach the columnar traffic engine (S17) and its window driver:
    #: synthetic traffic is offered over the ToR endpoints, repairs
    #: drain modelled traffic, and per-link utilization accumulates in
    #: fabric-state columns.  Off by default — zero cost, and every
    #: pre-traffic world is byte-identical.
    traffic: bool = False
    traffic_window_seconds: float = 1800.0
    traffic_flows_per_window: int = 500
    #: Accounting period per offered window (None = the cadence).
    traffic_sample_seconds: Optional[float] = None
    #: Traffic-matrix shape (see :mod:`dcrobot.traffic.patterns`);
    #: ``None`` = uniform.
    traffic_pattern: Optional[object] = None
    #: Time-varying ``(flow_count, pattern)`` schedule override.
    traffic_schedule: Optional[Callable] = None
    #: ECMP path-table width (equal-cost paths kept per pair).
    traffic_max_equal_paths: int = 8
    #: Congestion-gate maintenance on projected ECMP-group utilization
    #: (requires ``traffic``); ``None`` = congestion-blind scheduling.
    impact: Optional[ImpactConfig] = None
    #: Twin-guided plan ranking (requires ``traffic``): the controller
    #: forks the world per candidate proactive repair and dispatches
    #: the predicted-best plan each policy cycle (S18).  ``None`` =
    #: first-come dispatch.
    twin_planner: Optional[TwinPlannerConfig] = None
    #: Per-robot health model (wear, batteries, mid-order faults) plus
    #: heartbeats and — when ``self_healing`` is on — the fleet
    #: watchdog/re-dispatch/quarantine machinery (S19).  ``None`` keeps
    #: the legacy immortal fleet.
    robot_health: Optional[RobotHealthParams] = None
    #: -- campus composition (S20) ------------------------------------
    #: Number of halls.  1 keeps the classic single-hall world and is
    #: what :func:`build_world` assembles; >1 describes a campus of
    #: independent hall shards that :class:`dcrobot.shard.CampusWorld`
    #: composes behind this same config surface.  ``build_world``
    #: itself always builds exactly one hall — the campus fields are
    #: read by the shard layer, never here, so a ``halls=1`` campus is
    #: bit-identical to the legacy world by construction.
    halls: int = 1
    #: Per-hall field overrides (``{hall_id: {field: value}}``), e.g.
    #: chaos or leadership on one hall only.  Ignored at halls == 1.
    hall_overrides: Optional[Dict[int, Dict]] = None
    #: Cross-hall boundary-shard configuration (a
    #: :class:`dcrobot.shard.BoundaryConfig`); ``None`` uses defaults.
    #: Typed loosely to keep the runner free of shard imports.
    boundary: Optional[object] = None
    #: -- service plane (S21) -----------------------------------------
    #: A :class:`dcrobot.service.ServiceConfig` when this world is
    #: hosted behind :func:`dcrobot.service.serve_world`; ``None``
    #: keeps the classic batch run.  Ignored by ``build_world`` /
    #: ``run_world`` themselves (serving never changes sim outcomes),
    #: read only by the service layer.  Typed loosely to keep the
    #: runner free of service imports.
    service: Optional[object] = None

    @property
    def horizon_seconds(self) -> float:
        return self.horizon_days * DAY


@dataclasses.dataclass
class RunResult:
    """The fully-run world plus measurement helpers."""

    config: WorldConfig
    topology: Topology
    sim: Simulation
    environment: Environment
    health: HealthModel
    cascade: CascadeModel
    injector: FaultInjector
    monitor: TelemetryMonitor
    controller: MaintenanceController
    humans: Optional[TechnicianPool]
    fleet: Optional[RobotFleet]
    spares_consumed_transceivers: int = 0
    spares_consumed_cables: int = 0
    chaos_engine: Optional[ChaosEngine] = None
    safety: Optional[SafetyMonitor] = None
    supervisor: Optional[ControllerSupervisor] = None
    journal: Optional[WriteAheadJournal] = None
    coordinator: Optional[LeaseCoordinator] = None
    #: The observability bundle (``NULL_OBS`` unless config.observe).
    obs: object = NULL_OBS
    #: Columnar traffic engine + driver (None unless config.traffic).
    traffic: Optional[TrafficState] = None
    traffic_driver: Optional[TrafficDriver] = None
    #: Congestion gate (None unless config.impact with traffic).
    impact_gate: Optional[CongestionGate] = None
    #: Twin planner (None unless config.twin_planner with traffic).
    twin_planner: Optional[TwinPlanner] = None

    @property
    def fabric(self):
        return self.topology.fabric

    @property
    def live_controller(self) -> MaintenanceController:
        """The controller currently in charge (post-failover aware)."""
        if self.supervisor is not None:
            return self.supervisor.controller
        return self.controller

    @property
    def horizon_seconds(self) -> float:
        return self.config.horizon_seconds

    # -- measurements ---------------------------------------------------------

    def availability(self) -> AvailabilitySummary:
        return link_availability(self.fabric, 0.0, self.horizon_seconds)

    def repair_stats(self) -> Optional[RepairTimeStats]:
        times = self.live_controller.repair_times()
        return repair_time_stats(times) if times else None

    def amplification(self) -> AmplificationStats:
        outcomes = []
        if self.humans is not None:
            outcomes.extend(self.humans.outcomes)
        if self.fleet is not None:
            outcomes.extend(self.fleet.outcomes)
        return amplification_from_outcomes(outcomes)

    def attribution(self):
        """Root-cause attribution of all incidents (see
        :mod:`dcrobot.metrics.attribution`)."""
        from dcrobot.metrics.attribution import (
            attribute_incidents,
            disturbed_links_from_cascade,
        )

        controller = self.live_controller
        incidents = (controller.closed_incidents
                     + controller.unresolved_incidents
                     + list(controller.open_incidents.values()))
        return attribute_incidents(
            incidents, self.injector.log,
            disturbed_links_from_cascade(self.cascade.reports))

    def robot_busy_seconds(self) -> float:
        if self.fleet is None:
            return 0.0
        units = self.fleet.manipulators + self.fleet.cleaners
        return sum(unit.busy_seconds for unit in units)

    def robot_count(self) -> int:
        if self.fleet is None:
            return 0
        return len(self.fleet.manipulators) + len(self.fleet.cleaners)

    def cost(self, model: Optional[CostModel] = None) -> CostBreakdown:
        model = model or CostModel()
        return model.compute(
            horizon_seconds=self.horizon_seconds,
            technician_labor_seconds=(
                self.humans.labor_seconds if self.humans else 0.0),
            supervision_seconds=self.live_controller.supervision_seconds,
            robot_count=self.robot_count(),
            robot_busy_seconds=self.robot_busy_seconds(),
            transceivers_consumed=self.spares_consumed_transceivers,
            cables_consumed=self.spares_consumed_cables)


def _make_policy(config: WorldConfig, topology: Topology):
    if callable(config.policy):
        return config.policy(topology.fabric)
    if config.policy == "none":
        return NullPolicy(topology.fabric)
    if config.policy == "reactive":
        return ReactivePolicy(topology.fabric)
    if config.policy == "proactive":
        return ProactivePolicy(topology.fabric,
                               trigger_count=config.proactive_trigger)
    raise ValueError(f"unknown policy {config.policy!r}")


def build_world(config: WorldConfig) -> RunResult:
    """Assemble (but do not run) the full experiment stack."""
    if config.halls != 1:
        raise ValueError(
            f"build_world assembles exactly one hall; compose "
            f"halls={config.halls} with dcrobot.shard.CampusWorld")
    topology = config.topology_builder(
        rng=np.random.default_rng(config.seed + 1),
        **config.topology_kwargs)
    fabric = topology.fabric
    fabric.stock_spares(
        {factor: config.spare_transceivers for factor in FormFactor},
        cables=config.spare_cables)

    sim = Simulation()
    obs = NULL_OBS
    if config.observe:
        obs = observability_for_seed(config.seed,
                                     clock=lambda: sim.now)
        obs.tracer.open_root("world", seed=config.seed,
                             horizon_days=config.horizon_days,
                             level=config.level.name)
    environment = Environment()
    health = HealthModel(
        fabric, environment,
        params=HealthParams(tick_seconds=config.health_tick_seconds),
        rng=np.random.default_rng(config.seed + 2))
    cascade = CascadeModel(fabric, health, environment,
                           rng=np.random.default_rng(config.seed + 3))
    physics = RepairPhysics(fabric, health, cascade,
                            rng=np.random.default_rng(config.seed + 4))
    rates = (config.rates or FailureRates()).scaled(config.failure_scale)
    injector = FaultInjector(fabric, health, rates=rates,
                             rng=np.random.default_rng(config.seed + 5))
    dust = DustProcess(fabric, health,
                       mean_rate_per_day=config.dust_rate_per_day,
                       rng=np.random.default_rng(config.seed + 6))
    aging = OxidationAging(fabric, health,
                           mean_rate_per_day=config.aging_rate_per_day,
                           rng=np.random.default_rng(config.seed + 9))
    monitor = TelemetryMonitor(fabric, params=config.detector_params,
                               poll_seconds=config.monitor_poll_seconds,
                               mute_ttl_seconds=config.mute_ttl_seconds,
                               obs=obs)

    spec = spec_for(config.level)
    humans = None
    if config.level is not AutomationLevel.L4_FULL_AUTOMATION:
        params = TechnicianParams()
        if spec.operator_assist_devices:
            params = TechnicianParams(
                skill=ASSISTED_TECHNICIAN_SKILL,
                work_seconds={**params.work_seconds,
                              RepairAction.CLEAN: 15.0 * 60})
        humans = TechnicianPool(
            sim, fabric, health, physics, count=config.technicians,
            params=params, rng=np.random.default_rng(config.seed + 7))

    fleet = None
    if spec.robot_actions:
        fleet_config = config.fleet_config or FleetConfig()
        if config.level is AutomationLevel.L4_FULL_AUTOMATION:
            fleet_config = dataclasses.replace(
                fleet_config, advanced_capabilities=True)
        fleet = RobotFleet(sim, fabric, health, physics,
                           config=fleet_config,
                           rng=np.random.default_rng(config.seed + 8))

    chaos_engine = None
    controller_humans, controller_fleet = humans, fleet
    if config.chaos is not None:
        chaos_engine = ChaosEngine(sim, config.chaos,
                                   RandomStreams(config.seed), obs=obs)
        chaos_engine.attach_monitor(monitor)
        if fleet is not None:
            chaos_engine.attach_fleet(fleet)
            controller_fleet = chaos_engine.wrap_executor(fleet)
        if humans is not None:
            controller_humans = chaos_engine.wrap_executor(humans)

    if fleet is not None and config.robot_health is not None:
        # Robots wear out, run on batteries, and die mid-order; their
        # heartbeats land in the telemetry monitor so losses are
        # detected, not assumed (S19).
        fleet.attach_health(
            RobotHealthModel(config.robot_health,
                             rng=np.random.default_rng(config.seed + 14)),
            monitor=monitor, obs=obs)
        if humans is not None:
            fleet.rescue = humans.rescue_robot

    journal = WriteAheadJournal() if config.journal else None
    coordinator = None
    if config.leadership:
        coordinator = LeaseCoordinator(config.lease_config, journal,
                                       obs=obs)
        # Fencing guards live at the *real* executors (not the chaos
        # wrappers): physical intake is where split-brain must stop.
        for executor in (fleet, humans):
            if executor is not None:
                executor.fence = FencingGuard(obs=obs)

    traffic = traffic_driver = impact_gate = None
    if config.traffic:
        endpoints = (topology.switches(SwitchRole.TOR)
                     or topology.switches())
        traffic = TrafficState(
            fabric, endpoints,
            rng=np.random.default_rng(config.seed + 11),
            max_equal_paths=config.traffic_max_equal_paths, obs=obs)
        traffic_driver = TrafficDriver(
            traffic, rng=np.random.default_rng(config.seed + 12),
            window_seconds=config.traffic_window_seconds,
            flows_per_window=config.traffic_flows_per_window,
            pattern=config.traffic_pattern,
            schedule=config.traffic_schedule,
            sample_seconds=config.traffic_sample_seconds)
        if config.impact is not None:
            impact_gate = CongestionGate(traffic, config.impact,
                                         obs=obs)

    twin_planner = None
    if config.twin_planner is not None:
        if traffic is None:
            raise ValueError("twin_planner requires traffic")
        twin_planner = TwinPlanner(
            fabric, traffic, traffic_driver,
            streams=RandomStreams(config.seed + 13),
            smi_tracker=SmiTracker(topology),
            config=config.twin_planner, fleet=fleet)

    ladder = EscalationLadder(config.escalation)
    scheduler = ImpactAwareScheduler(config=config.scheduler_config,
                                     traffic=traffic)
    policy = _make_policy(config, topology)
    controller_config = config.controller_config or ControllerConfig()

    def controller_factory(node_id: str) -> MaintenanceController:
        """Build a controller on the shared infrastructure.  Successors
        (standby promotion, restart) come from the same factory."""
        return MaintenanceController(
            sim, fabric, health, monitor,
            policy=policy, ladder=ladder, scheduler=scheduler,
            level=config.level, humans=controller_humans,
            fleet=controller_fleet,
            config=controller_config,
            rng=np.random.default_rng(config.seed + 10),
            journal=journal, node_id=node_id, obs=obs,
            impact_gate=impact_gate, planner=twin_planner)

    controller = controller_factory("primary")

    safety = None
    if config.safety:
        executors = [executor for executor in (fleet, humans)
                     if executor is not None]
        safety = SafetyMonitor(
            sim, controller, executors=executors,
            check_interval_seconds=config.safety_check_interval_seconds,
            stuck_after_seconds=config.stuck_after_seconds).attach()

    supervisor = None
    if (config.journal or config.leadership
            or config.controller_chaos or config.supervise):
        supervisor = ControllerSupervisor(
            sim, controller, controller_factory,
            coordinator=coordinator, journal=journal, safety=safety)

    if config.vectorized and config.coalesce_ticks:
        # One process, one heap event per boundary.  Registration
        # order and first-fire times mirror the legacy processes:
        # health ticks immediately on start, the rest sleep one period
        # first.
        ticker = BatchTicker(sim)
        ticker.add(health.tick_all, config.health_tick_seconds,
                   first_at=sim.now)
        ticker.add(monitor.poll_all, config.monitor_poll_seconds)
        ticker.add(dust.step_all, dust.tick_seconds)
        ticker.add(aging.step_all, aging.tick_seconds)
        sim.process(ticker.run(sim))
    elif config.vectorized:
        sim.process(health.run_vectorized(sim))
        sim.process(monitor.run_vectorized(sim))
        sim.process(dust.run_vectorized(sim))
        sim.process(aging.run_vectorized(sim))
    else:
        sim.process(health.run(sim))
        sim.process(monitor.run(sim))
        sim.process(dust.run(sim))
        sim.process(aging.run(sim))
    if traffic_driver is not None:
        sim.process(traffic_driver.run(sim))
    if config.fault_trace is not None:
        sim.process(config.fault_trace.replay(sim, injector))
    else:
        injector.start(sim)
    controller.start()
    if supervisor is not None:
        supervisor.start()
    if config.controller_chaos:
        if chaos_engine is None or supervisor is None:
            raise ValueError(
                "controller_chaos requires a chaos config")
        chaos_engine.attach_supervisor(
            supervisor,
            check_seconds=config.controller_chaos_check_seconds)

    return RunResult(config=config, topology=topology, sim=sim,
                     environment=environment, health=health,
                     cascade=cascade, injector=injector,
                     monitor=monitor, controller=controller,
                     humans=humans, fleet=fleet,
                     chaos_engine=chaos_engine, safety=safety,
                     supervisor=supervisor, journal=journal,
                     coordinator=coordinator, obs=obs,
                     traffic=traffic, traffic_driver=traffic_driver,
                     impact_gate=impact_gate,
                     twin_planner=twin_planner)


def run_world(config: WorldConfig) -> RunResult:
    """Build the stack and run it to the horizon."""
    result = build_world(config)
    initial_transceivers = sum(
        result.fabric.spare_transceivers.values())
    initial_cables = result.fabric.spare_cables
    result.sim.run(until=config.horizon_seconds)
    result.spares_consumed_transceivers = (
        initial_transceivers
        - sum(result.fabric.spare_transceivers.values()))
    result.spares_consumed_cables = (initial_cables
                                     - result.fabric.spare_cables)
    return result


# -- picklable trial layer (the parallel executor's world unit) ---------------


@dataclasses.dataclass
class WorldSummary:
    """The measurements of one finished world, as plain picklable data.

    A :class:`RunResult` holds live simulation state (generator
    processes) and cannot cross a process boundary; this is the
    summary a worker sends back instead.  It carries everything the
    closed-loop experiments (E1, E5–E7, E9, E11) report on.
    """

    seed: int
    horizon_seconds: float
    incidents: int
    closed_incidents: int
    unresolved_incidents: int
    open_incidents: int
    repair_times: list
    availability_mean: float
    availability_nines: float
    amplification_factor: float
    labor_seconds: float
    supervision_seconds: float
    robot_count: int
    robot_busy_seconds: float
    proactive_ops: int
    human_outcome_count: int
    cost_total_usd: float
    spares_consumed_transceivers: int
    spares_consumed_cables: int
    link_count: int
    #: -- chaos / resilience observables (zero when chaos is off) -----
    chaos_fault_counts: Dict[str, int] = dataclasses.field(
        default_factory=dict)
    invariant_violations: int = 0
    violations_by_kind: Dict[str, int] = dataclasses.field(
        default_factory=dict)
    stuck_orders: int = 0
    work_order_timeouts: int = 0
    work_order_retries: int = 0
    idempotent_skips: int = 0
    late_acks: int = 0
    degraded_dispatches: int = 0
    breaker_trips: int = 0
    #: Incidents opened early enough (>= 4 days before the horizon —
    #: one full human ticket cycle) that a live controller must have
    #: concluded them by run end: the fair denominator for the
    #: resolution-rate acceptance metric.
    mature_incidents: int = 0
    mature_concluded: int = 0
    #: -- crash-recovery observables (zero without a supervisor) ------
    controller_crashes: int = 0
    controller_partitions: int = 0
    failovers: int = 0
    recoveries: int = 0
    adopted_orders: int = 0
    fenced_rejections: int = 0
    journal_records: int = 0
    journal_snapshots: int = 0
    recovered_incidents: int = 0
    #: Links muted by telemetry that no live incident, claim, or
    #: unresolvable case accounts for: repairs silently *lost* by a
    #: controller death (the journal-less baseline's failure mode).
    orphaned_muted_links: int = 0
    #: -- robot fleet health observables (defaults when no health
    #: model is attached) --------------------------------------------
    robot_deaths: int = 0
    robot_heartbeat_losses: int = 0
    robot_redispatches: int = 0
    robot_quarantines: int = 0
    robot_zombie_refusals: int = 0
    #: Fencing-violation tripwire; must stay zero.
    robot_zombie_accepted: int = 0
    robot_repairs: int = 0
    robot_human_rescues: int = 0
    robot_spares_left: int = 0
    #: Fleet work orders whose completion event never fired (a dead
    #: unit's silently hung order — the naive fleet's failure mode).
    robot_orphaned_orders: int = 0
    robot_quorum_escalations: int = 0
    fleet_healthy_fraction: float = 1.0
    #: -- observability exports (None unless config.observe) ----------
    #: Exported span dicts (plain data, picklable across workers).
    trace: Optional[list] = None
    #: Exported metrics snapshot (see obs.export.metrics_snapshot).
    metrics: Optional[dict] = None
    #: -- campus/shard fields (S20; legacy single-hall defaults) ------
    #: Which hall shard produced this summary (0 for a lone world).
    hall: int = 0
    #: Total halls in the world this summary belongs to.
    halls: int = 1
    #: Final fencing token of this hall's lease coordinator (0 when
    #: leadership is off); the federation's epoch registry reads it.
    fencing_token: int = 0

    @property
    def resolved_or_escalated_rate(self) -> float:
        """Fraction of incidents either verified-fixed or handed to a
        human — i.e. *not* silently stuck."""
        if self.incidents == 0:
            return 1.0
        return (self.closed_incidents
                + self.unresolved_incidents) / self.incidents

    @property
    def mature_resolution_rate(self) -> float:
        """Resolved-or-escalated rate over mature incidents only
        (excludes ones still legitimately in flight at the horizon)."""
        if self.mature_incidents == 0:
            return 1.0
        return self.mature_concluded / self.mature_incidents

    @property
    def repair_stats(self) -> Optional[RepairTimeStats]:
        if not self.repair_times:
            return None
        return repair_time_stats(self.repair_times)

    @property
    def tech_hours(self) -> float:
        return (self.labor_seconds + self.supervision_seconds) / 3600.0

    @property
    def robot_utilization_pct(self) -> float:
        capacity = self.robot_count * self.horizon_seconds
        return 100 * self.robot_busy_seconds / capacity if capacity \
            else 0.0


def _orphaned_muted_links(result: RunResult, controller) -> int:
    """Muted links the live controller no longer knows anything about.

    The monitor mutes a link while an incident is being worked so
    detections do not double-fire.  A live controller always unmutes on
    close (or deliberately leaves unresolvable links muted).  When a
    controller dies without a journal, its in-flight incidents vanish —
    and their links stay muted forever, invisible to redetection.  This
    counts those silently-lost repairs.
    """
    if result.monitor is None:
        return 0
    known = set(controller.open_incidents)
    known.update(controller.active_orders)
    known.update(incident.link_id
                 for incident in controller.unresolved_incidents)
    return len(set(result.monitor._muted) - known)


def summarize_world(result: RunResult) -> WorldSummary:
    """Condense a run world into its :class:`WorldSummary`."""
    controller = result.live_controller
    availability = result.availability()
    amplification = result.amplification()
    cutoff = result.horizon_seconds - 4.0 * DAY
    concluded = (controller.closed_incidents
                 + controller.unresolved_incidents)
    mature_concluded = sum(1 for incident in concluded
                           if incident.opened_at <= cutoff)
    mature_open = sum(1 for incident
                      in controller.open_incidents.values()
                      if incident.opened_at <= cutoff)
    return WorldSummary(
        seed=result.config.seed,
        horizon_seconds=result.horizon_seconds,
        incidents=(len(controller.closed_incidents)
                   + len(controller.unresolved_incidents)
                   + len(controller.open_incidents)),
        closed_incidents=len(controller.closed_incidents),
        unresolved_incidents=len(controller.unresolved_incidents),
        open_incidents=len(controller.open_incidents),
        repair_times=list(controller.repair_times()),
        availability_mean=availability.mean,
        availability_nines=availability.nines,
        amplification_factor=amplification.amplification_factor,
        labor_seconds=(result.humans.labor_seconds
                       if result.humans else 0.0),
        supervision_seconds=controller.supervision_seconds,
        robot_count=result.robot_count(),
        robot_busy_seconds=result.robot_busy_seconds(),
        proactive_ops=len(controller.proactive_outcomes),
        human_outcome_count=(len(result.humans.outcomes)
                             if result.humans else 0),
        cost_total_usd=result.cost().total_usd,
        spares_consumed_transceivers=(
            result.spares_consumed_transceivers),
        spares_consumed_cables=result.spares_consumed_cables,
        link_count=result.topology.link_count,
        chaos_fault_counts=(result.chaos_engine.summary()
                            if result.chaos_engine else {}),
        invariant_violations=(len(result.safety.violations)
                              if result.safety else 0),
        violations_by_kind=(result.safety.report().by_kind
                            if result.safety else {}),
        stuck_orders=(len(result.safety.stuck_orders())
                      if result.safety else 0),
        work_order_timeouts=controller.timeout_count,
        work_order_retries=controller.retry_count,
        idempotent_skips=controller.idempotent_skips,
        late_acks=controller.late_ack_count,
        degraded_dispatches=controller.degraded_dispatches,
        breaker_trips=(controller.fleet_breaker.trips
                       if controller.fleet_breaker else 0),
        mature_incidents=mature_concluded + mature_open,
        mature_concluded=mature_concluded,
        controller_crashes=(result.supervisor.crashes
                            if result.supervisor else 0),
        controller_partitions=(result.supervisor.partitions
                               if result.supervisor else 0),
        failovers=(result.supervisor.failovers
                   if result.supervisor else 0),
        recoveries=(result.supervisor.recoveries
                    if result.supervisor else 0),
        adopted_orders=(result.supervisor.adopted_order_count
                        if result.supervisor else 0),
        fenced_rejections=sum(
            len(executor.fence.rejections)
            for executor in (result.fleet, result.humans)
            if executor is not None
            and getattr(executor, "fence", None) is not None),
        journal_records=(result.journal.record_count
                         if result.journal else 0),
        journal_snapshots=(result.journal.snapshot_count
                           if result.journal else 0),
        recovered_incidents=controller.recovered_incident_count,
        orphaned_muted_links=_orphaned_muted_links(result, controller),
        fencing_token=(result.coordinator.fencing_token
                      if result.coordinator else 0),
        **_fleet_health_fields(result.fleet),
        trace=_export_trace(result), metrics=_export_metrics(result))


def _fleet_health_fields(fleet: Optional[RobotFleet]) -> Dict:
    """Robot-health observables for the summary (defaults when the
    world has no fleet or no health model attached)."""
    if fleet is None or fleet.robot_health is None:
        return {}
    orphaned = sum(1 for event in fleet.pending_acks.values()
                   if not event.triggered)
    return dict(
        robot_deaths=fleet.deaths,
        robot_heartbeat_losses=fleet.heartbeat_losses,
        robot_redispatches=fleet.redispatch_count,
        robot_quarantines=fleet.quarantine_count,
        robot_zombie_refusals=fleet.zombie_refusals,
        robot_zombie_accepted=fleet.zombie_acks_accepted,
        robot_repairs=fleet.repairs_done,
        robot_human_rescues=fleet.human_rescues,
        robot_spares_left=fleet.spares_left,
        robot_orphaned_orders=orphaned,
        robot_quorum_escalations=fleet.quorum_escalations,
        fleet_healthy_fraction=fleet.healthy_fraction())


def _export_trace(result: RunResult) -> Optional[list]:
    if not result.obs.enabled:
        return None
    result.obs.tracer.finish()
    return [span.to_dict() for span in result.obs.tracer.spans]


def _export_metrics(result: RunResult) -> Optional[dict]:
    if not result.obs.enabled:
        return None
    return metrics_snapshot(result.obs.metrics)


def world_trial(params: Dict, seed: int) -> WorldSummary:
    """The common trial function: run ``params['config']`` under
    ``seed`` and return its summary.  Module-level (hence picklable)
    so :func:`dcrobot.experiments.parallel.run_trials` can ship it to
    worker processes."""
    config = dataclasses.replace(params["config"], seed=seed)
    if params.get("observe"):
        config = dataclasses.replace(config, observe=True)
    return summarize_world(run_world(config))
