"""E18 — Self-maintaining the maintainers: fleet self-healing.

Paper anchor: §4 — "robots will themselves fail".  The maintainers are
machines too: units wear out, run on batteries, die mid-order, and go
dark while still holding a link in maintenance.  A self-maintaining
system must *detect* those losses (heartbeats, not assumptions) and
heal around them — re-dispatching orphaned orders under a fencing
epoch, quarantining flaky units, repairing robots with robots, and
degrading gracefully to humans below quorum.

Two fleets run across a sweep of robot-failure rates (die-mid-order,
zombie completion, battery lie, stall, crash — the
:meth:`~dcrobot.chaos.config.ChaosConfig.robot_failures` battery,
scaled together, on top of the organic wear hazard):

* **naive** — health is modelled but unmanaged: a dead unit's order
  simply never concludes, the incident hangs open forever, and the
  fleet silently shrinks.
* **selfheal** — heartbeat watchdog, fenced re-dispatch of orphaned
  orders (a zombie's late completion is refused on its stale epoch),
  flaky-unit quarantine, robot-repairs-robot with a small spares pool,
  and human rescue / quorum escalation as the fallback.

Both run with the legacy (non-resilient) controller so the healing
measured here is the *fleet layer's*, and under the invariant-checking
:class:`~dcrobot.chaos.safety.SafetyMonitor`.  Reported: incident
conclusion rate, MTTR, permanently orphaned orders, and the
zombie-acceptance tripwire (must be zero) as curves over the
robot-failure scale.
"""

from __future__ import annotations

from typing import Dict, Optional

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    DAY,
    WorldConfig,
    run_world,
    summarize_world,
)
from dcrobot.metrics.report import Table
from dcrobot.robots.fleet import FleetConfig
from dcrobot.robots.health import RobotHealthParams

EXPERIMENT_ID = "e18"
TITLE = "Fleet self-healing: robot health, heartbeats, and recovery"
PAPER_ANCHOR = "§4: 'robots will themselves fail'"

MODES = ("naive", "selfheal")


def _world_config(params: Dict, seed: int) -> WorldConfig:
    chaos = ChaosConfig.robot_failures().scaled(params["robot_scale"])
    healing = params["mode"] == "selfheal"
    return WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        failure_scale=params["failure_scale"],
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=chaos if chaos.any_enabled else None,
        robot_health=RobotHealthParams(self_healing=healing),
        # A slightly larger fleet so quorum (one half) is a meaningful
        # threshold rather than a single-unit cliff.
        fleet_config=FleetConfig(manipulators=3, cleaners=1),
        safety=True,
        stuck_after_seconds=5.0 * DAY,
        mute_ttl_seconds=2.0 * DAY,
        observe=bool(params.get("observe", False)))


def _trial(params: Dict, seed: int) -> Dict:
    """One robot-mortality world; returns the healing scoreboard."""
    summary = summarize_world(run_world(_world_config(params, seed)))
    stats = summary.repair_stats
    return {
        "incidents": summary.incidents,
        "closed": summary.closed_incidents,
        "escalated": summary.unresolved_incidents,
        "open": summary.open_incidents,
        "resolution_rate": summary.mature_resolution_rate,
        "mttr_hours": (stats.mean / 3600.0) if stats else 0.0,
        "orphaned_orders": summary.robot_orphaned_orders,
        "deaths": summary.robot_deaths,
        "heartbeat_losses": summary.robot_heartbeat_losses,
        "redispatches": summary.robot_redispatches,
        "quarantines": summary.robot_quarantines,
        "zombie_refused": summary.robot_zombie_refusals,
        "zombie_accepted": summary.robot_zombie_accepted,
        "robot_repairs": summary.robot_repairs,
        "human_rescues": summary.robot_human_rescues,
        "quorum_escalations": summary.robot_quorum_escalations,
        "healthy_fraction": summary.fleet_healthy_fraction,
        "stuck_orders": summary.stuck_orders,
        "violations": summary.invariant_violations,
        "trace": summary.trace,
        "metrics": summary.metrics,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None,
        observe: bool = False) -> ExperimentResult:
    scales = (0.0, 1.0, 2.0, 4.0)
    horizon_days = 16.0 if quick else 40.0
    failure_scale = 4.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    param_sets = [
        {"label": f"{mode}@{scale:g}x", "mode": mode,
         "robot_scale": scale, "failure_scale": failure_scale,
         "horizon_days": horizon_days}
        for scale in scales for mode in MODES
    ]
    if observe:
        # One designated trial point carries the trace/metrics export:
        # the self-healing fleet at the 2x robot-failure operating point.
        for params in param_sets:
            if params["mode"] == "selfheal" \
                    and params["robot_scale"] == 2.0:
                params["observe"] = True
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_key = {(group.params["robot_scale"], group.params["mode"]): group
              for group in groups}
    if observe:
        observed = by_key[(2.0, "selfheal")].value
        result.trace = observed.get("trace")
        result.metrics = observed.get("metrics")

    table = Table(
        ["robot-failure scale", "mode", "incidents", "concluded %",
         "MTTR h", "orphaned orders", "deaths", "re-dispatches",
         "zombies refused"],
        title="Fleet self-healing: naive vs watchdog-healed fleet "
              "under robot mortality")
    series = {mode: {"resolution": [], "mttr": [], "orphaned": [],
                     "zombie_accepted": []}
              for mode in MODES}
    for scale in scales:
        for mode in MODES:
            group = by_key[(scale, mode)]
            rate = group.mean("resolution_rate")
            mttr = group.mean("mttr_hours")
            orphaned = group.mean("orphaned_orders")
            series[mode]["resolution"].append((scale, rate))
            series[mode]["mttr"].append((scale, mttr))
            series[mode]["orphaned"].append((scale, orphaned))
            series[mode]["zombie_accepted"].append(
                (scale, group.mean("zombie_accepted")))
            table.add_row(
                f"{scale:g}x", mode,
                f"{group.mean('incidents'):.1f}",
                f"{100 * rate:.1f}",
                f"{mttr:.1f}",
                f"{orphaned:.1f}",
                f"{group.mean('deaths'):.1f}",
                f"{group.mean('redispatches'):.1f}",
                f"{group.mean('zombie_refused'):.1f}")
    result.add_table(table)

    for mode in MODES:
        result.add_series(f"resolution_vs_robot_failures_{mode}",
                          series[mode]["resolution"])
        result.add_series(f"mttr_vs_robot_failures_{mode}",
                          series[mode]["mttr"])
        result.add_series(f"orphaned_vs_robot_failures_{mode}",
                          series[mode]["orphaned"])
        result.add_series(f"zombie_accepted_{mode}",
                          series[mode]["zombie_accepted"])

    worst = scales[-1]
    naive = by_key[(worst, "naive")]
    healed = by_key[(worst, "selfheal")]
    result.note(
        f"at {worst:g}x robot failures the naive fleet strands "
        f"{naive.mean('orphaned_orders'):.1f} orders on dead units and "
        f"concludes {100 * naive.mean('resolution_rate'):.1f}% of "
        f"incidents (healthy fraction "
        f"{naive.mean('healthy_fraction'):.2f} at horizon); the "
        f"self-healing fleet concludes "
        f"{100 * healed.mean('resolution_rate'):.1f}% with "
        f"{healed.mean('orphaned_orders'):.1f} orphaned "
        f"({healed.mean('redispatches'):.1f} fenced re-dispatches, "
        f"{healed.mean('robot_repairs'):.1f} robot-repairs-robot, "
        f"{healed.mean('human_rescues'):.1f} human rescues)")
    zombie_accepted = sum(
        by_key[(scale, mode)].mean("zombie_accepted")
        for scale in scales for mode in MODES)
    result.note(
        f"fencing tripwire: {zombie_accepted:g} zombie completions "
        f"accepted across the whole battery (refused: "
        f"{healed.mean('zombie_refused'):.1f} per run at {worst:g}x) — "
        f"the per-order epoch guard held")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
