"""E10 — Predictive maintenance with learned failure models.

Paper anchor: §4 Predictive maintenance — "new opportunities to use
machine learning techniques to predict failures and detect related
network behavior patterns, potentially leveraging data collected by
robotic systems."

Phase 1 trains failure predictors (logistic regression and boosted
stumps, both from scratch) on telemetry collected from an unmaintained
fabric — flap counters, DDM optical margins, age, repair history.
Phase 2 deploys the logistic model as the scorer of a
:class:`PredictivePolicy` in a fresh Level-3 world and compares
reactive vs proactive vs predictive policies on incidents avoided and
availability.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.core.policy import PredictivePolicy
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import DAY, WorldConfig, build_world
from dcrobot.failures.environment import Environment
from dcrobot.metrics.report import Table
from dcrobot.ml.dataset import DatasetCollector
from dcrobot.ml.evaluate import evaluate, train_test_split
from dcrobot.ml.features import FeatureExtractor
from dcrobot.ml.logreg import LogisticRegression
from dcrobot.ml.stumps import GradientBoostedStumps

EXPERIMENT_ID = "e10"
TITLE = "Learned failure prediction and the predictive policy"
PAPER_ANCHOR = "§4: ML techniques to predict failures"


def _collect_training_data(quick: bool, seed: int):
    """Unmaintained world: degradation runs its course, giving clean
    pre-failure telemetry trajectories."""
    horizon_days = 30.0 if quick else 90.0
    world = build_world(WorldConfig(
        horizon_days=horizon_days, seed=seed, policy="none",
        failure_scale=1.0, dust_rate_per_day=0.02,
        aging_rate_per_day=0.01))
    extractor = FeatureExtractor(world.environment,
                                 rng=np.random.default_rng(seed + 50))
    collector = DatasetCollector(world.fabric, extractor,
                                 snapshot_interval=6 * 3600.0,
                                 horizon_seconds=48 * 3600.0)
    world.sim.process(collector.run(world.sim))
    world.sim.run(until=horizon_days * DAY)
    return collector.build(sim_end=horizon_days * DAY)


def _make_predictive_factory(model: LogisticRegression, seed: int):
    """A policy factory around the trained scorer (built in-worker so
    only the picklable model crosses the process boundary)."""
    def factory(fabric):
        # The runner builds its Environment with defaults, so an
        # identically-constructed instance gives the same temperature
        # trajectory — the extractor needs nothing else.
        extractor = FeatureExtractor(
            Environment(), rng=np.random.default_rng(seed + 70))

        def scorer(link, now):
            return float(model.predict_proba(
                extractor.extract(link, now)))

        return PredictivePolicy(fabric, scorer=scorer, threshold=0.5)
    return factory


def _policy_trial(params: Dict, seed: int) -> Dict:
    """One Level-3 world under a reactive/proactive/predictive policy."""
    if params["policy"] == "predictive":
        policy = _make_predictive_factory(params["model"],
                                          params["base_seed"])
    else:
        policy = params["policy"]
    config = WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        level=AutomationLevel.L3_HIGH_AUTOMATION, policy=policy,
        failure_scale=0.5, dust_rate_per_day=0.02,
        aging_rate_per_day=0.01)
    world = build_world(config)
    world.sim.run(until=params["horizon_days"] * DAY)
    controller = world.controller
    return {
        "incidents": (len(controller.closed_incidents)
                      + len(controller.unresolved_incidents)
                      + len(controller.open_incidents)),
        "proactive_ops": len(controller.proactive_outcomes),
        "availability": world.availability().mean,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    # Phase 1: train and evaluate the predictors.
    dataset = _collect_training_data(quick, seed)
    train_x, train_y, test_x, test_y = train_test_split(
        dataset.features, dataset.labels, test_fraction=0.3,
        rng=np.random.default_rng(seed + 60))
    model_table = Table(
        ["model", "precision", "recall", "F1", "AUC"],
        title=f"48h-ahead failure prediction "
              f"({len(dataset)} samples, "
              f"{dataset.positive_fraction:.0%} positive)")
    logistic = LogisticRegression(epochs=600).fit(train_x, train_y)
    boosted = GradientBoostedStumps(
        rounds=30 if quick else 60).fit(train_x, train_y)
    for name, model in (("logistic regression", logistic),
                        ("boosted stumps", boosted)):
        report = evaluate(test_y, model.predict_proba(test_x),
                          threshold=0.5)
        model_table.add_row(name, f"{report.precision:.2f}",
                            f"{report.recall:.2f}", f"{report.f1:.2f}",
                            f"{report.auc:.2f}")
    result.add_table(model_table)

    # Phase 2: the trained model drives proactive maintenance.
    horizon_days = 20.0 if quick else 60.0
    policy_table = Table(
        ["policy", "reactive incidents", "proactive ops",
         "availability"],
        title="Policy comparison under Level-3 robotics")

    modes = [
        ("reactive", "reactive"),
        ("proactive sweeps", "proactive"),
        ("predictive (LR)", "predictive"),
    ]
    param_sets = []
    for label, policy in modes:
        params = {"label": label, "policy": policy,
                  "seed": seed + 80, "horizon_days": horizon_days,
                  "base_seed": seed}
        if policy == "predictive":
            params["model"] = logistic
        param_sets.append(params)
    groups = run_trials(EXPERIMENT_ID, _policy_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    series = []
    for group in groups:
        value = group.value
        policy_table.add_row(group.params["label"], value["incidents"],
                             value["proactive_ops"],
                             f"{value['availability']:.6f}")
        series.append((len(series), value["incidents"]))
    result.add_table(policy_table)
    result.add_series("incidents_by_policy", series)
    result.note("the predictive policy cleans/reseats links whose "
                "optical margin trends down before telemetry ever "
                "flags them")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
