"""E20 — The service plane under open-loop load (S21).

Paper anchor: §2 — the maintenance API must "mask the complexity but
enable complex control" for cloud services, which at datacenter scale
means *heavy traffic*: far more status/health/SMI queries than one
simulation loop can answer synchronously.  This experiment drives an
always-on served world (E13-style chaos per hall, single hall and a
4-hall campus) with an **open-loop** query generator — arrivals are
scheduled on a fixed clock grid and latency is measured from the
*scheduled* arrival, not dispatch, so overload shows up as queueing
instead of being hidden by a slowed-down generator.

Each arm offers the same load (a calibrated multiple of the measured
deep-query capacity; every query is a "deep" SMI read audited against
the full :func:`~dcrobot.topology.smi.compute_smi` rescan, making the
parity oracle itself load-bearing) and every 50th arrival is an
urgent HIGH-priority maintenance command:

* **uncontrolled** (``admission=None``) — every query is served;
  the backlog grows without bound, p99 explodes, and the sim bridge
  records stalls (the event loop cannot wake it inside its budget);
* **admission-controlled** — queries beyond a sustainable token rate
  are shed immediately; served p99 stays flat, the bridge stays
  inside its stall budget, and HIGH commands are *never* shed.

``benchmarks/bench_service_load.py`` gates the controlled arm (p99 at
most half the uncontrolled arm's, zero stalls, zero parity failures,
zero HIGH sheds) in CI.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import List, Optional

import numpy as np

from dcrobot.experiments.e19_campus_scale import campus_config
from dcrobot.experiments.parallel import Execution
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig
from dcrobot.metrics.report import Table
from dcrobot.topology.smi import compute_smi

# NOTE: dcrobot.service is imported lazily inside the harness — the
# experiments package initializes before the service package (which
# builds on the runner), so a module-level import would be circular.

EXPERIMENT_ID = "e20"
TITLE = "Service plane under load: admission control over a live campus"
PAPER_ANCHOR = "§2: the maintenance API as an always-on service"

#: Offered load as a multiple of measured deep-query capacity.
OVERLOAD_FACTOR = 4.0
#: Controlled arms admit this fraction of measured capacity.
SUSTAINABLE_FRACTION = 0.5
#: Every Nth arrival is an urgent HIGH maintenance command.
COMMAND_EVERY = 50


def service_load_config(halls: int, horizon_days: float,
                        seed: int) -> WorldConfig:
    """The E13-style chaos world (per hall) the plane serves over."""
    return campus_config(halls, horizon_days, seed)


@dataclasses.dataclass
class LoadReport:
    """One arm of the load matrix, fully measured."""

    halls: int
    admission: bool
    offered_rps: float
    offered: int
    served_queries: int
    shed_queries: int
    commands: int
    shed_commands_high: int
    p50_seconds: float
    p99_seconds: float
    max_seconds: float
    serve_wall_seconds: float
    achieved_rps: float
    stalls: int
    max_gap_seconds: float
    slices: int
    events: int
    parity_audits: int
    parity_failures: int

    @property
    def shed_fraction(self) -> float:
        total = self.served_queries + self.shed_queries
        return self.shed_queries / total if total else 0.0


def measure_deep_query_cost(config: WorldConfig,
                            samples: int = 30) -> float:
    """Mean wall-seconds of one deep query's oracle work (the full
    SMI rescan) on this config's topology — the calibration both
    arms' offered load derives from."""
    topology = config.topology_builder(
        rng=np.random.default_rng(config.seed + 1),
        **config.topology_kwargs)
    compute_smi(topology)  # warm caches outside the timed region
    started = time.perf_counter()
    for _ in range(samples):
        compute_smi(topology)
    return (time.perf_counter() - started) / samples


async def _one_query(service, scheduled: float, hall: int,
                     record: dict) -> None:
    from dcrobot.service import ServiceOverloadError
    from dcrobot.service.readmodel import ReadModelParityError

    try:
        await service.smi(hall=hall, audit=True)
        record["latencies"].append(time.perf_counter() - scheduled)
    except ServiceOverloadError:
        record["shed"] += 1
    except ReadModelParityError:
        # Already counted in service.parity_failures; the report
        # surfaces it and the bench gate fails on it.
        record["errors"] += 1


async def _one_command(service, link_id: str, hall: int,
                       record: dict) -> None:
    from dcrobot.service import ServiceOverloadError

    try:
        await service.request_maintenance(link_id, urgent=True,
                                          hall=hall)
        record["commands"] += 1
    except ServiceOverloadError:  # pragma: no cover - gated to zero
        record["command_shed"] += 1


async def _generate(service, stop: asyncio.Event, offered_rps: float,
                    halls: int, max_offered: int, record: dict,
                    tasks: List) -> None:
    """Open-loop arrival process on a fixed clock grid.

    When the event loop falls behind, *all* due arrivals are spawned
    in a batch — the generator never slows down to match the server,
    which is exactly what makes the uncontrolled arm's queueing
    visible from the scheduled-arrival latencies."""
    link_ids = {hall: list(world.fabric.links)
                for hall, world in service.worlds.items()}
    interval = 1.0 / offered_rps
    start = time.perf_counter()
    n = 0
    while not stop.is_set() and n < max_offered:
        due = int((time.perf_counter() - start) / interval) + 1
        while n < min(due, max_offered):
            scheduled = start + n * interval
            hall = n % halls
            record["offered"] += 1
            if COMMAND_EVERY and n % COMMAND_EVERY == COMMAND_EVERY - 1:
                links = link_ids[hall]
                tasks.append(asyncio.ensure_future(_one_command(
                    service, links[(n // COMMAND_EVERY) % len(links)],
                    hall, record)))
            else:
                tasks.append(asyncio.ensure_future(_one_query(
                    service, scheduled, hall, record)))
            n += 1
        delay = (start + n * interval) - time.perf_counter()
        await asyncio.sleep(max(delay, 0.0))


def run_load_arm(halls: int, horizon_days: float, seed: int,
                 serve_seconds: float, offered_rps: float,
                 admission) -> LoadReport:
    """Serve one world/campus for ``serve_seconds`` of wall time under
    ``offered_rps`` of open-loop query load; ``admission`` is an
    :class:`~dcrobot.service.AdmissionConfig` or ``None``."""
    from dcrobot.service import BridgeConfig, ServiceConfig, serve_world

    config = service_load_config(halls, horizon_days, seed)
    pace = config.horizon_seconds / serve_seconds
    served = serve_world(config, ServiceConfig(
        admission=admission, bridge=BridgeConfig(pace=pace)))
    service = served.service
    record = {"latencies": [], "shed": 0, "errors": 0, "offered": 0,
              "commands": 0, "command_shed": 0}
    max_offered = int(offered_rps * serve_seconds * 1.5)
    tasks: List = []

    async def main():
        stop = asyncio.Event()
        generator = asyncio.ensure_future(_generate(
            service, stop, offered_rps, halls, max_offered, record,
            tasks))
        started = time.perf_counter()
        await served.serve()
        wall = time.perf_counter() - started
        stop.set()
        await generator
        await asyncio.gather(*tasks, return_exceptions=True)
        return wall

    wall = asyncio.run(main())
    latencies = np.asarray(record["latencies"], dtype=np.float64)
    served_queries = len(latencies)
    return LoadReport(
        halls=halls,
        admission=admission is not None,
        offered_rps=offered_rps,
        offered=record["offered"],
        served_queries=served_queries,
        shed_queries=record["shed"],
        commands=record["commands"],
        shed_commands_high=(
            int(service.admission.shed("command-high"))
            if service.admission is not None
            else record["command_shed"]),
        p50_seconds=(float(np.percentile(latencies, 50))
                     if served_queries else 0.0),
        p99_seconds=(float(np.percentile(latencies, 99))
                     if served_queries else 0.0),
        max_seconds=(float(latencies.max())
                     if served_queries else 0.0),
        serve_wall_seconds=wall,
        achieved_rps=(served_queries / wall if wall else 0.0),
        stalls=service.bridge.stalls,
        max_gap_seconds=service.bridge.max_gap_seconds,
        slices=service.bridge.slices,
        events=service.bridge.events_processed,
        parity_audits=service.parity_audits,
        parity_failures=service.parity_failures)


def run_load_pair(halls: int, horizon_days: float, seed: int,
                  serve_seconds: float,
                  overload: float = OVERLOAD_FACTOR):
    """(uncontrolled, controlled) arms under identical offered load."""
    from dcrobot.service import AdmissionConfig

    config = service_load_config(halls, horizon_days, seed)
    cost = measure_deep_query_cost(config)
    capacity = 1.0 / cost
    offered_rps = overload * capacity
    controlled = AdmissionConfig(
        query_rate=SUSTAINABLE_FRACTION * capacity,
        query_burst=max(10.0, 0.02 * capacity))
    uncontrolled_report = run_load_arm(
        halls, horizon_days, seed, serve_seconds, offered_rps,
        admission=None)
    controlled_report = run_load_arm(
        halls, horizon_days, seed, serve_seconds, offered_rps,
        admission=controlled)
    return uncontrolled_report, controlled_report


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    # Load arms are wall-clock measurements on one event loop; they
    # run serially in-process (``execution`` is part of the common
    # experiment signature but parallel workers would distort them).
    del execution
    halls_sweep = (1, 4)
    horizon_days = 1.0 if quick else 2.0
    serve_seconds = 1.5 if quick else 4.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    table = Table(
        ["halls", "admission", "offered rps", "served", "shed %",
         "p50 ms", "p99 ms", "stalls", "parity audits (failed)"],
        title="Open-loop service load: uncontrolled vs "
              "admission-controlled, same offered load")
    p99_series_off, p99_series_on = [], []
    reports = []
    for halls in halls_sweep:
        uncontrolled, controlled = run_load_pair(
            halls, horizon_days, seed, serve_seconds)
        reports.append((uncontrolled, controlled))
        for report in (uncontrolled, controlled):
            table.add_row(
                str(halls),
                "on" if report.admission else "off",
                f"{report.offered_rps:.0f}",
                str(report.served_queries),
                f"{100 * report.shed_fraction:.1f}",
                f"{1e3 * report.p50_seconds:.1f}",
                f"{1e3 * report.p99_seconds:.1f}",
                str(report.stalls),
                f"{report.parity_audits} "
                f"({report.parity_failures})")
        p99_series_off.append((halls, uncontrolled.p99_seconds))
        p99_series_on.append((halls, controlled.p99_seconds))
    result.add_table(table)
    result.add_series("p99_uncontrolled_vs_halls", p99_series_off)
    result.add_series("p99_controlled_vs_halls", p99_series_on)

    for uncontrolled, controlled in reports:
        ratio = (controlled.p99_seconds / uncontrolled.p99_seconds
                 if uncontrolled.p99_seconds else float("inf"))
        result.note(
            f"halls={uncontrolled.halls}: admission cut served p99 "
            f"from {1e3 * uncontrolled.p99_seconds:.0f}ms to "
            f"{1e3 * controlled.p99_seconds:.0f}ms ({ratio:.2f}x) by "
            f"shedding {100 * controlled.shed_fraction:.0f}% of an "
            f"offered {uncontrolled.offered_rps:.0f} rps; sim-loop "
            f"stalls {uncontrolled.stalls} -> {controlled.stalls}; "
            f"{controlled.commands} urgent commands, "
            f"{controlled.shed_commands_high} shed (must be 0)")
    total_audits = sum(c.parity_audits for _, c in reports) \
        + sum(u.parity_audits for u, _ in reports)
    total_failures = sum(c.parity_failures for _, c in reports) \
        + sum(u.parity_failures for u, _ in reports)
    result.note(
        f"every served query re-verified the incremental SMI against "
        f"the full rescan: {total_audits} audits, {total_failures} "
        f"divergences")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
