"""E11 — Robot deployment scopes: device/rack/row/hall.

Paper anchor: §3.4 — "there are several potential deployment scopes for
robotics: device-level within the rack, rack-level, row-level, hall
level ... The chosen scope significantly influences the mobility model
required and the deployment strategy."

The same fat-tree hall is serviced by fleets of different mobility
scopes with the unit budget held constant, and by a rack-scoped fleet
sized for full coverage.  Reported: rack coverage, repairs that had to
fall back to technicians (out-of-scope racks), median service window,
and travel share of robot time.
"""

from __future__ import annotations

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, run_world
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table
from dcrobot.robots.fleet import FleetConfig
from dcrobot.robots.mobility import MobilityScope
from dcrobot.topology.fattree import build_fattree

EXPERIMENT_ID = "e11"
TITLE = "Robot mobility scopes: coverage vs fleet size vs service window"
PAPER_ANCHOR = "§3.4: deployment scopes and mobility models"


def _occupied_racks(topology):
    return sorted({switch.rack_id
                   for switch in topology.fabric.switches.values()
                   if switch.rack_id})


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    horizon_days = 15.0 if quick else 45.0
    failure_scale = 4.0

    # Probe the topology once to learn its occupied racks.
    probe = build_fattree(k=4, rng=np.random.default_rng(seed + 1))
    racks = _occupied_racks(probe)

    configs = [
        ("hall scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.HALL)),
        ("row scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.ROW,
                     home_racks=racks[:3])),
        ("rack scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.RACK,
                     home_racks=racks[:3])),
        (f"rack scope, full coverage ({len(racks)}+{len(racks)})",
         FleetConfig(manipulators=len(racks), cleaners=len(racks),
                     scope=MobilityScope.RACK, home_racks=racks)),
    ]

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["deployment", "units", "rack coverage %",
         "human-fallback repairs", "p50 ttr", "robot util %"],
        title="Same hall, same faults, different mobility scopes")

    series = []
    for label, fleet_config in configs:
        run_result = run_world(WorldConfig(
            horizon_days=horizon_days, seed=seed,
            failure_scale=failure_scale,
            level=AutomationLevel.L3_HIGH_AUTOMATION,
            fleet_config=fleet_config))
        fleet = run_result.fleet
        stats = run_result.repair_stats()
        coverage = fleet.coverage_when_occupied(racks) \
            if hasattr(fleet, "coverage_when_occupied") else None
        covered = sum(1 for rack in racks if fleet.covers(rack))
        fallback = sum(
            1 for outcome in (run_result.humans.outcomes
                              if run_result.humans else []))
        robot_capacity = (run_result.robot_count()
                          * run_result.horizon_seconds)
        utilization = (100 * run_result.robot_busy_seconds()
                       / robot_capacity if robot_capacity else 0.0)
        units = len(fleet.manipulators) + len(fleet.cleaners)
        table.add_row(label, units,
                      f"{100 * covered / len(racks):.0f}",
                      fallback,
                      format_duration(stats.p50) if stats else "-",
                      f"{utilization:.2f}")
        series.append((units, stats.p50 if stats else float("nan")))

    result.add_table(table)
    result.add_series("p50_ttr_vs_units", series)
    result.note("narrow scopes with a small unit budget leave racks "
                "uncovered: repairs there fall back to day-scale "
                "technician dispatch; full rack-level coverage costs "
                f"{2 * len(racks)} units")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
