"""E11 — Robot deployment scopes: device/rack/row/hall.

Paper anchor: §3.4 — "there are several potential deployment scopes for
robotics: device-level within the rack, rack-level, row-level, hall
level ... The chosen scope significantly influences the mobility model
required and the deployment strategy."

The same fat-tree hall is serviced by fleets of different mobility
scopes with the unit budget held constant, and by a rack-scoped fleet
sized for full coverage.  Reported: rack coverage, repairs that had to
fall back to technicians (out-of-scope racks), median service window,
and travel share of robot time.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    WorldConfig,
    run_world,
    summarize_world,
)
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table
from dcrobot.robots.fleet import FleetConfig
from dcrobot.robots.mobility import MobilityScope
from dcrobot.topology.fattree import build_fattree

EXPERIMENT_ID = "e11"
TITLE = "Robot mobility scopes: coverage vs fleet size vs service window"
PAPER_ANCHOR = "§3.4: deployment scopes and mobility models"


def _occupied_racks(topology):
    return sorted({switch.rack_id
                   for switch in topology.fabric.switches.values()
                   if switch.rack_id})


def _trial(params: Dict, seed: int) -> Dict:
    """One fleet deployment; the world summary plus coverage stats."""
    run_result = run_world(WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        failure_scale=params["failure_scale"],
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=params["fleet_config"]))
    fleet = run_result.fleet
    racks = params["racks"]
    summary = summarize_world(run_result)
    return {
        "summary": summary,
        "units": len(fleet.manipulators) + len(fleet.cleaners),
        "covered": sum(1 for rack in racks if fleet.covers(rack)),
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 15.0 if quick else 45.0
    failure_scale = 4.0

    # Probe the topology once to learn its occupied racks.
    probe = build_fattree(k=4, rng=np.random.default_rng(seed + 1))
    racks = _occupied_racks(probe)

    configs = [
        ("hall scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.HALL)),
        ("row scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.ROW,
                     home_racks=racks[:3])),
        ("rack scope, 2+1 units",
         FleetConfig(manipulators=2, cleaners=1,
                     scope=MobilityScope.RACK,
                     home_racks=racks[:3])),
        (f"rack scope, full coverage ({len(racks)}+{len(racks)})",
         FleetConfig(manipulators=len(racks), cleaners=len(racks),
                     scope=MobilityScope.RACK, home_racks=racks)),
    ]

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["deployment", "units", "rack coverage %",
         "human-fallback repairs", "p50 ttr", "robot util %"],
        title="Same hall, same faults, different mobility scopes")

    param_sets = [
        {"label": label, "fleet_config": fleet_config, "racks": racks,
         "seed": seed, "horizon_days": horizon_days,
         "failure_scale": failure_scale}
        for label, fleet_config in configs
    ]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    series = []
    for group in groups:
        value = group.value
        summary = value["summary"]
        stats = summary.repair_stats
        table.add_row(group.params["label"], value["units"],
                      f"{100 * value['covered'] / len(racks):.0f}",
                      summary.human_outcome_count,
                      format_duration(stats.p50) if stats else "-",
                      f"{summary.robot_utilization_pct:.2f}")
        series.append((value["units"],
                       stats.p50 if stats else float("nan")))

    result.add_table(table)
    result.add_series("p50_ttr_vs_units", series)
    result.note("narrow scopes with a small unit budget leave racks "
                "uncovered: repairs there fall back to day-scale "
                "technician dispatch; full rack-level coverage costs "
                f"{2 * len(racks)} units")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
