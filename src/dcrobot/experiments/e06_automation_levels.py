"""E6 — The five automation levels, end to end.

Paper anchor: §2.1 — the SAE-style taxonomy from Level 0 (all manual)
to Level 4 (fully autonomous, no humans in the hall).

The same fault environment is replayed at every level.  Reported:
incident volume, median/p95 service window, availability, repair
amplification, human labor, robot utilization, and total maintenance
cost — the monotone improvements (and the shifting cost mix) the
taxonomy predicts.
"""

from __future__ import annotations

from typing import Optional

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, world_trial
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e6"
TITLE = "Automation levels 0-4: service window, availability, cost"
PAPER_ANCHOR = "§2.1: five levels of datacenter maintenance automation"

_LABELS = {
    AutomationLevel.L0_NO_AUTOMATION: "L0 no automation",
    AutomationLevel.L1_OPERATOR_ASSISTANCE: "L1 operator assist",
    AutomationLevel.L2_PARTIAL_AUTOMATION: "L2 partial (supervised)",
    AutomationLevel.L3_HIGH_AUTOMATION: "L3 high automation",
    AutomationLevel.L4_FULL_AUTOMATION: "L4 full automation",
}


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    import numpy as np

    from dcrobot.experiments.runner import DAY, build_world
    from dcrobot.failures import FailureRates, FaultTrace

    horizon_days = 15.0 if quick else 60.0
    failure_scale = 4.0

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["level", "incidents", "p50 ttr", "p95 ttr", "availability",
         "ampl.", "tech-hours", "robot util %", "cost $"],
        title="One month of maintenance at each automation level, "
              "identical fault trace")

    # One shared campaign: synthesize it against the (seed-identical)
    # fabric so every level faces literally the same faults.
    probe = build_world(WorldConfig(horizon_days=horizon_days,
                                    seed=seed, failure_scale=0.0))
    trace = FaultTrace.synthesize(
        probe.fabric, horizon_days * DAY,
        FailureRates().scaled(failure_scale),
        rng=np.random.default_rng(seed + 100))

    param_sets = [
        {"label": _LABELS[level], "level": int(level), "seed": seed,
         "config": WorldConfig(horizon_days=horizon_days, seed=seed,
                               level=level, failure_scale=0.0,
                               fault_trace=trace)}
        for level in AutomationLevel
    ]
    groups = run_trials(EXPERIMENT_ID, world_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    mttr_series, cost_series = [], []
    for group in groups:
        summary = group.value
        stats = summary.repair_stats
        table.add_row(
            group.params["label"], summary.incidents,
            format_duration(stats.p50) if stats else "-",
            format_duration(stats.p95) if stats else "-",
            f"{summary.availability_mean:.6f}",
            f"{summary.amplification_factor:.2f}",
            f"{summary.tech_hours:.1f}",
            f"{summary.robot_utilization_pct:.2f}",
            f"{summary.cost_total_usd:,.0f}")
        if stats:
            mttr_series.append((group.params["level"], stats.p50))
        cost_series.append((group.params["level"],
                            summary.cost_total_usd))

    result.add_table(table)
    result.add_series("p50_ttr_by_level", mttr_series)
    result.add_series("cost_by_level", cost_series)
    result.note("L1 keeps human dispatch latency (assist devices only "
                "improve quality); the service-window cliff appears at "
                "L2+ when robots execute; L4 removes the human "
                "fallback for cable/switch replacement too")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
