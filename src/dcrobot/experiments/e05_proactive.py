"""E5 — Proactive maintenance: reseat sweeps vs purely reactive repair.

Paper anchor: §4 Predictive maintenance — "if several links on a switch
have been fixed by reseating transceivers, the system could proactively
reseat all transceivers on that switch, even if no issues have been
reported. We believe this proactive maintenance could enhance
reliability and availability while reducing operational costs."

Level-3 robot worlds with slow contact oxidation; the proactive policy's
sweep trigger is swept from "never" (reactive) to aggressive.  Reported:
reactive incidents (tickets that still happened), availability, sweep
volume, and robot utilization — the cost of proactivity is robot time,
which the quiet-window scheduler makes nearly free.
"""

from __future__ import annotations

from typing import Optional

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, world_trial
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e5"
TITLE = "Proactive reseat sweeps vs reactive-only maintenance"
PAPER_ANCHOR = "§4: proactively reseat all transceivers on that switch"


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 20.0 if quick else 75.0
    # Oxidation dominates: the fault class sweeps can actually pre-empt.
    aging_rate = 0.02

    modes = [
        ("reactive only", "reactive", None),
        ("sweep after 2 fixes", "proactive", 2),
        ("sweep after 1 fix", "proactive", 1),
    ]

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["policy", "reactive incidents", "proactive ops",
         "availability", "robot util %"],
        title="Proactive sweeps pre-empt oxidation failures")

    param_sets = []
    for label, policy, trigger in modes:
        config = WorldConfig(
            horizon_days=horizon_days, seed=seed,
            level=AutomationLevel.L3_HIGH_AUTOMATION,
            policy=policy, failure_scale=0.5,
            aging_rate_per_day=aging_rate)
        if trigger is not None:
            config.proactive_trigger = trigger
        param_sets.append({"label": label, "trigger": trigger,
                           "seed": seed, "config": config})
    groups = run_trials(EXPERIMENT_ID, world_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    incidents_series = []
    for group in groups:
        summary = group.value
        table.add_row(group.params["label"], summary.incidents,
                      summary.proactive_ops,
                      f"{summary.availability_mean:.6f}",
                      f"{summary.robot_utilization_pct:.2f}")
        incidents_series.append((group.params["trigger"] or 0,
                                 summary.incidents))

    result.add_table(table)
    result.add_series("incidents_vs_trigger", incidents_series)
    result.note("sweeps reseat whole switches during the 01:00-05:00 "
                "quiet window, wiping accumulated contact oxidation "
                "before it ever trips telemetry")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
