"""E14 — Crash the controller at a random step; measure what survives.

Paper anchor: §4 — a self-maintaining system's controller is itself a
component that fails.  The maintenance plane must survive the death of
its own brain without losing or duplicating physical repairs.

Four modes run the same fault campaign.  In each crashing mode the
crash is *armed* at a per-seed random time and fires at the first
moment the controller actually has work in flight — the worst place a
real crash can land:

* **uncrashed** — journaled controller, never killed: the reference.
* **replay** — fail-stop crash, then same-node restart recovering from
  the write-ahead journal (snapshot + tail replay, in-flight order
  adoption).
* **standby** — fail-stop crash of the leased primary; the supervisor's
  watchdog promotes a standby when the lease expires, with fencing
  tokens protecting against the deposed primary.
* **coldstart** — the journal-less baseline: the restarted controller
  comes up empty.  Links muted by its predecessor stay muted forever,
  so every incident open at the crash is silently lost
  (``orphaned_muted_links``).

Reported per mode: mature-incident resolution rate, orphaned muted
links, adopted in-flight orders, recovered incidents, and safety
invariant violations (always expected to be zero — recovery must never
double-repair or leak a claim).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    DAY,
    WorldConfig,
    build_world,
    summarize_world,
)
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e14"
TITLE = "Crash recovery: journal replay and standby failover vs cold restart"
PAPER_ANCHOR = "§4: the controller is itself a component that fails"

MODES = ("uncrashed", "replay", "standby", "coldstart")

#: How often the armed saboteur checks whether work is in flight.
_ARM_POLL_SECONDS = 120.0
#: If no order is ever caught in flight, fall back to crashing on any
#: open incident after this long past the arm time.
_ARM_FALLBACK_SECONDS = 5.0 * DAY


def _world_config(params: Dict, seed: int) -> WorldConfig:
    mode = params["mode"]
    return WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        failure_scale=params["failure_scale"],
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        safety=True,
        journal=mode != "coldstart",
        leadership=mode == "standby",
        # The coldstart baseline still needs a supervisor (that is the
        # restart machinery); the journal flag is what it lacks.
        supervise=mode == "coldstart",
        observe=bool(params.get("observe", False)))


def _saboteur(result, supervisor, mode: str, arm_at: float):
    """Generator: crash the live controller at its worst moment.

    Sleeps until ``arm_at``, then fires at the first poll where the
    controller has an open incident or an in-flight order — so the
    crash always lands where state can actually be lost.
    """
    sim = result.sim
    yield sim.timeout(arm_at)
    fallback_at = arm_at + _ARM_FALLBACK_SECONDS
    while True:
        live = supervisor.controller
        if not live.crashed:
            if live.active_orders:
                break  # an order is physically in flight: worst case
            if live.open_incidents and sim.now >= fallback_at:
                break
        yield sim.timeout(_ARM_POLL_SECONDS)
    if mode == "standby":
        # Kill the primary and let the lease-expiry watchdog promote.
        supervisor.crash_primary("e14 armed crash")
    else:
        supervisor.restart_primary("e14 armed crash")


def _trial(params: Dict, seed: int) -> Dict:
    """One world, optionally crashed at an armed random step."""
    config = _world_config(params, seed)
    result = build_world(config)
    mode = params["mode"]
    if mode != "uncrashed":
        # The arm time is part of the trial's identity: a dedicated
        # substream keeps it independent of the world's own RNG.
        arm_rng = np.random.default_rng(seed + 1400)
        arm_at = float(arm_rng.uniform(0.15, 0.75)) \
            * config.horizon_seconds
        result.sim.process(_saboteur(result, result.supervisor,
                                     mode, arm_at))
    result.sim.run(until=config.horizon_seconds)
    summary = summarize_world(result)
    return {
        "incidents": summary.incidents,
        "closed": summary.closed_incidents,
        "escalated": summary.unresolved_incidents,
        "open": summary.open_incidents,
        "resolution_rate": summary.mature_resolution_rate,
        "crashes": summary.controller_crashes,
        "failovers": summary.failovers,
        "recoveries": summary.recoveries,
        "adopted_orders": summary.adopted_orders,
        "recovered_incidents": summary.recovered_incidents,
        "fenced_rejections": summary.fenced_rejections,
        "orphaned_muted_links": summary.orphaned_muted_links,
        "journal_records": summary.journal_records,
        "journal_snapshots": summary.journal_snapshots,
        "violations": summary.invariant_violations,
        "availability_nines": summary.availability_nines,
        "trace": summary.trace,
        "metrics": summary.metrics,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None,
        observe: bool = False) -> ExperimentResult:
    horizon_days = 20.0 if quick else 45.0
    failure_scale = 6.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    param_sets = [
        {"label": mode, "mode": mode, "failure_scale": failure_scale,
         "horizon_days": horizon_days}
        for mode in MODES
    ]
    if observe:
        # The replay mode is the interesting trace: crash, journal
        # replay, in-flight order adoption — all spanned.
        for params in param_sets:
            if params["mode"] == "replay":
                params["observe"] = True
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_mode = {group.params["mode"]: group for group in groups}
    if observe:
        observed = by_mode["replay"].value
        result.trace = observed.get("trace")
        result.metrics = observed.get("metrics")

    table = Table(
        ["mode", "incidents", "concluded %", "orphaned links",
         "adopted orders", "recovered incidents", "fenced",
         "invariant violations"],
        title="Controller crash at a random in-flight step: "
              "what each recovery strategy saves")
    for mode in MODES:
        group = by_mode[mode]
        table.add_row(
            mode,
            f"{group.mean('incidents'):.1f}",
            f"{100 * group.mean('resolution_rate'):.1f}",
            f"{group.mean('orphaned_muted_links'):.1f}",
            f"{group.mean('adopted_orders'):.1f}",
            f"{group.mean('recovered_incidents'):.1f}",
            f"{group.mean('fenced_rejections'):.1f}",
            f"{group.mean('violations'):.1f}")
    result.add_table(table)

    result.add_series(
        "resolution_by_mode",
        [(index, by_mode[mode].mean("resolution_rate"))
         for index, mode in enumerate(MODES)])
    result.add_series(
        "orphaned_by_mode",
        [(index, by_mode[mode].mean("orphaned_muted_links"))
         for index, mode in enumerate(MODES)])

    uncrashed = by_mode["uncrashed"]
    replay = by_mode["replay"]
    coldstart = by_mode["coldstart"]
    result.note(
        f"journaled replay concludes "
        f"{100 * replay.mean('resolution_rate'):.1f}% of mature "
        f"incidents after a mid-flight crash (uncrashed reference "
        f"{100 * uncrashed.mean('resolution_rate'):.1f}%), adopting "
        f"{replay.mean('adopted_orders'):.1f} in-flight orders and "
        f"recovering {replay.mean('recovered_incidents'):.1f} open "
        f"incidents per run; the journal-less cold restart concludes "
        f"{100 * coldstart.mean('resolution_rate'):.1f}% and strands "
        f"{coldstart.mean('orphaned_muted_links'):.1f} muted links "
        f"whose repairs are silently lost")
    excess = max(by_mode[mode].mean("violations")
                 - uncrashed.mean("violations")
                 for mode in MODES if mode != "uncrashed")
    result.note(
        f"safety: crashing adds {excess:.1f} invariant violations "
        f"over the uncrashed reference (worst mode) — recovery never "
        f"double-repairs a link or leaks a work-order claim "
        f"(standby failover fenced "
        f"{by_mode['standby'].mean('fenced_rejections'):.1f} stale "
        f"dispatches per run)")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
