"""E16 — Congestion-aware maintenance: p99 FCT under drains.

Paper anchor: §2 — "the maintenance system can interface with the
monitoring and traffic engineering systems" so that work happens "with
little to no additional cost" to the workload.  This experiment puts a
number on the *cost of ignoring that interface*: a proactive reseat
campaign runs over one hot pod's uplinks while a diurnal hotspot
traffic matrix loads the fabric, and the flow-completion-time p99
during maintenance windows is compared between

* **naive** scheduling — repairs dispatch whenever requested, draining
  hot uplinks at peak and shoving their bytes onto already-loaded ECMP
  siblings; and
* **impact-aware** scheduling — the
  :class:`~dcrobot.core.impact.CongestionGate` projects the drained
  link's bytes onto its sibling group first and defers (bounded) while
  the group would run hot, sliding the same repairs into the traffic
  trough.

Both arms perform the same physical work on the same seed; only the
timing differs.  A pattern sweep (uniform / hotspot / incast) over the
columnar engine shows the matrix shapes themselves, maintenance aside.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from dcrobot.core.actions import Priority, RepairAction
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.controller import ControllerConfig
from dcrobot.core.impact import ImpactConfig
from dcrobot.core.policy import PlanRequest
from dcrobot.experiments.parallel import Execution
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, run_world
from dcrobot.metrics.report import Table
from dcrobot.network.enums import FormFactor
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.fattree import build_fattree
from dcrobot.traffic.flows import sample_sizes
from dcrobot.traffic.patterns import (
    HotspotPattern,
    IncastPattern,
    UniformPattern,
)
from dcrobot.traffic.state import TrafficState

EXPERIMENT_ID = "e16"
TITLE = "Congestion-aware maintenance: p99 FCT during drains"
PAPER_ANCHOR = ("§2: impact-aware scheduling against the traffic "
                "engineering system")

DAY = 86400.0
#: Fabric: k-ary fat-tree on 25G links so realistic flow counts can
#: actually congest an uplink group.
FABRIC_K = 8
FORM_FACTOR = FormFactor.SFP28
#: Diurnal load: heavy hotspot during the day, light uniform at night.
DAY_START_HOUR, DAY_END_HOUR = 8.0, 20.0
DAY_FLOWS, NIGHT_FLOWS = 6400, 1200
HOT_TORS = 2
HOT_PROBABILITY = 0.75
#: Traffic cadence: one 1-second peak-rate sample every 15 minutes.
WINDOW_SECONDS = 900.0
SAMPLE_SECONDS = 1.0
#: Full-width ECMP table: k²/4 = 16 inter-pod paths at k=8, so every
#: uplink carries load and a drain concentrates real traffic instead
#: of shifting it onto table-capped idle siblings.
MAX_EQUAL_PATHS = 16


class ReseatCampaign:
    """Round-robin proactive reseats over the hot pod's uplinks.

    The first ``HOT_TORS`` ToR switches (the hotspot pattern's hot
    prefix) have each of their uplinks reseated in turn, one request
    per policy tick, repeating for the whole horizon — a rolling
    maintenance campaign over exactly the links the traffic cares
    about.
    """

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        tors = [switch.id for switch in fabric.switches.values()
                if switch.role is SwitchRole.TOR]
        self.link_ids: List[str] = [
            link.id for tor in tors[:HOT_TORS]
            for link in fabric.links_of(tor)]
        self._cursor = 0

    def on_symptom(self, event) -> Optional[PlanRequest]:
        return None

    def periodic(self, now: float) -> List[PlanRequest]:
        link_id = self.link_ids[self._cursor % len(self.link_ids)]
        self._cursor += 1
        return [PlanRequest(link_id=link_id, priority=Priority.NORMAL,
                            reason="campaign:reseat",
                            action=RepairAction.RESEAT,
                            proactive=True)]

    def record_repair(self, link, action, effective, now) -> None:
        """The campaign is unconditional; nothing to learn."""


def _diurnal_schedule(n_endpoints: int):
    day_pattern = HotspotPattern(hot_endpoints=HOT_TORS,
                                 hot_probability=HOT_PROBABILITY)
    night_pattern = UniformPattern()

    def schedule(now: float):
        hour = (now % DAY) / 3600.0
        if DAY_START_HOUR <= hour < DAY_END_HOUR:
            return DAY_FLOWS, day_pattern
        return NIGHT_FLOWS, night_pattern

    return schedule


def _arm_config(seed: int, horizon_days: float,
                impact: Optional[ImpactConfig]) -> WorldConfig:
    return WorldConfig(
        topology_kwargs={"k": FABRIC_K, "form_factor": FORM_FACTOR},
        horizon_days=horizon_days, seed=seed,
        # Isolate the maintenance-vs-traffic interaction: no organic
        # failures, no dust/aging — every drain is the campaign's.
        failure_scale=0.0, dust_rate_per_day=0.0,
        aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        policy=ReseatCampaign,
        controller_config=ControllerConfig(defer_proactive=False),
        traffic=True,
        traffic_window_seconds=WINDOW_SECONDS,
        traffic_sample_seconds=SAMPLE_SECONDS,
        traffic_schedule=_diurnal_schedule(
            FABRIC_K * FABRIC_K // 2),
        traffic_max_equal_paths=MAX_EQUAL_PATHS,
        impact=impact)


@dataclasses.dataclass
class ArmStats:
    """One scheduling arm, measured over its traffic windows."""

    label: str
    maintenance_windows: int
    p99_maintenance: float
    mean_p99_maintenance: float
    p99_overall: float
    congestion_lost_bytes: float
    deferrals: int
    overrides: int
    reseats: int


def _measure(label: str, result) -> ArmStats:
    driver = result.traffic_driver
    maintenance = driver.maintenance_windows()
    p99s = [w.p99_fct for w in maintenance if not np.isnan(w.p99_fct)]
    gate = result.impact_gate
    return ArmStats(
        label=label,
        maintenance_windows=len(maintenance),
        p99_maintenance=driver.p99_over(maintenance),
        mean_p99_maintenance=(float(np.mean(p99s)) if p99s
                              else float("nan")),
        p99_overall=driver.p99_over(driver.windows),
        congestion_lost_bytes=sum(w.congestion_lost_bytes
                                  for w in driver.windows),
        deferrals=gate.deferrals if gate else 0,
        overrides=gate.overrides if gate else 0,
        reseats=len(result.live_controller.proactive_outcomes))


def _pattern_sweep(seed: int) -> List[tuple]:
    """p99 FCT per synthetic matrix on an idle fabric (no repairs)."""
    topology = build_fattree(k=FABRIC_K,
                             rng=np.random.default_rng(seed + 1),
                             form_factor=FORM_FACTOR)
    endpoints = topology.switches(SwitchRole.TOR)
    patterns = [
        ("uniform", UniformPattern()),
        ("hotspot", HotspotPattern(hot_endpoints=HOT_TORS,
                                   hot_probability=HOT_PROBABILITY)),
        ("incast", IncastPattern(targets=1, incast_probability=0.5)),
    ]
    rows = []
    for name, pattern in patterns:
        traffic = TrafficState(topology.fabric, endpoints,
                               rng=np.random.default_rng(seed + 13),
                               max_equal_paths=MAX_EQUAL_PATHS)
        rng = np.random.default_rng(seed + 14)
        fct = []
        lost = 0.0
        next_id = 0
        for _ in range(5):
            src, dst = pattern.pairs(rng, DAY_FLOWS, len(endpoints))
            sizes = sample_sizes(rng, DAY_FLOWS)
            ids = np.arange(next_id, next_id + DAY_FLOWS,
                            dtype=np.int64)
            next_id += DAY_FLOWS
            window = traffic.offer_window(src, dst, sizes, ids,
                                          SAMPLE_SECONDS)
            fct.extend(window.fct[window.routable].tolist())
            lost += float((window.offered * window.congestion).sum())
        rows.append((name, float(np.percentile(fct, 99)), lost))
    return rows


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    # Two arms on one seed, compared window-for-window: serial.
    del execution
    horizon_days = 2.0 if quick else 6.0
    impact = ImpactConfig(hot_utilization=0.7,
                          max_defer_seconds=12 * 3600.0,
                          recheck_seconds=900.0)

    naive = _measure("naive", run_world(
        _arm_config(seed, horizon_days, impact=None)))
    aware = _measure("impact-aware", run_world(
        _arm_config(seed, horizon_days, impact=impact)))

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["scheduling", "maint windows", "p99 FCT (maint)",
         "mean p99 (maint)", "p99 FCT (all)", "cong. lost MB",
         "deferrals", "reseats"],
        title=f"Reseat campaign under diurnal hotspot traffic, "
              f"fat-tree k={FABRIC_K}, {horizon_days:g} days")
    for arm in (naive, aware):
        table.add_row(
            arm.label, str(arm.maintenance_windows),
            f"{arm.p99_maintenance * 1e3:.1f} ms",
            f"{arm.mean_p99_maintenance * 1e3:.1f} ms",
            f"{arm.p99_overall * 1e3:.1f} ms",
            f"{arm.congestion_lost_bytes / 1e6:.0f}",
            str(arm.deferrals), str(arm.reseats))
    result.add_table(table)

    sweep = _pattern_sweep(seed)
    pattern_table = Table(
        ["matrix", "p99 FCT", "congestion lost MB"],
        title=f"Synthetic matrices, {DAY_FLOWS} flows/window, "
              f"no maintenance")
    for name, p99, lost in sweep:
        pattern_table.add_row(name, f"{p99 * 1e3:.2f} ms",
                              f"{lost / 1e6:.0f}")
    result.add_table(pattern_table)

    # Series x-axes are numeric: 0=naive, 1=impact-aware; patterns in
    # sweep order (0=uniform, 1=hotspot, 2=incast).
    result.add_series("maintenance_p99_fct_seconds",
                      [(0, naive.mean_p99_maintenance),
                       (1, aware.mean_p99_maintenance)])
    result.add_series("pattern_p99_fct_seconds",
                      [(index, p99)
                       for index, (_, p99, _) in enumerate(sweep)])
    improvement = (naive.mean_p99_maintenance
                   / aware.mean_p99_maintenance
                   if aware.mean_p99_maintenance else float("nan"))
    result.note(
        f"impact-aware scheduling cut mean maintenance-window p99 FCT "
        f"{improvement:.1f}x (from "
        f"{naive.mean_p99_maintenance * 1e3:.1f} ms to "
        f"{aware.mean_p99_maintenance * 1e3:.1f} ms) by deferring "
        f"{aware.deferrals} times into the traffic trough; both arms "
        f"completed comparable physical work "
        f"({naive.reseats} vs {aware.reseats} reseats)")
    result.note(
        "the gate asks the columnar engine one question per repair — "
        "projected ECMP-sibling-group utilization if this link's "
        "last-window bytes moved over — which the struct-of-arrays "
        "accounting answers from live per-link columns")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
