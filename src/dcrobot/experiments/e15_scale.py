"""E15 — Hall-scale fabrics: one controller from k=4 toys to the hall.

Paper anchor: §2 — the vision is *datacenter* robotics: "networking
equipment i.e. switches and the cabling" maintained by a single
self-maintenance plane spanning the hall, not a per-pod toy.  The
simulator must therefore sustain production-scale fabrics; this
experiment measures how the columnar fabric state
(:class:`dcrobot.network.state.FabricState`) changes the scaling law.

Each fabric is run twice on the same seed — once with the legacy
per-link object loops, once with the vectorized batch kernels — and the
two world summaries are compared field by field.  The kernels are
designed to be *bit-identical* (same RNG stream consumption, same float
operation order), so the speedup column comes with a built-in
correctness proof: every measurement in the summary, availability
included, matches exactly.

Reported: links, wall-clock for both paths, speedup, and whether the
summaries were identical.  Fabrics beyond the legacy path's practical
reach (k=32: ~12k links) run vectorized-only, which is the point.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional, Tuple

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    WorldConfig,
    WorldSummary,
    run_world,
    summarize_world,
)
from dcrobot.metrics.report import Table
from dcrobot.topology.fattree import build_fattree
from dcrobot.topology.gpu import build_gpu_cluster

EXPERIMENT_ID = "e15"
TITLE = "Hall-scale control loop: columnar kernels vs per-link loops"
PAPER_ANCHOR = "§2: one self-maintenance plane spanning the datacenter"


def _timed_world(config: WorldConfig) -> Tuple[WorldSummary, float]:
    """Run one world to the horizon; (summary, wall-clock seconds)."""
    started = time.perf_counter()
    summary = summarize_world(run_world(config))
    return summary, time.perf_counter() - started


def _identical(left: WorldSummary, right: WorldSummary) -> bool:
    return dataclasses.asdict(left) == dataclasses.asdict(right)


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    # Wall-clock comparisons need a quiet machine, not a process pool:
    # trials run serially regardless of ``execution``.
    del execution
    horizon_days = 2.0 if quick else 10.0
    fabrics = [("fat-tree k=4", build_fattree, {"k": 4}, True),
               ("fat-tree k=8", build_fattree, {"k": 8}, True)]
    if not quick:
        fabrics.append(("fat-tree k=16", build_fattree, {"k": 16}, True))
        fabrics.append(
            ("fat-tree k=32", build_fattree, {"k": 32}, False))
    else:
        fabrics.append(("fat-tree k=16", build_fattree, {"k": 16}, True))
    fabrics.append(("512-GPU cluster", build_gpu_cluster,
                    {"servers": 128, "gpus_per_server": 4}, True))

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["fabric", "links", "legacy s", "columnar s", "speedup",
         "bit-identical"],
        title="One controller, growing halls: wall-clock per "
              f"{horizon_days:g}-day campaign (L3 automation)")

    speedup_series = []
    wallclock_series = []
    parity_series = []
    best_speedup = 0.0
    best_label = ""
    for label, builder, kwargs, run_legacy in fabrics:
        config = WorldConfig(
            topology_builder=builder, topology_kwargs=kwargs,
            horizon_days=horizon_days, seed=seed,
            level=AutomationLevel.L3_HIGH_AUTOMATION)
        summary, columnar_seconds = _timed_world(
            dataclasses.replace(config, vectorized=True))
        links = summary.link_count
        wallclock_series.append((links, columnar_seconds))
        if run_legacy:
            legacy_summary, legacy_seconds = _timed_world(
                dataclasses.replace(config, vectorized=False))
            identical = _identical(summary, legacy_summary)
            speedup = legacy_seconds / columnar_seconds
            speedup_series.append((links, speedup))
            parity_series.append((links, 1.0 if identical else 0.0))
            if speedup > best_speedup:
                best_speedup, best_label = speedup, label
            table.add_row(label, str(links), f"{legacy_seconds:.1f}",
                          f"{columnar_seconds:.1f}", f"{speedup:.1f}x",
                          "yes" if identical else "NO")
        else:
            table.add_row(label, str(links), "(out of reach)",
                          f"{columnar_seconds:.1f}", "-", "-")

    result.add_table(table)
    result.add_series("speedup_vs_links", speedup_series)
    result.add_series("wallclock_vs_links_vectorized", wallclock_series)
    result.add_series("parity_vs_links", parity_series)
    result.note(f"peak measured speedup {best_speedup:.1f}x at "
                f"{best_label}; every timed pair produced "
                f"field-for-field identical world summaries on the "
                f"shared seed, so the speed is free of modelling drift")
    result.note("the legacy loops walk every Link object every tick; "
                "the columnar path touches contiguous arrays, so the "
                "per-tick cost is dominated by the handful of links "
                "that actually change — the hall scales, the "
                "controller does not notice")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
