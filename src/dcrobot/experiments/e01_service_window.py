"""E1 — Service window: human ticketing vs robotic self-maintenance.

Paper anchor: §2 — "the significant reduction of the service window for
failures, potentially shrinking the duration from hours and days to
literally minutes."

Same fault environment, two worlds: Level 0 (technicians + tickets) and
Level 3 (autonomous robots for reseat/clean/swap).  Reported: the
repair-time (detection → verified fix) distribution and resulting link
availability.
"""

from __future__ import annotations

from typing import Optional

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, world_trial
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e1"
TITLE = "Service window: human ticketing vs self-maintaining network"
PAPER_ANCHOR = "§2: 'from hours and days to literally minutes'"


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 20.0 if quick else 90.0
    failure_scale = 3.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["mode", "incidents", "p50 ttr", "p95 ttr", "max ttr",
         "availability", "nines"],
        title="Repair service window, identical fault environment")

    param_sets = [
        {"label": label, "seed": seed,
         "config": WorldConfig(horizon_days=horizon_days,
                               failure_scale=failure_scale,
                               level=level, seed=seed)}
        for label, level in (
            ("L0 human ticketing", AutomationLevel.L0_NO_AUTOMATION),
            ("L3 self-maintaining", AutomationLevel.L3_HIGH_AUTOMATION))
    ]
    groups = run_trials(EXPERIMENT_ID, world_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    ratios = {}
    for group in groups:
        label = group.params["label"]
        summary = group.value
        stats = summary.repair_stats
        if stats is None:
            table.add_row(label, 0, "-", "-", "-",
                          f"{summary.availability_mean:.6f}",
                          f"{summary.availability_nines:.2f}")
            continue
        ratios[label] = stats.p50
        table.add_row(label, stats.count,
                      format_duration(stats.p50),
                      format_duration(stats.p95),
                      format_duration(stats.max),
                      f"{summary.availability_mean:.6f}",
                      f"{summary.availability_nines:.2f}")
        result.add_series(
            f"ttr_cdf_{label.split()[0]}",
            _cdf_points(summary.repair_times))

    result.add_table(table)
    if len(ratios) == 2:
        human, robot = ratios["L0 human ticketing"], \
            ratios["L3 self-maintaining"]
        result.note(
            f"median service window speedup: {human / robot:.0f}x "
            f"({format_duration(human)} -> {format_duration(robot)})")
    return result


def _cdf_points(times):
    ordered = sorted(times)
    count = len(ordered)
    return [(value, (index + 1) / count)
            for index, value in enumerate(ordered)]


if __name__ == "__main__":
    print(run(quick=True).render())
