"""Command-line entry point: ``python -m dcrobot.experiments <id|all>``."""

from __future__ import annotations

import argparse
import sys
import time

from dcrobot.experiments import DESCRIPTIONS, REGISTRY, run_experiment
from dcrobot.experiments.parallel import (
    DEFAULT_CACHE_DIR,
    Execution,
    TrialCache,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m dcrobot.experiments",
        description="Reproduce the paper's experiments (E1-E14).")
    parser.add_argument(
        "experiment", nargs="?",
        help="experiment id (e1..e14), 'all', or 'list'")
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="print each experiment id with its one-line description "
             "and exit")
    parser.add_argument("--full", action="store_true",
                        help="full-scale run (slower, paper-grade)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for trial fan-out "
             "(1 = serial, 0 = one per CPU; default 1)")
    parser.add_argument(
        "--trials", type=int, default=1, metavar="N",
        help="Monte-Carlo replicates per trial point; tables report "
             "across-replicate means (default 1)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every trial instead of reusing the on-disk "
             "trial cache")
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"trial-cache location (default {DEFAULT_CACHE_DIR})")
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="trace one designated trial and write its spans as JSONL "
             "(implies observability; single experiment only)")
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the observed trial's metrics snapshot "
             "(.prom/.txt = Prometheus text, else JSON; "
             "implies observability; single experiment only)")
    return parser


def execution_from_args(args: argparse.Namespace) -> Execution:
    cache = None if args.no_cache else TrialCache(args.cache_dir)
    return Execution(jobs=args.jobs, trials=args.trials, cache=cache)


def _ordered_ids():
    """Registry ids in numeric order (e2 before e10)."""
    return sorted(REGISTRY, key=lambda eid: (len(eid), eid))


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_experiments or args.experiment == "list":
        for experiment_id in _ordered_ids():
            title, anchor = DESCRIPTIONS[experiment_id]
            print(f"{experiment_id:>4}  {title}  [{anchor}]")
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("error: an experiment id (or --list) is required",
              file=sys.stderr)
        return 2

    execution = execution_from_args(args)
    try:
        execution.resolved_jobs()
        execution.resolved_trials()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    targets = (_ordered_ids() if args.experiment == "all"
               else [args.experiment.lower()])
    # Validate up front so a typo fails with one clean line before any
    # experiment runs — and so a KeyError raised *inside* an experiment
    # is never mistaken for an unknown id.
    unknown = [target for target in targets if target not in REGISTRY]
    if unknown:
        print(f"error: unknown experiment {unknown[0]!r}; "
              f"available: {', '.join(sorted(REGISTRY))} "
              f"(or 'all', 'list')", file=sys.stderr)
        return 2
    observe = bool(args.trace_out or args.metrics_out)
    if observe and len(targets) != 1:
        print("error: --trace-out/--metrics-out need a single "
              "experiment, not 'all'", file=sys.stderr)
        return 2
    for experiment_id in targets:
        started = time.time()
        try:
            result = run_experiment(experiment_id,
                                    quick=not args.full,
                                    seed=args.seed,
                                    execution=execution,
                                    observe=observe)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        print(f"[{experiment_id} finished in "
              f"{time.time() - started:.1f}s]\n")
        if args.trace_out:
            if result.save_trace_jsonl(args.trace_out):
                print(f"[trace written to {args.trace_out}]")
            else:
                print(f"warning: {experiment_id} returned no trace",
                      file=sys.stderr)
        if args.metrics_out:
            if result.save_metrics(args.metrics_out):
                print(f"[metrics written to {args.metrics_out}]")
            else:
                print(f"warning: {experiment_id} returned no metrics",
                      file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
