"""Command-line entry point: ``python -m dcrobot.experiments <id|all>``."""

from __future__ import annotations

import argparse
import sys
import time

from dcrobot.experiments import DESCRIPTIONS, REGISTRY, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m dcrobot.experiments",
        description="Reproduce the paper's experiments (E1-E12).")
    parser.add_argument(
        "experiment",
        help="experiment id (e1..e12), 'all', or 'list'")
    parser.add_argument("--full", action="store_true",
                        help="full-scale run (slower, paper-grade)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id in sorted(REGISTRY):
            title, anchor = DESCRIPTIONS[experiment_id]
            print(f"{experiment_id:>4}  {title}  [{anchor}]")
        return 0

    targets = (sorted(REGISTRY) if args.experiment == "all"
               else [args.experiment])
    for experiment_id in targets:
        started = time.time()
        try:
            result = run_experiment(experiment_id,
                                    quick=not args.full,
                                    seed=args.seed)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        print(result.render())
        print(f"[{experiment_id} finished in "
              f"{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
