"""E4 — Right-provisioning redundancy under self-maintenance.

Paper anchor: §2 — "there is real potential for right-provisioning
redundant hardware components, thus reducing the need for excessive
overprovisioned online redundancy due to greater control over the
window of vulnerability during hardware failures."

A leaf–spine fabric is built with r parallel uplinks per leaf–spine
pair, r in 1..3.  A leaf meets SLA while it retains at least one
operational uplink to *every* spine (full path diversity for peak
load).  We sweep r for Level 0 and Level 3 maintenance and report the
SLA availability — showing robots reach a given availability target
with fewer redundant links (hardware the operator no longer has to buy
and power).
"""

from __future__ import annotations

from typing import Dict, Optional

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import DAY, WorldConfig, build_world
from dcrobot.metrics.report import Table
from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology.leafspine import build_leafspine

EXPERIMENT_ID = "e4"
TITLE = "Redundancy needed for an availability target, by maintenance mode"
PAPER_ANCHOR = "§2: right-provisioning redundant hardware"

_SAMPLE_EVERY = 1800.0

_LEVELS = {"L0": AutomationLevel.L0_NO_AUTOMATION,
           "L3": AutomationLevel.L3_HIGH_AUTOMATION}


def _sla_fraction(world, horizon_seconds: float, sample_every: float):
    """Run the world, sampling per-leaf full-diversity SLA compliance."""
    topology = world.topology
    fabric = world.fabric
    leaves = topology.switches(SwitchRole.LEAF)
    spines = set(topology.switches(SwitchRole.SPINE))
    compliant = [0, 0]

    def sampler(sim=world.sim):
        while True:
            yield sim.timeout(sample_every)
            for leaf in leaves:
                up_spines = {link.endpoint_ids[1]
                             for link in fabric.links_of(leaf)
                             if link.operational
                             and link.endpoint_ids[1] in spines}
                compliant[1] += 1
                if up_spines == spines:
                    compliant[0] += 1

    world.sim.process(sampler())
    world.sim.run(until=horizon_seconds)
    return compliant[0] / max(compliant[1], 1)


def _trial(params: Dict, seed: int) -> Dict:
    """One (redundancy, level) leaf–spine world with SLA sampling."""
    horizon_days = params["horizon_days"]
    world = build_world(WorldConfig(
        topology_builder=build_leafspine,
        topology_kwargs={"leaves": 6, "spines": 3,
                         "uplinks_per_pair": params["r"]},
        horizon_days=horizon_days, seed=seed,
        failure_scale=params["failure_scale"],
        level=_LEVELS[params["level"]]))
    fraction = _sla_fraction(world, horizon_days * DAY, _SAMPLE_EVERY)
    return {"fraction": fraction,
            "link_count": world.topology.link_count}


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 15.0 if quick else 60.0
    redundancies = (1, 2, 3)
    failure_scale = 6.0  # a stressed fabric makes the gap visible

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["uplinks per pair", "links total", "L0 SLA avail.",
         "L3 SLA avail."],
        title="Full-path-diversity availability vs redundancy")

    param_sets = [
        {"label": f"{level}@r{r}", "r": r, "level": level,
         "seed": seed + r, "horizon_days": horizon_days,
         "failure_scale": failure_scale}
        for r in redundancies
        for level in ("L0", "L3")
    ]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_key = {(group.params["r"], group.params["level"]): group
              for group in groups}

    series = {"L0": [], "L3": []}
    for r in redundancies:
        row = [r, None]
        for label in ("L0", "L3"):
            group = by_key[(r, label)]
            fraction = group.mean("fraction")
            series[label].append((r, fraction))
            row[1] = group.value["link_count"]
            row.append(f"{fraction:.5f}")
        table.add_row(*row)

    result.add_table(table)
    result.add_series("sla_vs_redundancy_L0", series["L0"])
    result.add_series("sla_vs_redundancy_L3", series["L3"])

    # Where does each mode first hit three nines?
    target = 0.999
    hits = {}
    for label in ("L0", "L3"):
        hit = next((r for r, value in series[label] if value >= target),
                   None)
        hits[label] = hit
        result.note(f"{label}: first redundancy level reaching "
                    f">= {target:.3f} SLA availability: "
                    f"{hit if hit is not None else 'none in sweep'}")

    # §4 "Energy efficiency": every redundancy level robots let you
    # skip is optics power you never burn.
    if hits.get("L0") and hits.get("L3") and hits["L0"] > hits["L3"]:
        from dcrobot.metrics.energy import EnergyModel

        reference = build_world(WorldConfig(
            topology_builder=build_leafspine,
            topology_kwargs={"leaves": 6, "spines": 3,
                             "uplinks_per_pair": hits["L3"]},
            horizon_days=0.1, seed=seed, failure_scale=0.0))
        links_saved = 6 * 3 * (hits["L0"] - hits["L3"])
        watts = EnergyModel().redundancy_power_saved(
            reference.fabric, links_saved)
        result.note(f"right-provisioning r={hits['L0']} -> "
                    f"r={hits['L3']} removes {links_saved} always-on "
                    f"links: {watts:.0f} W of optics (plus cooling) "
                    f"saved continuously")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
