"""E19 — Campus scale: sharded halls behind a federated control plane.

Paper anchor: §4 — the end state is a self-maintaining *campus*, not
a single hall.  A ``WorldConfig(halls=N)`` campus composes one
columnar shard per hall (S16/S17 worlds, each with its own
controller, chaos, and safety monitor) plus a boundary shard of
cross-hall links under a thin federation (S20).  Because the shards
share nothing, a full E13-style chaos run costs near-constant
wall-clock *per hall* as the campus grows — and, run in parallel, the
campus is bounded by its slowest shard rather than the sum.

The sweep runs 1 → 10 halls of the E13 chaos world (moderate chaos,
resilient controller, safety monitor on every hall) and reports
per-hall and slowest-shard wall-clock, federated incident totals,
cross-hall incidents routed/concluded by the federation, and
campus-wide SMI.  ``benchmarks/bench_campus_scale.py`` gates the
flat-cost claim (10-hall per-hall wall within 1.5x of 1-hall) and the
1-hall bit-identity claim in CI.
"""

from __future__ import annotations

import statistics
from typing import Dict, Optional

from dcrobot.chaos.config import ChaosConfig
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.controller import ControllerConfig
from dcrobot.core.resilience import ResilienceConfig
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import DAY, WorldConfig
from dcrobot.metrics.report import Table

# NOTE: dcrobot.shard is imported lazily inside the trial/run
# functions — the experiments package initializes before the shard
# package (shard builds on the runner), so a module-level import here
# would be circular.

EXPERIMENT_ID = "e19"
TITLE = "Campus scale: sharded halls, federated control plane"
PAPER_ANCHOR = "§4: the self-maintaining campus"


def campus_config(halls: int, horizon_days: float,
                  seed: int) -> WorldConfig:
    """The E13-style chaos world, replicated per hall."""
    return WorldConfig(
        horizon_days=horizon_days, seed=seed, failure_scale=3.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        chaos=ChaosConfig.moderate(), safety=True,
        stuck_after_seconds=5.0 * DAY,
        mute_ttl_seconds=2.0 * DAY,
        controller_config=ControllerConfig(
            resilience=ResilienceConfig()),
        halls=halls)


def _trial(params: Dict, seed: int) -> Dict:
    """One campus run (halls serial in-process); returns the
    federated scoreboard plus wall-clock telemetry."""
    from dcrobot.shard import run_campus

    summary = run_campus(campus_config(
        params["halls"], params["horizon_days"], seed))
    walls = summary.hall_wall_seconds
    return {
        "halls": summary.halls,
        "incidents": summary.incidents,
        "closed": summary.closed_incidents,
        "resolution_rate": summary.mature_resolution_rate,
        "violations": summary.invariant_violations,
        "per_hall_wall": summary.per_hall_wall_seconds,
        "median_hall_wall": statistics.median(walls),
        "slowest_wall": summary.slowest_shard_seconds,
        "total_wall": summary.total_wall_seconds,
        "campus_smi": summary.campus_smi,
        "boundary_links": summary.boundary_links,
        "cross_hall_incidents": summary.cross_hall_incidents,
        "cross_hall_concluded": summary.cross_hall_concluded,
        "boundary_lost_bytes": summary.boundary_lost_bytes,
        "boundary_offered_bytes": summary.boundary_offered_bytes,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    from dcrobot.shard import run_campus

    sweep = (1, 2, 4) if quick else (1, 2, 4, 8, 10)
    horizon_days = 4.0 if quick else 10.0
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    param_sets = [{"halls": halls, "horizon_days": horizon_days}
                  for halls in sweep]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_halls = {group.params["halls"]: group for group in groups}

    table = Table(
        ["halls", "incidents", "concluded %", "violations",
         "per-hall wall s", "slowest shard s", "campus SMI",
         "cross-hall inc (concluded)"],
        title="Campus scale: E13-style chaos per hall, "
              "federated across shards")
    per_hall_series, smi_series, xh_series = [], [], []
    for halls in sweep:
        group = by_halls[halls]
        per_hall = group.mean("per_hall_wall")
        per_hall_series.append((halls, per_hall))
        smi_series.append((halls, group.mean("campus_smi")))
        xh_series.append((halls, group.mean("cross_hall_incidents")))
        table.add_row(
            str(halls),
            f"{group.mean('incidents'):.1f}",
            f"{100 * group.mean('resolution_rate'):.1f}",
            f"{group.mean('violations'):.1f}",
            f"{per_hall:.3f}",
            f"{group.mean('slowest_wall'):.3f}",
            f"{group.mean('campus_smi'):.3f}",
            f"{group.mean('cross_hall_incidents'):.1f} "
            f"({group.mean('cross_hall_concluded'):.1f})")
    result.add_table(table)
    result.add_series("per_hall_wall_vs_halls", per_hall_series)
    result.add_series("campus_smi_vs_halls", smi_series)
    result.add_series("cross_hall_incidents_vs_halls", xh_series)

    smallest, largest = sweep[0], sweep[-1]
    base = by_halls[smallest].mean("per_hall_wall")
    top = by_halls[largest].mean("per_hall_wall")
    ratio = top / base if base > 0 else float("inf")
    result.note(
        f"per-hall wall-clock stays near-flat as the campus grows: "
        f"{base:.3f}s at {smallest} hall(s) vs {top:.3f}s at "
        f"{largest} halls ({ratio:.2f}x) — a serial campus costs the "
        f"sum of its shards, never more per shard")

    # Shards share nothing, so a parallel campus is bounded by its
    # slowest shard plus pool overhead (demonstrated live; wall-clock,
    # hence outside the cached trial set).
    parallel = run_campus(
        campus_config(largest, horizon_days, seed + 1), jobs=4)
    result.note(
        f"{largest}-hall campus with jobs=4: total wall "
        f"{parallel.total_wall_seconds:.2f}s vs slowest shard "
        f"{parallel.slowest_shard_seconds:.2f}s and serial-sum "
        f"{sum(parallel.hall_wall_seconds):.2f}s — bounded by the "
        f"slowest shard, not the sum")
    largest_group = by_halls[largest]
    result.note(
        f"federation at {largest} halls: "
        f"{largest_group.mean('cross_hall_incidents'):.1f} cross-hall "
        f"incidents routed "
        f"({largest_group.mean('cross_hall_concluded'):.1f} concluded "
        f"before the horizon), "
        f"{largest_group.mean('boundary_lost_bytes'):.3g} of "
        f"{largest_group.mean('boundary_offered_bytes'):.3g} offered "
        f"boundary bytes lost, campus SMI "
        f"{largest_group.mean('campus_smi'):.3f}")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
