"""E3 — Repair amplification: cascading failures from physical contact.

Paper anchor: §1/§2 — technician motion near cables causes transient
failures in touched cables; "tight coupling and control will help
minimize repair amplification caused by cascading failures".

Two parts:

* **Contact physics sweep** — at increasing bundle densities, perform
  repeated reseat contacts with human hands vs the robot gripper and
  measure secondary failures per repair (the amplification factor).
* **Impact-aware scheduling ablation** — with draining of announced
  touches on/off, measure how many disturbances hit links still
  carrying routed traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.failures.cascade import (
    HUMAN_HANDS,
    ROBOT_GRIPPER,
    CascadeModel,
)
from dcrobot.failures.environment import Environment
from dcrobot.failures.health import HealthModel
from dcrobot.metrics.report import Table
from dcrobot.network.enums import CableKind
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import HallLayout
from dcrobot.network.switchgear import SwitchRole

EXPERIMENT_ID = "e3"
TITLE = "Repair amplification vs bundle density and contact profile"
PAPER_ANCHOR = "§1/§2: cascading failures, repair amplification"

_PROFILES = {"human": HUMAN_HANDS, "robot": ROBOT_GRIPPER}


def _bundle_world(density: int, seed: int):
    """Two switches joined by ``density`` cables in one tray bundle."""
    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2),
                    rng=rng, bundle_capacity=max(density, 1))
    a = fabric.add_switch(SwitchRole.TOR, radix=density,
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=density,
                          rack_id=fabric.layout.rack_at(0, 1).id)
    links = [fabric.connect(a.id, b.id, kind=CableKind.MPO)
             for _ in range(density)]
    environment = Environment(diurnal_amplitude_c=0.0)
    health = HealthModel(fabric, environment,
                         rng=np.random.default_rng(seed + 1))
    cascade = CascadeModel(fabric, health, environment,
                           rng=np.random.default_rng(seed + 2))
    return fabric, links, health, cascade


def _contact_trial(params: Dict, seed: int) -> Dict:
    """Repeated reseat contacts on one bundle, one contact profile."""
    density = params["density"]
    repairs = params["repairs"]
    profile = _PROFILES[params["profile"]]
    _fabric, links, _health, cascade = _bundle_world(density, seed)
    damaged = 0
    secondary = 0
    for index in range(repairs):
        report = cascade.touch(links[index % density], profile,
                               now=float(index) * 60.0)
        secondary += report.secondary_failures
        damaged += len(report.damaged_links)
        for link in links:  # cleared so damage doesn't saturate
            link.cable.damaged = False
    return {
        "factor": 1.0 + secondary / repairs,
        "damaged_per_k": 1000 * damaged / repairs,
    }


def _drain_trial(params: Dict, seed: int) -> Dict:
    """Touch rounds with/without impact-aware draining of announced
    contacts; count disturbances that hit undrained routed links."""
    from dcrobot.traffic.routing import EcmpRouter

    drain = params["drain"]
    rounds = params["rounds"]
    fabric, links, _health, cascade = _bundle_world(16, seed)
    EcmpRouter(fabric)
    hits = 0
    for index in range(rounds):
        target = links[index % len(links)]
        announced = cascade.predict_touched(target, HUMAN_HANDS)
        drained = set([target.id] + announced) if drain else set()
        report = cascade.touch(target, HUMAN_HANDS,
                               now=float(index) * 600.0)
        hits += sum(1 for link_id in report.disturbed_links
                    if link_id not in drained)
    return {"hits_per_100": 100 * hits / rounds}


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    repairs = 200 if quick else 1000
    densities = (4, 8, 16, 24)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["bundle density", "human ampl.", "robot ampl.",
         "human damaged/1k", "robot damaged/1k"],
        title=f"Amplification factor over {repairs} reseat contacts")

    param_sets = [
        {"label": f"{profile}@{density}", "density": density,
         "profile": profile, "repairs": repairs,
         "seed": seed + density}
        for density in densities
        for profile in ("human", "robot")
    ]
    groups = run_trials(EXPERIMENT_ID, _contact_trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_key = {(group.params["density"], group.params["profile"]): group
              for group in groups}

    human_series, robot_series = [], []
    for density in densities:
        row = [density]
        for profile, series in (("human", human_series),
                                ("robot", robot_series)):
            group = by_key[(density, profile)]
            factor = group.mean("factor")
            series.append((density, factor))
            row.append(f"{factor:.3f}")
            row.append(f"{group.mean('damaged_per_k'):.2f}")
        # Interleave columns: human ampl, robot ampl, human dmg, robot dmg.
        table.add_row(row[0], row[1], row[3], row[2], row[4])

    result.add_table(table)
    result.add_series("amplification_human", human_series)
    result.add_series("amplification_robot", robot_series)

    # Part 2: impact-aware drain ablation.
    drain_table = Table(
        ["scheduling", "disturbances hitting routed traffic (per 100)"],
        title="Impact-aware drain of announced touches (human contacts, "
              "density 16)")
    rounds = 100 if quick else 400
    drain_params = [
        {"label": label, "drain": drain, "rounds": rounds,
         "seed": seed + 99}
        for label, drain in (("naive (no drain)", False),
                             ("impact-aware (drain announced)", True))
    ]
    drain_groups = run_trials(EXPERIMENT_ID, _drain_trial, drain_params,
                              base_seed=seed + 1, execution=execution,
                              result=result)
    for group in drain_groups:
        drain_table.add_row(group.params["label"],
                            f"{group.mean('hits_per_100'):.1f}")
    result.add_table(drain_table)
    result.note("robot gripper amplification stays ~1.0 at every "
                "density; human amplification grows with loom density")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
