"""Experiment harness (S12): every paper claim as a runnable experiment.

Each experiment module exposes ``run(quick=True, seed=0) ->
ExperimentResult``; the registry maps experiment ids (``e1`` .. ``e20``)
to those functions.  Run one from the command line::

    python -m dcrobot.experiments e1 [--full] [--seed N]
"""

import inspect
from typing import Callable, Dict, Optional

from dcrobot.experiments import (
    e01_service_window,
    e02_tail_latency,
    e03_cascade,
    e04_rightprovisioning,
    e05_proactive,
    e06_automation_levels,
    e07_escalation,
    e08_robot_ops,
    e09_topology_smi,
    e10_predictive_ml,
    e11_mobility_scopes,
    e12_gpu_cluster,
    e13_chaos_resilience,
    e14_crash_recovery,
    e15_scale,
    e16_traffic_maintenance,
    e17_twin_planning,
    e18_fleet_healing,
    e19_campus_scale,
    e20_service_load,
)
from dcrobot.experiments.parallel import (
    Execution,
    TrialCache,
    run_trials,
)
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import (
    RunResult,
    WorldConfig,
    WorldSummary,
    build_world,
    run_world,
    summarize_world,
    world_trial,
)

_MODULES = (
    e01_service_window,
    e02_tail_latency,
    e03_cascade,
    e04_rightprovisioning,
    e05_proactive,
    e06_automation_levels,
    e07_escalation,
    e08_robot_ops,
    e09_topology_smi,
    e10_predictive_ml,
    e11_mobility_scopes,
    e12_gpu_cluster,
    e13_chaos_resilience,
    e14_crash_recovery,
    e15_scale,
    e16_traffic_maintenance,
    e17_twin_planning,
    e18_fleet_healing,
    e19_campus_scale,
    e20_service_load,
)

#: Experiment id -> run function.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

#: Experiment id -> (title, paper anchor).
DESCRIPTIONS: Dict[str, tuple] = {
    module.EXPERIMENT_ID: (module.TITLE, module.PAPER_ANCHOR)
    for module in _MODULES
}


def run_experiment(experiment_id: str, quick: bool = True,
                   seed: int = 0,
                   execution: Optional[Execution] = None,
                   observe: bool = False) -> ExperimentResult:
    """Run one experiment by id (``e1`` .. ``e20``).

    ``execution`` selects worker count, Monte-Carlo replicates, and
    the trial cache (see :class:`dcrobot.experiments.parallel.Execution`);
    ``None`` keeps the serial, uncached default.  ``observe`` asks the
    experiment to trace one designated trial and attach the trace and
    metrics snapshot to the result; experiments without observability
    support raise ``ValueError``.
    """
    try:
        runner = REGISTRY[experiment_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(REGISTRY)}") from None
    kwargs = {"quick": quick, "seed": seed, "execution": execution}
    if observe:
        if "observe" not in inspect.signature(runner).parameters:
            supported = sorted(
                key for key, fn in REGISTRY.items()
                if "observe" in inspect.signature(fn).parameters)
            raise ValueError(
                f"experiment {experiment_id!r} does not support "
                f"observability; use one of: {supported}")
        kwargs["observe"] = True
    return runner(**kwargs)


__all__ = [
    "REGISTRY",
    "DESCRIPTIONS",
    "run_experiment",
    "ExperimentResult",
    "Execution",
    "TrialCache",
    "run_trials",
    "WorldConfig",
    "WorldSummary",
    "RunResult",
    "build_world",
    "run_world",
    "summarize_world",
    "world_trial",
]
