"""E2 — Flapping links and tail latency, by repair policy.

Paper anchor: §1 — "the curse of a flapping link is the associated
increase in tail latency for the network."

A fat-tree carries sampled flows while one link is heavily contaminated
(a gray failure: it flaps rather than dies).  Three worlds differ only
in who repairs: nobody, Level-0 technicians, Level-3 robots.  Reported:
p50/p99 flow-completion time over the post-fault window and the fraction
of time the fabric still had a flapping link.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.automation import AutomationLevel
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import DAY, WorldConfig, build_world
from dcrobot.metrics.report import Table
from dcrobot.network.switchgear import SwitchRole
from dcrobot.traffic.flows import FlowGenerator
from dcrobot.traffic.latency import LatencyModel
from dcrobot.traffic.routing import EcmpRouter, NoRouteError

EXPERIMENT_ID = "e2"
TITLE = "Tail latency under a flapping link, by repair policy"
PAPER_ANCHOR = "§1: flapping links inflate tail latency"

_MODES = (
    ("no repair", "none", AutomationLevel.L0_NO_AUTOMATION),
    ("L0 humans", "reactive", AutomationLevel.L0_NO_AUTOMATION),
    ("L3 robots", "reactive", AutomationLevel.L3_HIGH_AUTOMATION),
)

_FAULT_TIME = 0.5 * DAY
_SAMPLE_EVERY = 1800.0


def _trial(params: Dict, seed: int) -> Dict:
    """One world: contaminate a link, sample flows, report FCT tails."""
    horizon_days = params["horizon_days"]
    flows_per_sample = params["flows_per_sample"]
    world = build_world(WorldConfig(
        horizon_days=horizon_days, seed=seed, level=params["level"],
        policy=params["policy"], failure_scale=0.0,
        dust_rate_per_day=0.0, aging_rate_per_day=0.0))
    sim = world.sim
    fabric = world.fabric
    tors = world.topology.switches(SwitchRole.TOR)
    router = EcmpRouter(fabric)
    generator = FlowGenerator(tors,
                              rng=np.random.default_rng(seed + 40))
    latency = LatencyModel(rng=np.random.default_rng(seed + 41))
    victim = next(link for link in fabric.links.values()
                  if link.cable.cleanable)
    samples = []
    lossy_samples = [0, 0]  # [lossy, total]

    def contaminate():
        # Calibrated dirt: firmly marginal (flapping), never
        # hard-down on its own — the gray-failure regime.
        yield sim.timeout(_FAULT_TIME)
        victim.cable.end_a.add_contamination(0.75, cores=[0])
        world.health.evaluate_link(victim, sim.now)

    def sample_flows():
        while True:
            yield sim.timeout(_SAMPLE_EVERY)
            if sim.now < _FAULT_TIME:
                continue
            router.invalidate()
            lossy_samples[1] += 1
            if any(link.loss_rate > 1e-5 and link.operational
                   for link in fabric.links.values()):
                lossy_samples[0] += 1
            for flow in generator.sample_batch(flows_per_sample):
                try:
                    path = router.route(flow.src, flow.dst,
                                        flow_hash=flow.flow_id)
                except NoRouteError:
                    continue
                samples.append(latency.sample_fct(flow, path))

    sim.process(contaminate())
    sim.process(sample_flows())
    sim.run(until=horizon_days * DAY)

    fct = np.asarray(samples)
    return {
        "p50_ms": float(np.percentile(fct, 50)) * 1e3,
        "p99_ms": float(np.percentile(fct, 99)) * 1e3,
        "lossy_fraction": (lossy_samples[0] / lossy_samples[1]
                           if lossy_samples[1] else 0.0),
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 6.0 if quick else 21.0
    flows_per_sample = 60 if quick else 150

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["mode", "p50 fct (ms)", "p99 fct (ms)", "p99/p50",
         "lossy-link time %"],
        title="Flow completion times while a gray failure is live")

    param_sets = [
        {"label": label, "policy": policy, "level": level,
         "seed": seed, "horizon_days": horizon_days,
         "flows_per_sample": flows_per_sample}
        for label, policy, level in _MODES
    ]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)

    for group in groups:
        label = group.params["label"]
        p50 = group.mean("p50_ms")
        p99 = group.mean("p99_ms")
        lossy_fraction = group.mean("lossy_fraction")
        table.add_row(label, f"{p50:.3f}", f"{p99:.3f}",
                      f"{p99 / max(p50, 1e-9):.1f}",
                      f"{100 * lossy_fraction:.1f}")
        result.add_series(f"fct_p99_{label.replace(' ', '_')}",
                          [(horizon_days, p99)])

    result.add_table(table)
    result.note("the victim link is contaminated at t=12h; ECMP routes "
                "around hard-down phases but the good phases of the "
                "flap carry (lossy) traffic — that is the tail poison")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
