"""Parallel trial execution for the experiment harness.

Every paper experiment decomposes into *trials*: self-contained
(world-config, seed) units whose results depend on nothing but their
inputs.  This module owns fanning those trials across CPU cores,
deriving deterministic per-trial RNG substreams, caching completed
trials on disk, and collecting per-trial wall-clock telemetry.

Guarantees:

* **Determinism** — trial seeds are fixed *before* dispatch (replicate
  0 keeps the experiment's canonical seed; Monte-Carlo replicates draw
  :func:`dcrobot.sim.rng.trial_seed` substreams of ``(experiment_id,
  base_seed, trial_index)``), so a parallel run is bit-identical to a
  serial run of the same trials.
* **Caching** — results are stored under ``.dcrobot_cache/`` keyed by
  a stable hash of ``(experiment_id, params, seed, code_version)``;
  editing any source file under ``dcrobot`` invalidates every entry.
* **Telemetry** — each trial reports wall-clock seconds and whether it
  was served from cache; :func:`run_trials` aggregates these into the
  :class:`~dcrobot.experiments.result.ExperimentResult`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from dcrobot.core.journal import JOURNAL_SCHEMA_VERSION
from dcrobot.obs.export import OBS_SCHEMA_VERSION

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".dcrobot_cache"

#: A trial function: ``trial_fn(params, seed) -> picklable value``.
TrialFn = Callable[[Dict[str, Any], int], Any]


# -- execution policy --------------------------------------------------------


@dataclasses.dataclass
class Execution:
    """How an experiment's trials should be executed.

    ``jobs`` is the worker-process count: ``None`` or ``1`` runs trials
    serially in-process (no pool), ``0`` means one worker per CPU.
    ``trials`` is the Monte-Carlo replicate count per trial point.
    ``cache`` is a :class:`TrialCache` or ``None`` to disable caching.
    """

    jobs: Optional[int] = None
    trials: int = 1
    cache: Optional["TrialCache"] = None

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return 1
        if self.jobs == 0:
            return os.cpu_count() or 1
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        return self.jobs

    def resolved_trials(self) -> int:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        return self.trials


# -- stable hashing of trial identity ----------------------------------------


def _canonical(value: Any) -> str:
    """A stable, recursion-safe text form of a trial's parameters.

    Covers what experiment params actually contain: primitives,
    containers, enums, dataclasses (``WorldConfig``, ``FleetConfig``,
    fault traces, ...), numpy scalars/arrays, and module-level
    callables (topology builders), which hash by qualified name.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={_canonical(getattr(value, field.name))}"
            for field in dataclasses.fields(value))
        return f"{type(value).__qualname__}({fields})"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, dict):
        items = ",".join(
            f"{_canonical(key)}:{_canonical(value[key])}"
            for key in sorted(value, key=repr))
        return "{" + items + "}"
    if isinstance(value, (list, tuple, set, frozenset)):
        items = (sorted((_canonical(item) for item in value))
                 if isinstance(value, (set, frozenset))
                 else [_canonical(item) for item in value])
        return "[" + ",".join(items) + "]"
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__",
                       getattr(value, "__name__", repr(value)))
        return f"callable:{module}.{name}"
    if hasattr(value, "tolist"):  # numpy scalar or array
        return f"np:{value.tolist()!r}"
    if hasattr(value, "__dict__") and not isinstance(
            value, (str, bytes, int, float, complex, bool)):
        # Plain objects (e.g. fitted models) hash by attribute state,
        # not by the default repr's memory address.
        attrs = ",".join(
            f"{name}={_canonical(value.__dict__[name])}"
            for name in sorted(value.__dict__))
        return f"{type(value).__qualname__}({attrs})"
    return f"{type(value).__name__}:{value!r}"


def stable_hash(value: Any) -> str:
    """A short hex digest of :func:`_canonical` — the cache-key atom."""
    return hashlib.sha256(
        _canonical(value).encode("utf-8")).hexdigest()[:32]


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """A digest over every ``dcrobot`` source file (cached per process).

    Any edit to the package changes the digest, invalidating all cached
    trial results — stale caches can never leak into new code's runs.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import dcrobot

        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(dcrobot.__file__))
        for directory, _subdirs, files in sorted(os.walk(root)):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


# -- the on-disk trial cache -------------------------------------------------


class TrialCache:
    """Pickle-per-trial result cache under ``.dcrobot_cache/``.

    Layout: ``<root>/<experiment_id>/<key>.pkl`` where ``key`` is
    :func:`cache_key`'s digest.  Entries are content-addressed, so
    clearing is just deleting the directory (or ``clear()``).
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, experiment_id: str, key: str) -> str:
        return os.path.join(self.root, experiment_id, f"{key}.pkl")

    def get(self, experiment_id: str, key: str) -> Optional[tuple]:
        """``(value,)`` on a hit (so cached ``None`` is distinguishable),
        else ``None``."""
        path = self._path(experiment_id, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError,
                AttributeError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return (value,)

    def put(self, experiment_id: str, key: str, value: Any) -> None:
        path = self._path(experiment_id, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(tmp, path)
        except (OSError, pickle.PickleError):
            # Unpicklable or unwritable results simply go uncached.
            if os.path.exists(tmp):
                os.unlink(tmp)

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


def cache_key(experiment_id: str, params: Dict[str, Any],
              seed: int, version: Optional[str] = None,
              trial_fn: Optional[TrialFn] = None) -> str:
    """The stable identity of one trial's result.

    The journal schema version is part of the identity: a schema bump
    changes what crash-recovery trials replay (and therefore their
    results) even when no source file hashed into ``code_version()``
    moved, e.g. when cached results travel between checkouts.  The obs
    schema version rides along for the same reason: observed trials
    carry trace/metrics exports whose shape it governs.
    """
    fn_id = (f"{trial_fn.__module__}.{trial_fn.__qualname__}"
             if trial_fn is not None else "")
    return stable_hash((experiment_id, fn_id, _canonical(params),
                        int(seed), JOURNAL_SCHEMA_VERSION,
                        OBS_SCHEMA_VERSION,
                        version if version is not None
                        else code_version()))


# -- trial specs and outcomes ------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit: params + a pre-derived seed."""

    experiment_id: str
    index: int           #: flat index across the experiment's trials
    point: int           #: which param set this trial belongs to
    replicate: int       #: Monte-Carlo replicate number (0-based)
    seed: int
    params: Dict[str, Any]

    @property
    def label(self) -> str:
        base = self.params.get("label", f"trial{self.point}")
        if self.replicate:
            return f"{base}#r{self.replicate}"
        return str(base)


@dataclasses.dataclass
class TrialOutcome:
    """One executed (or cache-served) trial."""

    spec: TrialSpec
    value: Any
    wall_seconds: float
    cached: bool = False


class TrialGroup:
    """All replicates of one trial point, in replicate order."""

    def __init__(self, params: Dict[str, Any],
                 outcomes: List[TrialOutcome]) -> None:
        self.params = params
        self.outcomes = outcomes

    @property
    def value(self) -> Any:
        """Replicate 0's value — the canonical (legacy-seed) result."""
        return self.outcomes[0].value

    @property
    def values(self) -> List[Any]:
        return [outcome.value for outcome in self.outcomes]

    def metric(self, name: str, value: Optional[Any] = None) -> Any:
        source = self.outcomes[0].value if value is None else value
        if isinstance(source, dict):
            return source[name]
        return getattr(source, name)

    def mean(self, name: str) -> float:
        """Across-replicate mean of one numeric metric."""
        metrics = [self.metric(name, value) for value in self.values]
        metrics = [m for m in metrics if m is not None]
        if not metrics:
            raise ValueError(f"metric {name!r} is None in every "
                             f"replicate")
        return float(sum(metrics)) / len(metrics)


# -- execution ---------------------------------------------------------------


def _execute(trial_fn: TrialFn, spec: TrialSpec) -> TrialOutcome:
    """Run one trial, timing it (also the worker-process entry point)."""
    started = time.perf_counter()
    value = trial_fn(spec.params, spec.seed)
    return TrialOutcome(spec=spec, value=value,
                        wall_seconds=time.perf_counter() - started)


def build_specs(experiment_id: str,
                param_sets: Sequence[Dict[str, Any]],
                base_seed: int, trials: int) -> List[TrialSpec]:
    """Flatten param sets × replicates into seeded trial specs.

    Replicate 0 uses the param set's own ``seed`` entry (the
    experiment's canonical derivation) when present, falling back to
    the substream; replicates >= 1 always draw fresh
    ``trial_seed(experiment_id, base_seed, index)`` substreams.
    """
    from dcrobot.sim.rng import trial_seed

    specs = []
    index = 0
    for point, params in enumerate(param_sets):
        for replicate in range(trials):
            derived = trial_seed(experiment_id, base_seed, index)
            if replicate == 0 and "seed" in params:
                seed = int(params["seed"])
            else:
                seed = derived
            specs.append(TrialSpec(
                experiment_id=experiment_id, index=index, point=point,
                replicate=replicate, seed=seed, params=params))
            index += 1
    return specs


def run_trials(experiment_id: str, trial_fn: TrialFn,
               param_sets: Sequence[Dict[str, Any]], *,
               base_seed: int = 0,
               execution: Optional[Execution] = None,
               result: Optional[object] = None) -> List[TrialGroup]:
    """Execute every trial of an experiment, possibly in parallel.

    ``trial_fn`` must be a module-level (picklable) callable taking
    ``(params, seed)`` and returning a picklable value.  Returns one
    :class:`TrialGroup` per param set, in input order.  When ``result``
    (an :class:`~dcrobot.experiments.result.ExperimentResult`) is
    given, per-trial timing telemetry is recorded on it.
    """
    execution = execution or Execution()
    trials = execution.resolved_trials()
    jobs = execution.resolved_jobs()
    cache = execution.cache
    specs = build_specs(experiment_id, param_sets, base_seed, trials)

    outcomes: Dict[int, TrialOutcome] = {}
    pending: List[TrialSpec] = []
    keys: Dict[int, str] = {}
    if cache is not None:
        version = code_version()
        for spec in specs:
            keys[spec.index] = cache_key(
                experiment_id, spec.params, spec.seed, version,
                trial_fn=trial_fn)
            hit = cache.get(experiment_id, keys[spec.index])
            if hit is not None:
                outcomes[spec.index] = TrialOutcome(
                    spec=spec, value=hit[0], wall_seconds=0.0,
                    cached=True)
            else:
                pending.append(spec)
    else:
        pending = list(specs)

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_execute, trial_fn, spec)
                       for spec in pending]
            for future in futures:
                outcome = future.result()
                outcomes[outcome.spec.index] = outcome
    else:
        for spec in pending:
            outcomes[spec.index] = _execute(trial_fn, spec)

    if cache is not None:
        for spec in pending:
            cache.put(experiment_id, keys[spec.index],
                      outcomes[spec.index].value)

    ordered = [outcomes[spec.index] for spec in specs]
    if result is not None:
        _record_timings(result, ordered)
    groups = []
    for point in range(len(param_sets)):
        members = [outcome for outcome in ordered
                   if outcome.spec.point == point]
        groups.append(TrialGroup(dict(param_sets[point]), members))
    return groups


def _record_timings(result, outcomes: List[TrialOutcome]) -> None:
    from dcrobot.experiments.result import TrialTiming

    for outcome in outcomes:
        result.add_timing(TrialTiming(
            label=outcome.spec.label,
            wall_seconds=outcome.wall_seconds,
            cached=outcome.cached,
            seed=outcome.spec.seed))


__all__ = [
    "DEFAULT_CACHE_DIR",
    "Execution",
    "TrialCache",
    "TrialSpec",
    "TrialOutcome",
    "TrialGroup",
    "build_specs",
    "cache_key",
    "code_version",
    "run_trials",
    "stable_hash",
]
