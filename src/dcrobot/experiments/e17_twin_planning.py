"""E17 — Twin-guided planning: fork the world before you drain it.

Paper anchor: §4 — a self-maintaining system should "simulate the
repair before executing it": the digital twin forks the live world
copy-on-write (:class:`~dcrobot.twin.world.TwinWorld`), plays each
candidate repair forward a few traffic windows under the live matrix,
and the controller dispatches the candidate whose predicted SMI /
p99-FCT score is best.

The scenario makes the choice matter.  A rolling reseat campaign
offers the controller several candidate links per policy cycle — a
mix of *hot* uplinks (under the diurnal hotspot's hot ToRs) and
*cold* uplinks in a quiet pod.  Every reseat drains its link for the
duration, so reseating a hot uplink at peak concentrates real bytes
onto its ECMP siblings.  Two arms do one reseat per cycle on the same
seed:

* **fifo** — dispatch in queue order, which front-loads the hot
  uplinks straight into the daytime peak; and
* **twin-ranked** — :class:`~dcrobot.core.planner.TwinPlanner` forks
  the world per candidate, rolls the drain + repair forward, and
  dispatches the lowest-scoring plan, sliding hot-uplink work away
  from peak-hour windows.

A prediction-audit table compares what the twin forecast for each
winning plan against the p99 the live world then realized.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from dcrobot.core.actions import Priority, RepairAction
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.controller import ControllerConfig
from dcrobot.core.planner import TwinPlannerConfig
from dcrobot.core.policy import PlanRequest
from dcrobot.experiments.parallel import Execution
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, run_world
from dcrobot.metrics.report import Table
from dcrobot.network.enums import FormFactor
from dcrobot.network.switchgear import SwitchRole
from dcrobot.traffic.patterns import HotspotPattern, UniformPattern

EXPERIMENT_ID = "e17"
TITLE = "Twin-guided planning: fork the world before you drain it"
PAPER_ANCHOR = ("§4: digital-twin what-if evaluation ahead of "
                "dispatch")

DAY = 86400.0
#: Small fat-tree: each twin evaluation forks the world and rolls
#: real traffic windows, so the fabric stays k=4 (8 ToRs, 48 links)
#: on 25G links that realistic flow counts can actually congest.
FABRIC_K = 4
FORM_FACTOR = FormFactor.SFP28
#: Diurnal load: hotspot on the first ``HOT_TORS`` ToRs by day,
#: light uniform at night.
DAY_START_HOUR, DAY_END_HOUR = 8.0, 20.0
DAY_FLOWS, NIGHT_FLOWS = 2400, 400
HOT_TORS = 2
HOT_PROBABILITY = 0.75
WINDOW_SECONDS = 900.0
SAMPLE_SECONDS = 1.0
#: k²/4 = 4 inter-pod paths: full-width ECMP, every uplink loaded.
MAX_EQUAL_PATHS = 4
#: Candidates offered per policy cycle (1 hot + 2 cold uplinks).
CANDIDATES = 3


class MixedCampaign:
    """Rolling reseats offering hot and cold uplinks each cycle.

    Every policy tick proposes one uplink of the hot ToRs (the
    hotspot pattern's prefix) followed by two uplinks of the last —
    cold — ToRs.  Queue order always leads with the hot link, so a
    FIFO dispatcher reseats hot uplinks under peak load while a
    twin-ranked dispatcher is free to reorder.
    """

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        tors = [switch.id for switch in fabric.switches.values()
                if switch.role is SwitchRole.TOR]
        self.hot_links: List[str] = [
            link.id for tor in tors[:HOT_TORS]
            for link in fabric.links_of(tor)]
        self.cold_links: List[str] = [
            link.id for tor in tors[-HOT_TORS:]
            for link in fabric.links_of(tor)]
        self._hot_cursor = 0
        self._cold_cursor = 0

    def on_symptom(self, event) -> Optional[PlanRequest]:
        return None

    def _request(self, link_id: str) -> PlanRequest:
        return PlanRequest(link_id=link_id, priority=Priority.NORMAL,
                           reason="campaign:reseat",
                           action=RepairAction.RESEAT,
                           proactive=True)

    def periodic(self, now: float) -> List[PlanRequest]:
        requests = [self._request(
            self.hot_links[self._hot_cursor % len(self.hot_links)])]
        self._hot_cursor += 1
        for _ in range(CANDIDATES - 1):
            requests.append(self._request(
                self.cold_links[self._cold_cursor
                                % len(self.cold_links)]))
            self._cold_cursor += 1
        return requests

    def record_repair(self, link, action, effective, now) -> None:
        """The campaign is unconditional; nothing to learn."""


def _diurnal_schedule():
    day_pattern = HotspotPattern(hot_endpoints=HOT_TORS,
                                 hot_probability=HOT_PROBABILITY)
    night_pattern = UniformPattern()

    def schedule(now: float):
        hour = (now % DAY) / 3600.0
        if DAY_START_HOUR <= hour < DAY_END_HOUR:
            return DAY_FLOWS, day_pattern
        return NIGHT_FLOWS, night_pattern

    return schedule


def _arm_config(seed: int, horizon_days: float,
                planner: TwinPlannerConfig) -> WorldConfig:
    return WorldConfig(
        topology_kwargs={"k": FABRIC_K, "form_factor": FORM_FACTOR},
        horizon_days=horizon_days, seed=seed,
        # Isolate dispatch ordering: no organic failures, dust or
        # aging — every drain is the campaign's own.
        failure_scale=0.0, dust_rate_per_day=0.0,
        aging_rate_per_day=0.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        policy=MixedCampaign,
        controller_config=ControllerConfig(defer_proactive=False),
        traffic=True,
        traffic_window_seconds=WINDOW_SECONDS,
        traffic_sample_seconds=SAMPLE_SECONDS,
        traffic_schedule=_diurnal_schedule(),
        traffic_max_equal_paths=MAX_EQUAL_PATHS,
        twin_planner=planner)


#: FIFO arm: ``max_candidates=0`` ranks nothing (zero forks) and the
#: dispatch slice takes the head of the queue — same one-repair-per-
#: cycle budget as the twin arm, ordering aside.
FIFO = TwinPlannerConfig(max_candidates=0, dispatch_top=1)
TWIN = TwinPlannerConfig(repair_windows=1, rollout_windows=2,
                         max_candidates=CANDIDATES, dispatch_top=1)


@dataclasses.dataclass
class ArmStats:
    """One dispatch-ordering arm, measured over traffic windows."""

    label: str
    maintenance_windows: int
    p99_maintenance: float
    mean_p99_maintenance: float
    p99_overall: float
    reseats: int
    peak_hot_reseats: int
    forks: int


def _is_peak(when: float) -> bool:
    hour = (when % DAY) / 3600.0
    return DAY_START_HOUR <= hour < DAY_END_HOUR


def _measure(label: str, result, hot_links: List[str]) -> ArmStats:
    driver = result.traffic_driver
    maintenance = driver.maintenance_windows()
    p99s = [w.p99_fct for w in maintenance if not np.isnan(w.p99_fct)]
    outcomes = result.live_controller.proactive_outcomes
    hot = set(hot_links)
    peak_hot = sum(1 for outcome in outcomes
                   if outcome.order.link_id in hot
                   and _is_peak(outcome.started_at))
    planner = result.twin_planner
    return ArmStats(
        label=label,
        maintenance_windows=len(maintenance),
        p99_maintenance=driver.p99_over(maintenance),
        mean_p99_maintenance=(float(np.mean(p99s)) if p99s
                              else float("nan")),
        p99_overall=driver.p99_over(driver.windows),
        reseats=len(outcomes),
        peak_hot_reseats=peak_hot,
        forks=planner._evaluations if planner else 0)


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    # Two arms on one seed, compared window-for-window: serial.
    del execution
    horizon_days = 1.0 if quick else 3.0

    fifo_result = run_world(_arm_config(seed, horizon_days, FIFO))
    twin_result = run_world(_arm_config(seed, horizon_days, TWIN))
    hot_links = MixedCampaign(fifo_result.topology.fabric).hot_links
    fifo = _measure("fifo", fifo_result, hot_links)
    twin = _measure("twin-ranked", twin_result, hot_links)

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)
    table = Table(
        ["dispatch", "maint windows", "p99 FCT (maint)",
         "mean p99 (maint)", "p99 FCT (all)", "reseats",
         "peak hot reseats", "twin forks"],
        title=f"Mixed reseat campaign under diurnal hotspot traffic, "
              f"fat-tree k={FABRIC_K}, {horizon_days:g} days")
    for arm in (fifo, twin):
        table.add_row(
            arm.label, str(arm.maintenance_windows),
            f"{arm.p99_maintenance * 1e3:.2f} ms",
            f"{arm.mean_p99_maintenance * 1e3:.2f} ms",
            f"{arm.p99_overall * 1e3:.2f} ms",
            str(arm.reseats), str(arm.peak_hot_reseats),
            str(arm.forks))
    result.add_table(table)

    # Prediction audit: the twin's forecast for each dispatched winner
    # vs the p99 the live world then realized in the next maintenance
    # window after dispatch.
    audit = Table(
        ["cycle", "winner", "hot?", "predicted p99", "predicted SMI",
         "realized p99 (next maint window)"],
        title="Twin forecasts vs realized outcomes (first 8 cycles)")
    maintenance = twin_result.traffic_driver.maintenance_windows()
    decisions = twin_result.twin_planner.decisions
    # The policy loop fires every policy_interval_seconds; ranking
    # ``cycle`` happens at tick ``cycle + 1``.
    interval = ControllerConfig().policy_interval_seconds
    audited = 0
    for cycle, ranking in enumerate(decisions):
        if not ranking or not np.isfinite(ranking[0].score):
            continue
        winner = ranking[0]
        dispatched_at = (cycle + 1) * interval
        realized = next(
            (w.p99_fct for w in maintenance
             if w.time >= dispatched_at),
            float("nan"))
        audit.add_row(
            str(cycle), winner.request.link_id,
            "yes" if winner.request.link_id in set(hot_links)
            else "no",
            f"{winner.predicted_p99_fct * 1e3:.2f} ms",
            f"{winner.predicted_smi:.3f}",
            f"{realized * 1e3:.2f} ms" if not np.isnan(realized)
            else "—")
        audited += 1
        if audited >= 8:
            break
    result.add_table(audit)

    # Series x-axes: 0=fifo, 1=twin-ranked.
    result.add_series("maintenance_p99_fct_seconds",
                      [(0, fifo.mean_p99_maintenance),
                       (1, twin.mean_p99_maintenance)])
    result.add_series("peak_hot_reseats",
                      [(0, fifo.peak_hot_reseats),
                       (1, twin.peak_hot_reseats)])
    improvement = (fifo.mean_p99_maintenance
                   / twin.mean_p99_maintenance
                   if twin.mean_p99_maintenance else float("nan"))
    result.note(
        f"twin-ranked dispatch cut mean maintenance-window p99 FCT "
        f"{improvement:.2f}x (from "
        f"{fifo.mean_p99_maintenance * 1e3:.2f} ms to "
        f"{twin.mean_p99_maintenance * 1e3:.2f} ms) and reduced "
        f"peak-hour hot-uplink drains from {fifo.peak_hot_reseats} "
        f"to {twin.peak_hot_reseats}; both arms dispatched one reseat "
        f"per cycle ({fifo.reseats} vs {twin.reseats})")
    result.note(
        f"each ranking decision cost {TWIN.max_candidates} "
        f"copy-on-write world forks rolled "
        f"{TWIN.repair_windows + TWIN.rollout_windows} windows each "
        f"({twin.forks} forks total); the live world is never "
        f"touched — fork isolation is property-tested in "
        f"tests/property/test_twin_properties.py")
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
