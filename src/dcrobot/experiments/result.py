"""Experiment result container, rendering, and export."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Dict, List, Optional, Sequence, Tuple

from dcrobot.metrics.report import Table


@dataclasses.dataclass
class TrialTiming:
    """Wall-clock telemetry for one executed (or cache-served) trial."""

    label: str
    wall_seconds: float
    cached: bool = False
    seed: int = 0


@dataclasses.dataclass
class ExperimentResult:
    """Output of one paper experiment: tables + named data series."""

    experiment_id: str
    title: str
    paper_anchor: str
    tables: List[Table] = dataclasses.field(default_factory=list)
    #: Named (x, y) series for the figure-shaped results.
    series: Dict[str, List[Tuple[float, float]]] = dataclasses.field(
        default_factory=dict)
    notes: List[str] = dataclasses.field(default_factory=list)
    #: Per-trial wall-clock telemetry from the parallel executor.
    timings: List[TrialTiming] = dataclasses.field(default_factory=list)
    #: Span dicts from the designated observed trial (``observe=True``).
    trace: Optional[List[dict]] = None
    #: Metrics snapshot from the designated observed trial.
    metrics: Optional[dict] = None

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    def add_series(self, name: str,
                   points: Sequence[Tuple[float, float]]) -> None:
        self.series[name] = list(points)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add_timing(self, timing: TrialTiming) -> None:
        self.timings.append(timing)

    def timing_summary(self) -> str:
        """One line: trial count, cache hits, total/max trial time."""
        executed = [t for t in self.timings if not t.cached]
        cached = len(self.timings) - len(executed)
        total = sum(t.wall_seconds for t in executed)
        slowest = max((t.wall_seconds for t in executed), default=0.0)
        return (f"{len(self.timings)} trials ({cached} cached), "
                f"{total:.1f}s of trial compute, "
                f"slowest {slowest:.1f}s")

    def render(self) -> str:
        """The full text report."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} ==",
                 f"(paper anchor: {self.paper_anchor})", ""]
        for table in self.tables:
            parts.append(table.render())
            parts.append("")
        for name, points in self.series.items():
            parts.append(f"series {name}:")
            parts.append("  " + "  ".join(
                f"({x:.4g}, {y:.4g})" for x, y in points))
            parts.append("")
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.timings:
            parts.append(f"timing: {self.timing_summary()}")
        return "\n".join(parts).rstrip() + "\n"

    def __str__(self) -> str:
        return self.render()

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of every table and series."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_anchor": self.paper_anchor,
            "tables": [
                {"title": table.title, "headers": table.headers,
                 "rows": table.rows}
                for table in self.tables],
            "series": {name: list(points)
                       for name, points in self.series.items()},
            "notes": list(self.notes),
            "timings": [dataclasses.asdict(timing)
                        for timing in self.timings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save_json(self, path: str) -> None:
        """Write the result as JSON (for plotting pipelines)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def tables_to_csv(self) -> str:
        """All tables as CSV blocks separated by blank lines."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        for table in self.tables:
            if table.title:
                writer.writerow([f"# {table.title}"])
            writer.writerow(table.headers)
            for row in table.rows:
                writer.writerow(row)
            writer.writerow([])
        return buffer.getvalue()

    def save_csv(self, path: str) -> None:
        """Write the tables as CSV."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.tables_to_csv())

    def save_trace_jsonl(self, path: str) -> bool:
        """Write the observed trial's trace as JSONL spans.

        Returns ``False`` (writing nothing) when the experiment was not
        run with observability enabled.
        """
        if self.trace is None:
            return False
        from dcrobot.obs.export import write_trace_jsonl
        write_trace_jsonl(self.trace, path)
        return True

    def save_metrics(self, path: str) -> bool:
        """Write the observed trial's metrics snapshot.

        Format follows the extension: ``.prom``/``.txt`` gets
        Prometheus text exposition, anything else JSON.  Returns
        ``False`` when there is no snapshot to write.
        """
        if self.metrics is None:
            return False
        from dcrobot.obs.export import write_metrics
        write_metrics(self.metrics, path)
        return True
