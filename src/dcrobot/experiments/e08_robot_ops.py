"""E8 — Robot operation timing and fleet throughput (Figures 1-2).

Paper anchor: §3.3 — the prototype manipulation and cleaning robots:
"the end-face inspection for 8 cores takes less than 30 seconds" and
"this entire operation currently takes a few minutes".

Micro-benchmarks of the modeled robots: per-stage timing of the reseat
and clean choreographies across the vendor-diverse transceiver catalog,
inspection time vs core count, and closed-loop fleet throughput
(operations/hour) vs fleet size under saturation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from dcrobot.core.actions import RepairAction, WorkOrder
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.metrics.mttr import format_duration
from dcrobot.metrics.report import Table
from dcrobot.robots.cleaner import CleaningRobot
from dcrobot.robots.fleet import FleetConfig, RobotFleet
from dcrobot.robots.manipulator import ManipulatorRobot

EXPERIMENT_ID = "e8"
TITLE = "Robot operation latency and fleet throughput"
PAPER_ANCHOR = "§3.3: 8-core inspection < 30 s; full operation ~ minutes"


def _fresh_world(links: int, seed: int):
    """A standalone world builder (no pytest dependency)."""
    from dcrobot.core.repairs import RepairPhysics
    from dcrobot.failures import CascadeModel, Environment, HealthModel
    from dcrobot.network import (
        CableKind,
        Fabric,
        FormFactor,
        HallLayout,
        SwitchRole,
    )
    from dcrobot.sim import Simulation

    rng = np.random.default_rng(seed)
    fabric = Fabric(layout=HallLayout(rows=1, racks_per_row=2), rng=rng)
    a = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 0).id)
    b = fabric.add_switch(SwitchRole.TOR, radix=max(links, 2),
                          rack_id=fabric.layout.rack_at(0, 1).id)
    made = [fabric.connect(a.id, b.id, kind=CableKind.MPO)
            for _ in range(links)]
    fabric.stock_spares({f: 100 for f in FormFactor}, cables=50)
    sim = Simulation()
    environment = Environment(diurnal_amplitude_c=0.0)
    health = HealthModel(fabric, environment,
                         rng=np.random.default_rng(seed + 1))
    cascade = CascadeModel(fabric, health, environment,
                           rng=np.random.default_rng(seed + 2))
    physics = RepairPhysics(fabric, health, cascade,
                            rng=np.random.default_rng(seed + 3))
    return sim, fabric, made, health, physics


def _operation_trial(params: Dict, seed: int) -> Dict:
    """Time ``samples`` isolated reseat/clean operations on fresh
    worlds; each sample is its own seeded world, as in the serial
    version."""
    op_name = params["op"]
    samples = params["samples"]
    durations, failures = [], 0
    for index in range(samples):
        sim, fabric, links, _health, _physics = _fresh_world(
            8, seed + index)
        link = links[index % len(links)]
        if op_name == "reseat":
            robot = ManipulatorRobot(
                sim, fabric, "m0", fabric.layout.rack_at(0, 0).id,
                rng=np.random.default_rng(seed + index))

            def op(robot=robot, link=link):
                ok, _note = yield from robot.reseat(link)
                return ok
        else:
            link.cable.end_a.add_contamination(0.5)
            robot = CleaningRobot(
                sim, fabric, "c0", fabric.layout.rack_at(0, 0).id,
                rng=np.random.default_rng(seed + index))

            def op(robot=robot, link=link):
                link.transceiver_a.unseat()
                ok, _note = yield from robot.clean_cycle(link, "a")
                link.transceiver_a.seat(robot.sim.now)
                return ok

        process = sim.process(op())
        ok = sim.run(until=process)
        durations.append(sim.now)
        if not ok:
            failures += 1
    return {"durations": durations, "failures": failures}


def _throughput_trial(params: Dict, seed: int) -> Dict:
    """Saturate one fleet with reseat orders; measure ops/hour."""
    pairs = params["pairs"]
    orders = params["orders"]
    sim, fabric, links, health, physics = _fresh_world(16, seed)
    fleet = RobotFleet(
        sim, fabric, health, physics,
        config=FleetConfig(manipulators=pairs, cleaners=pairs,
                           allocation=params["allocation"]),
        rng=np.random.default_rng(seed))
    events = [fleet.submit(WorkOrder(
        links[index % len(links)].id, RepairAction.RESEAT,
        created_at=0.0)) for index in range(orders)]
    sim.run(until=sim.all_of(events))
    return {"ops_per_hour": orders / (sim.now / 3600.0)}


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    samples = 40 if quick else 200
    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    # Part 1: inspection time vs core count (the paper's headline).
    sim, fabric, _links, _health, _physics = _fresh_world(4, seed)
    cleaner = CleaningRobot(sim, fabric, "c0",
                            fabric.layout.rack_at(0, 0).id,
                            rng=np.random.default_rng(seed))
    inspect_table = Table(["cores", "inspection time (s)"],
                          title="Machine end-face inspection time")
    for cores in (1, 2, 4, 8, 12):
        inspect_table.add_row(cores,
                              f"{cleaner.inspect_seconds(cores):.1f}")
    result.add_table(inspect_table)
    result.note(f"8-core inspection: {cleaner.inspect_seconds(8):.0f}s "
                f"(paper: < 30 s)")

    # Part 2: full operation durations across the diverse catalog.
    op_table = Table(["operation", "p50", "p95", "failures %"],
                     title=f"Operation durations over {samples} runs "
                           f"(vendor-diverse transceivers)")
    op_params = [
        {"label": op_name, "op": op_name, "samples": samples,
         "seed": seed}
        for op_name in ("reseat", "clean one end")
    ]
    op_groups = run_trials(EXPERIMENT_ID, _operation_trial, op_params,
                           base_seed=seed, execution=execution,
                           result=result)
    for group in op_groups:
        durations = group.value["durations"]
        failures = group.value["failures"]
        op_table.add_row(
            group.params["op"],
            format_duration(float(np.percentile(durations, 50))),
            format_duration(float(np.percentile(durations, 95))),
            f"{100 * failures / samples:.1f}")
    result.add_table(op_table)

    # Part 3: fleet throughput under saturation.
    throughput_table = Table(
        ["manipulators+cleaners", "ops/hour", "allocation"],
        title="Closed-loop fleet throughput (saturated reseat queue)")
    orders = 60 if quick else 200
    throughput_params = [
        {"label": f"{pairs}+{pairs}/{allocation}", "pairs": pairs,
         "allocation": allocation, "orders": orders,
         "seed": seed + pairs}
        for pairs in (1, 2, 4)
        for allocation in (("nearest",) if quick
                           else ("nearest", "fifo"))
    ]
    throughput_groups = run_trials(
        EXPERIMENT_ID, _throughput_trial, throughput_params,
        base_seed=seed + 1, execution=execution, result=result)
    series = []
    for group in throughput_groups:
        pairs = group.params["pairs"]
        rate = group.mean("ops_per_hour")
        throughput_table.add_row(f"{pairs}+{pairs}", f"{rate:.1f}",
                                 group.params["allocation"])
        if group.params["allocation"] == "nearest":
            series.append((pairs, rate))
    result.add_table(throughput_table)
    result.add_series("ops_per_hour_vs_fleet", series)
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
