"""E7 — The repair escalation ladder in action.

Paper anchor: §3.2 — reseat first ("surprisingly effective"), then
clean, then replace transceiver, then cable, then switchgear; and §1 —
"failures also frequently require multiple attempts to fix".

A long Level-0 run with the full mixed-cause fault environment.
Reported: at which ladder stage incidents were finally resolved, the
distribution of attempts per incident, and a ladder-order ablation
(clean-first vs reseat-first) on total technician labor.
"""

from __future__ import annotations

from collections import Counter

from dcrobot.core.actions import RepairAction
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.escalation import EscalationConfig
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, run_world
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e7"
TITLE = "Resolution stage distribution along the escalation ladder"
PAPER_ANCHOR = "§3.2: reseat -> clean -> replace transceiver -> cable -> switch"

CLEAN_FIRST = EscalationConfig(ladder=(
    RepairAction.CLEAN, RepairAction.RESEAT,
    RepairAction.REPLACE_TRANSCEIVER, RepairAction.REPLACE_CABLE,
    RepairAction.REPLACE_SWITCHGEAR))


def _resolution_stages(controller):
    stages = Counter()
    attempts = Counter()
    for incident in controller.closed_incidents:
        if not incident.attempt_history:
            continue
        final_action = incident.attempt_history[-1][1]
        stages[final_action] += 1
        attempts[incident.attempt_count] += 1
    return stages, attempts


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    horizon_days = 30.0 if quick else 120.0
    failure_scale = 4.0

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    run_result = run_world(WorldConfig(
        horizon_days=horizon_days, seed=seed,
        level=AutomationLevel.L0_NO_AUTOMATION,
        failure_scale=failure_scale))
    controller = run_result.controller
    stages, attempts = _resolution_stages(controller)
    total = sum(stages.values())

    stage_table = Table(["resolution stage", "incidents", "share %"],
                        title="Stage at which incidents were resolved")
    for action in RepairAction:
        count = stages.get(action, 0)
        stage_table.add_row(action.value, count,
                            f"{100 * count / max(total, 1):.1f}")
    result.add_table(stage_table)
    result.add_series(
        "resolution_share",
        [(action.ladder_rank, stages.get(action, 0) / max(total, 1))
         for action in RepairAction])

    attempts_table = Table(["attempts per incident", "count"],
                           title="Multiple attempts are common (§1)")
    for count in sorted(attempts):
        attempts_table.add_row(count, attempts[count])
    result.add_table(attempts_table)
    multi = sum(value for key, value in attempts.items() if key > 1)
    result.note(f"{100 * multi / max(total, 1):.0f}% of incidents "
                f"needed more than one repair attempt")

    # Ablation: clean-first ladder (wrong order costs labor).
    ablation = Table(
        ["ladder order", "incidents resolved", "technician hours",
         "mean attempts"],
        title="Ladder-order ablation")
    for label, escalation in (("reseat-first (paper)", None),
                              ("clean-first", CLEAN_FIRST)):
        ablation_run = run_world(WorldConfig(
            horizon_days=horizon_days, seed=seed,
            level=AutomationLevel.L0_NO_AUTOMATION,
            failure_scale=failure_scale, escalation=escalation))
        closed = ablation_run.controller.closed_incidents
        mean_attempts = (sum(i.attempt_count for i in closed)
                         / max(len(closed), 1))
        ablation.add_row(
            label, len(closed),
            f"{ablation_run.humans.labor_seconds / 3600.0:.1f}",
            f"{mean_attempts:.2f}")
    result.add_table(ablation)
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
