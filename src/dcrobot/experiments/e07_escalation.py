"""E7 — The repair escalation ladder in action.

Paper anchor: §3.2 — reseat first ("surprisingly effective"), then
clean, then replace transceiver, then cable, then switchgear; and §1 —
"failures also frequently require multiple attempts to fix".

A long Level-0 run with the full mixed-cause fault environment.
Reported: at which ladder stage incidents were finally resolved, the
distribution of attempts per incident, and a ladder-order ablation
(clean-first vs reseat-first) on total technician labor.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from dcrobot.core.actions import RepairAction
from dcrobot.core.automation import AutomationLevel
from dcrobot.core.escalation import EscalationConfig
from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.result import ExperimentResult
from dcrobot.experiments.runner import WorldConfig, run_world
from dcrobot.metrics.report import Table

EXPERIMENT_ID = "e7"
TITLE = "Resolution stage distribution along the escalation ladder"
PAPER_ANCHOR = "§3.2: reseat -> clean -> replace transceiver -> cable -> switch"

CLEAN_FIRST = EscalationConfig(ladder=(
    RepairAction.CLEAN, RepairAction.RESEAT,
    RepairAction.REPLACE_TRANSCEIVER, RepairAction.REPLACE_CABLE,
    RepairAction.REPLACE_SWITCHGEAR))

_LADDERS = {"reseat-first (paper)": None, "clean-first": CLEAN_FIRST}


def _resolution_stages(controller):
    stages = Counter()
    attempts = Counter()
    for incident in controller.closed_incidents:
        if not incident.attempt_history:
            continue
        final_action = incident.attempt_history[-1][1]
        stages[final_action.value] += 1
        attempts[incident.attempt_count] += 1
    return stages, attempts


def _trial(params: Dict, seed: int) -> Dict:
    """One Level-0 world; report ladder-resolution counters."""
    run_result = run_world(WorldConfig(
        horizon_days=params["horizon_days"], seed=seed,
        level=AutomationLevel.L0_NO_AUTOMATION,
        failure_scale=params["failure_scale"],
        escalation=_LADDERS[params["ladder"]]))
    controller = run_result.controller
    stages, attempts = _resolution_stages(controller)
    closed = controller.closed_incidents
    return {
        "stages": dict(stages),
        "attempts": dict(attempts),
        "closed": len(closed),
        "mean_attempts": (sum(i.attempt_count for i in closed)
                          / max(len(closed), 1)),
        "labor_hours": run_result.humans.labor_seconds / 3600.0,
    }


def run(quick: bool = True, seed: int = 0,
        execution: Optional[Execution] = None) -> ExperimentResult:
    horizon_days = 30.0 if quick else 120.0
    failure_scale = 4.0

    result = ExperimentResult(EXPERIMENT_ID, TITLE, PAPER_ANCHOR)

    param_sets = [
        {"label": label, "ladder": label, "seed": seed,
         "horizon_days": horizon_days, "failure_scale": failure_scale}
        for label in _LADDERS
    ]
    groups = run_trials(EXPERIMENT_ID, _trial, param_sets,
                        base_seed=seed, execution=execution,
                        result=result)
    by_ladder = {group.params["ladder"]: group for group in groups}

    main = by_ladder["reseat-first (paper)"].value
    stages = main["stages"]
    attempts = main["attempts"]
    total = sum(stages.values())

    stage_table = Table(["resolution stage", "incidents", "share %"],
                        title="Stage at which incidents were resolved")
    for action in RepairAction:
        count = stages.get(action.value, 0)
        stage_table.add_row(action.value, count,
                            f"{100 * count / max(total, 1):.1f}")
    result.add_table(stage_table)
    result.add_series(
        "resolution_share",
        [(action.ladder_rank,
          stages.get(action.value, 0) / max(total, 1))
         for action in RepairAction])

    attempts_table = Table(["attempts per incident", "count"],
                           title="Multiple attempts are common (§1)")
    for count in sorted(attempts):
        attempts_table.add_row(count, attempts[count])
    result.add_table(attempts_table)
    multi = sum(value for key, value in attempts.items() if key > 1)
    result.note(f"{100 * multi / max(total, 1):.0f}% of incidents "
                f"needed more than one repair attempt")

    # Ablation: clean-first ladder (wrong order costs labor).
    ablation = Table(
        ["ladder order", "incidents resolved", "technician hours",
         "mean attempts"],
        title="Ladder-order ablation")
    for label in _LADDERS:
        group = by_ladder[label]
        ablation.add_row(
            label, group.value["closed"],
            f"{group.mean('labor_hours'):.1f}",
            f"{group.mean('mean_attempts'):.2f}")
    result.add_table(ablation)
    return result


if __name__ == "__main__":
    print(run(quick=True).render())
