"""Energy accounting (§4 "Energy efficiency").

"The community could also rethink how to enhance energy efficiency
through optimized resource management facilitated by robotic systems."

Two concrete levers are modeled:

* **right-provisioning** — every redundant link an operator no longer
  buys stops burning transceiver power 24/7 (the dominant term: optics
  run hot whether or not they carry traffic);
* **robot energy** — the fleet itself consumes power while working and
  (far less) while idle.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from dcrobot.network.enums import FormFactor
from dcrobot.network.inventory import Fabric

HOUR = 3600.0

#: Typical module power draw (watts) per form factor — optics burn the
#: same power at idle as under load.
TRANSCEIVER_WATTS: Dict[FormFactor, float] = {
    FormFactor.SFP28: 1.0,
    FormFactor.SFP56: 1.5,
    FormFactor.QSFP28: 3.5,
    FormFactor.QSFP56: 5.0,
    FormFactor.QSFP_DD: 14.0,
    FormFactor.OSFP: 15.0,
}


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Power-model constants."""

    robot_active_watts: float = 150.0
    robot_idle_watts: float = 8.0
    #: Facility overhead multiplier (cooling etc.).
    pue: float = 1.3
    grid_kg_co2_per_kwh: float = 0.35

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("PUE must be >= 1.0")


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Energy over a horizon, in kWh (at the facility meter, PUE
    included)."""

    link_kwh: float
    robot_kwh: float

    @property
    def total_kwh(self) -> float:
        return self.link_kwh + self.robot_kwh

    def co2_kg(self, grid_kg_per_kwh: float = 0.35) -> float:
        """Carbon at a given grid intensity."""
        return self.total_kwh * grid_kg_per_kwh

    def __repr__(self) -> str:
        return (f"<EnergyReport links={self.link_kwh:.1f}kWh "
                f"robots={self.robot_kwh:.1f}kWh>")


class EnergyModel:
    """Computes fabric + fleet energy over a horizon."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    def link_watts(self, fabric: Fabric) -> float:
        """Instantaneous optics power of all installed links."""
        total = 0.0
        for link in fabric.links.values():
            for unit in link.transceivers():
                total += TRANSCEIVER_WATTS[unit.form_factor]
        return total

    def compute(self, fabric: Fabric, horizon_seconds: float,
                robot_count: int = 0,
                robot_busy_seconds: float = 0.0) -> EnergyReport:
        """Facility energy over the horizon."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be > 0")
        params = self.params
        link_joules = self.link_watts(fabric) * horizon_seconds
        idle_seconds = max(
            0.0, robot_count * horizon_seconds - robot_busy_seconds)
        robot_joules = (robot_busy_seconds * params.robot_active_watts
                        + idle_seconds * params.robot_idle_watts)
        to_kwh = params.pue / 3.6e6
        return EnergyReport(link_kwh=link_joules * to_kwh,
                            robot_kwh=robot_joules * to_kwh)

    def redundancy_power_saved(self, fabric: Fabric,
                               links_removed: int,
                               per_link_watts: float = None) -> float:
        """Watts saved by right-provisioning away ``links_removed``
        links (two transceivers each).

        ``per_link_watts`` defaults to the fabric's mean per-link
        optics power.
        """
        if links_removed < 0:
            raise ValueError("links_removed must be >= 0")
        if per_link_watts is None:
            count = max(len(fabric.links), 1)
            per_link_watts = self.link_watts(fabric) / count
        return links_removed * per_link_watts
