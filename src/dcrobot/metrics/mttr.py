"""Repair-time (service-window) statistics."""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

HOUR = 3600.0
DAY = 86400.0


@dataclasses.dataclass(frozen=True)
class RepairTimeStats:
    """Summary of a set of detection-to-verified-fix durations."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __repr__(self) -> str:
        return (f"<RepairTimeStats n={self.count} "
                f"p50={format_duration(self.p50)} "
                f"p95={format_duration(self.p95)}>")


def repair_time_stats(repair_times: Sequence[float]) -> RepairTimeStats:
    """Percentile summary of repair durations (seconds)."""
    if not repair_times:
        raise ValueError("no repair times")
    values = np.asarray(repair_times, dtype=float)
    return RepairTimeStats(
        count=len(values),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        max=float(values.max()))


def format_duration(seconds: float) -> str:
    """Human-readable duration: '42s', '12.5m', '3.2h', '1.8d'."""
    if seconds < 0:
        raise ValueError(f"negative duration {seconds}")
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        return f"{seconds / 60:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"


def mtbf_seconds(fault_count: int, link_count: int,
                 horizon_seconds: float) -> float:
    """Mean time between failures per link."""
    if fault_count <= 0:
        return float("inf")
    if link_count <= 0 or horizon_seconds <= 0:
        raise ValueError("need positive link_count and horizon")
    return link_count * horizon_seconds / fault_count
