"""Incident attribution: what actually caused each ticket?

The controller only sees symptoms; the injector keeps ground truth.
Joining them answers questions operators care about and the paper
raises: how many tickets were *collateral* from repairs (cascading
failures, §1), how many were slow environmental degradation (dust,
oxidation aging), and how many were phantom tickets that self-healed
("false positives on repairs", §2)?

An incident is attributed to the most recent injected fault on its link
within ``attribution_window_seconds`` before detection; incidents with
no such fault are split by whether a repair-touch disturbance was
recorded for the link (collateral) or not (environmental drift /
phantom).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from dcrobot.core.controller import Incident
from dcrobot.failures.injector import InjectedFault
from dcrobot.network.enums import DegradationKind


@dataclasses.dataclass(frozen=True)
class AttributionSummary:
    """Ticket counts by root-cause category."""

    by_cause: Dict[DegradationKind, int]
    collateral: int
    environmental: int
    total: int

    @property
    def injected(self) -> int:
        return sum(self.by_cause.values())

    def share(self, kind: DegradationKind) -> float:
        if self.total == 0:
            return 0.0
        return self.by_cause.get(kind, 0) / self.total

    @property
    def collateral_share(self) -> float:
        return self.collateral / self.total if self.total else 0.0

    def __repr__(self) -> str:
        return (f"<AttributionSummary total={self.total} "
                f"injected={self.injected} "
                f"collateral={self.collateral} "
                f"environmental={self.environmental}>")


def attribute_incidents(
        incidents: Sequence[Incident],
        faults: Sequence[InjectedFault],
        disturbed_link_ids: Sequence[str] = (),
        attribution_window_seconds: float = 7 * 86400.0,
) -> AttributionSummary:
    """Join incidents with ground truth.

    ``disturbed_link_ids`` is the set of links that cascade touches
    disturbed at some point (from ``CascadeModel.reports``); incidents
    on those links with no injected fault are classed *collateral*.
    """
    if attribution_window_seconds <= 0:
        raise ValueError("attribution window must be > 0")
    faults_by_link: Dict[str, List[InjectedFault]] = {}
    for fault in faults:
        faults_by_link.setdefault(fault.link_id, []).append(fault)
    disturbed = set(disturbed_link_ids)

    by_cause: Dict[DegradationKind, int] = {}
    collateral = 0
    environmental = 0
    for incident in incidents:
        candidates = [
            fault for fault in faults_by_link.get(incident.link_id, [])
            if (incident.opened_at - attribution_window_seconds
                <= fault.time <= incident.opened_at)]
        if candidates:
            cause = max(candidates, key=lambda fault: fault.time).kind
            by_cause[cause] = by_cause.get(cause, 0) + 1
        elif incident.link_id in disturbed:
            collateral += 1
        else:
            environmental += 1
    return AttributionSummary(
        by_cause=by_cause, collateral=collateral,
        environmental=environmental, total=len(incidents))


def disturbed_links_from_cascade(cascade_reports) -> List[str]:
    """The link ids ever disturbed or damaged by repair touches."""
    seen = []
    for report in cascade_reports:
        for link_id in (list(report.disturbed_links)
                        + list(report.damaged_links)):
            if link_id not in seen:
                seen.append(link_id)
    return seen
