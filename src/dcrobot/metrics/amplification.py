"""Repair amplification: collateral damage per repair (§2).

"Tight coupling and control will help minimize repair amplification
caused by cascading failures."  Amplification is the expected number of
secondary events (transient disturbances + permanent damage) each
physical repair inflicts on neighbouring links.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from dcrobot.core.actions import RepairOutcome


@dataclasses.dataclass(frozen=True)
class AmplificationStats:
    """Secondary-failure accounting over a set of repairs."""

    repairs: int
    disturbed: int
    damaged: int

    @property
    def secondary_total(self) -> int:
        return self.disturbed + self.damaged

    @property
    def amplification_factor(self) -> float:
        """Total work events per intended repair: 1 + secondaries/repair.

        1.0 means repairs are perfectly contained; 1.5 means every two
        repairs spawn one extra incident.
        """
        if self.repairs == 0:
            return 1.0
        return 1.0 + self.secondary_total / self.repairs

    def __repr__(self) -> str:
        return (f"<AmplificationStats repairs={self.repairs} "
                f"factor={self.amplification_factor:.3f}>")


def amplification_from_outcomes(
        outcomes: Sequence[RepairOutcome]) -> AmplificationStats:
    """Aggregate secondary failures over executor outcomes."""
    return AmplificationStats(
        repairs=len(outcomes),
        disturbed=sum(outcome.secondary_disturbed
                      for outcome in outcomes),
        damaged=sum(outcome.secondary_damaged for outcome in outcomes))
