"""Plain-text result tables — the benches print these to mirror how the
paper's evaluation rows would read."""

from __future__ import annotations

from typing import List, Optional, Sequence


class Table:
    """A minimal fixed-width table renderer."""

    def __init__(self, headers: Sequence[str],
                 title: Optional[str] = None) -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ed, floats get 4 significant
        digits unless already strings.  Control characters (including
        newlines) are replaced with spaces so a cell can never break
        the table's line structure."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                text = f"{cell:.4g}"
            else:
                text = str(cell)
            rendered.append("".join(
                char if char.isprintable() else " " for char in text))
        self.rows.append(rendered)

    def render(self) -> str:
        """The table as a string."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(width)
                             for cell, width in zip(cells, widths))

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(line(["-" * width for width in widths]))
        for row in self.rows:
            parts.append(line(row))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
