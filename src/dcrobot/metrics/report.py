"""Plain-text result tables — the benches print these to mirror how the
paper's evaluation rows would read — plus a worked example reducing an
exported trace to the paper's MTTR metric."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Table:
    """A minimal fixed-width table renderer."""

    def __init__(self, headers: Sequence[str],
                 title: Optional[str] = None) -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ed, floats get 4 significant
        digits unless already strings.  Control characters (including
        newlines) are replaced with spaces so a cell can never break
        the table's line structure."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}")
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                text = f"{cell:.4g}"
            else:
                text = str(cell)
            rendered.append("".join(
                char if char.isprintable() else " " for char in text))
        self.rows.append(rendered)

    def render(self) -> str:
        """The table as a string."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(width)
                             for cell, width in zip(cells, widths))

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(line(["-" * width for width in widths]))
        for row in self.rows:
            parts.append(line(row))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()


def trace_mttr_table(spans: Sequence[dict]) -> Table:
    """Worked example: mean-time-to-repair straight from a trace.

    Takes the span dicts of a ``--trace-out`` export (skip the header
    line, ``json.loads`` each remaining line) and reduces the
    ``incident`` spans — whose duration is detection to conclusion —
    to per-symptom repair-time rows.  This is the bridge between the
    observability layer's trace export and the paper's headline MTTR
    metric; the same reduction works on any tool that ingests the
    JSONL.
    """
    by_symptom: Dict[str, List[float]] = {}
    for span in spans:
        if span.get("name") != "incident" or span.get("end") is None:
            continue
        attributes = span.get("attributes", {})
        if attributes.get("outcome") != "resolved":
            continue
        by_symptom.setdefault(
            str(attributes.get("symptom", "unknown")), []).append(
                span["end"] - span["start"])
    table = Table(
        ["symptom", "resolved", "mean hours", "max hours"],
        title="MTTR by symptom (reduced from the trace export)")
    for symptom in sorted(by_symptom):
        durations = by_symptom[symptom]
        table.add_row(
            symptom, len(durations),
            f"{sum(durations) / len(durations) / 3600.0:.2f}",
            f"{max(durations) / 3600.0:.2f}")
    return table
