"""The maintenance cost model.

Aggregates the three spend categories the paper's economics hinge on:
human labor (including robot supervision at L2/L3), robot fleet capex
and opex, and consumed spares.  Everything is denominated in dollars
over a simulated horizon so automation levels can be compared on one
axis.
"""

from __future__ import annotations

import dataclasses

HOUR = 3600.0
YEAR = 365.25 * 86400.0


@dataclasses.dataclass(frozen=True)
class CostParams:
    """Unit economics (defaults are representative, not authoritative)."""

    technician_hourly_usd: float = 85.0
    robot_unit_capex_usd: float = 60_000.0
    robot_amortization_years: float = 5.0
    robot_opex_hourly_usd: float = 1.5
    spare_transceiver_usd: float = 450.0
    spare_cable_usd: float = 320.0

    def __post_init__(self) -> None:
        if self.robot_amortization_years <= 0:
            raise ValueError("amortization must be > 0")


@dataclasses.dataclass(frozen=True)
class CostBreakdown:
    """Dollars spent over the horizon, by category."""

    labor_usd: float
    supervision_usd: float
    robot_capex_usd: float
    robot_opex_usd: float
    spares_usd: float

    @property
    def total_usd(self) -> float:
        return (self.labor_usd + self.supervision_usd
                + self.robot_capex_usd + self.robot_opex_usd
                + self.spares_usd)

    def __repr__(self) -> str:
        return (f"<CostBreakdown total=${self.total_usd:,.0f} "
                f"labor=${self.labor_usd:,.0f} "
                f"robots=${self.robot_capex_usd + self.robot_opex_usd:,.0f}>")


class CostModel:
    """Computes a run's cost breakdown from executor accounting."""

    def __init__(self, params: CostParams = CostParams()) -> None:
        self.params = params

    def compute(self, horizon_seconds: float,
                technician_labor_seconds: float = 0.0,
                supervision_seconds: float = 0.0,
                robot_count: int = 0,
                robot_busy_seconds: float = 0.0,
                transceivers_consumed: int = 0,
                cables_consumed: int = 0) -> CostBreakdown:
        """Dollars for one simulated run."""
        if horizon_seconds <= 0:
            raise ValueError("horizon must be > 0")
        params = self.params
        hourly = params.technician_hourly_usd / HOUR
        capex_per_robot = (params.robot_unit_capex_usd
                           * horizon_seconds
                           / (params.robot_amortization_years * YEAR))
        return CostBreakdown(
            labor_usd=technician_labor_seconds * hourly,
            supervision_usd=supervision_seconds * hourly,
            robot_capex_usd=robot_count * capex_per_robot,
            robot_opex_usd=(robot_busy_seconds
                            * params.robot_opex_hourly_usd / HOUR),
            spares_usd=(transceivers_consumed
                        * params.spare_transceiver_usd
                        + cables_consumed * params.spare_cable_usd))
