"""Availability accounting over link state timelines."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

import numpy as np

from dcrobot.network.inventory import Fabric
from dcrobot.network.state import FLAPPING_CODE


@dataclasses.dataclass(frozen=True)
class AvailabilitySummary:
    """Fleet availability over a window."""

    mean: float
    worst: float
    per_link: Dict[str, float]

    @property
    def nines(self) -> float:
        """The 'number of nines' of the mean availability."""
        if self.mean >= 1.0:
            return math.inf
        if self.mean <= 0.0:
            return 0.0
        return -math.log10(1.0 - self.mean)

    def __repr__(self) -> str:
        return (f"<AvailabilitySummary mean={self.mean:.6f} "
                f"({self.nines:.2f} nines) worst={self.worst:.6f}>")


def link_availability(fabric: Fabric, start: float,
                      end: float) -> AvailabilitySummary:
    """Per-link traffic-carrying fraction over [start, end)."""
    state = getattr(fabric, "state", None)
    if (state is not None and start == 0.0 and end > start
            and end >= state.last_transition_time
            and state.n_links == len(fabric.links)):
        # Columnar fast path: the uptime accumulators sum the exact
        # float terms, in the exact order, that the per-link timeline
        # walk does, so whole-run queries (the overwhelmingly common
        # call: experiment summaries at the horizon) reduce to one
        # masked add.  Windowed queries fall back to the walk.
        n = state.n_links
        total = end - start
        uptime = state.uptime_accum[:n].copy()
        carrying = state.state_code[:n] <= FLAPPING_CODE
        uptime[carrying] += end - state.last_change[:n][carrying]
        fractions = uptime / total
        per_link = {link.id: float(fractions[link._row])
                    for link in fabric.links.values()}
    else:
        per_link = {link.id: link.uptime_fraction(start, end)
                    for link in fabric.links.values()}
    if not per_link:
        return AvailabilitySummary(mean=1.0, worst=1.0, per_link={})
    values = list(per_link.values())
    return AvailabilitySummary(
        mean=float(np.mean(values)),
        worst=float(min(values)),
        per_link=per_link)


def downtime_seconds(fabric: Fabric, start: float, end: float) -> float:
    """Total link-downtime (link-seconds not carrying traffic)."""
    horizon = end - start
    return sum((1.0 - fraction) * horizon
               for fraction in link_availability(
                   fabric, start, end).per_link.values())


def availability_from_incidents(repair_times: List[float],
                                incident_count: int,
                                horizon_seconds: float,
                                link_count: int) -> float:
    """Analytic availability: 1 - (incidents x MTTR) / link-time.

    Useful as a cross-check against the timeline-based measurement.
    """
    if link_count <= 0 or horizon_seconds <= 0:
        raise ValueError("need positive link_count and horizon")
    if not repair_times or incident_count == 0:
        return 1.0
    mean_ttr = float(np.mean(repair_times))
    downtime = incident_count * mean_ttr
    return max(0.0, 1.0 - downtime / (link_count * horizon_seconds))
