"""Measurement & economics (S11)."""

from dcrobot.metrics.amplification import (
    AmplificationStats,
    amplification_from_outcomes,
)
from dcrobot.metrics.attribution import (
    AttributionSummary,
    attribute_incidents,
    disturbed_links_from_cascade,
)
from dcrobot.metrics.availability import (
    AvailabilitySummary,
    availability_from_incidents,
    downtime_seconds,
    link_availability,
)
from dcrobot.metrics.cost import CostBreakdown, CostModel, CostParams
from dcrobot.metrics.energy import (
    TRANSCEIVER_WATTS,
    EnergyModel,
    EnergyParams,
    EnergyReport,
)
from dcrobot.metrics.mttr import (
    RepairTimeStats,
    format_duration,
    mtbf_seconds,
    repair_time_stats,
)
from dcrobot.metrics.report import Table
from dcrobot.metrics.viz import (
    availability_bar,
    hall_map,
    link_state_strip,
    sparkline,
)

__all__ = [
    "link_availability",
    "downtime_seconds",
    "availability_from_incidents",
    "AvailabilitySummary",
    "repair_time_stats",
    "RepairTimeStats",
    "format_duration",
    "mtbf_seconds",
    "amplification_from_outcomes",
    "AmplificationStats",
    "CostModel",
    "CostParams",
    "CostBreakdown",
    "Table",
    "EnergyModel",
    "EnergyParams",
    "EnergyReport",
    "TRANSCEIVER_WATTS",
    "sparkline",
    "link_state_strip",
    "hall_map",
    "availability_bar",
    "AttributionSummary",
    "attribute_incidents",
    "disturbed_links_from_cascade",
]
