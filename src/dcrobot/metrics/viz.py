"""Terminal visualization helpers.

Everything in ``dcrobot`` reports through plain text; these helpers make
the reports legible at a glance: sparklines for time series, a hall map
showing racks/switches/robots, and link-state strip charts.  No plotting
dependencies — they render to strings.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from dcrobot.network.enums import LinkState
from dcrobot.network.inventory import Fabric
from dcrobot.network.link import Link

_SPARK_GLYPHS = " ._-=+*#"


def sparkline(values: Sequence[float], width: int = 60,
              low: Optional[float] = None,
              high: Optional[float] = None) -> str:
    """Render a numeric series as a fixed-width glyph strip.

    ``low``/``high`` pin the scale (default: the series' own range);
    values are bucket-averaged down to ``width`` glyphs.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not values:
        return ""
    data = np.asarray(values, dtype=float)
    floor = low if low is not None else float(data.min())
    ceil = high if high is not None else float(data.max())
    span = max(ceil - floor, 1e-12)
    step = max(1, int(np.ceil(len(data) / width)))
    glyphs = []
    for start in range(0, len(data), step):
        window = float(data[start:start + step].mean())
        level = min(max((window - floor) / span, 0.0), 1.0)
        glyphs.append(_SPARK_GLYPHS[int(level * (len(_SPARK_GLYPHS) - 1))])
    return "".join(glyphs)


_STATE_GLYPHS = {
    LinkState.UP: "#",
    LinkState.FLAPPING: "~",
    LinkState.DOWN: ".",
    LinkState.MAINTENANCE: "m",
}


def link_state_strip(link: Link, start: float, end: float,
                     width: int = 60) -> str:
    """The link's state over [start, end) as one glyph per time bucket.

    ``#`` up, ``.`` down, ``m`` maintenance, ``~`` flapping-labelled.
    """
    if end <= start:
        raise ValueError("empty interval")
    if width < 1:
        raise ValueError("width must be >= 1")
    bucket = (end - start) / width
    # Build the state at each bucket midpoint by walking the history.
    glyphs = []
    history = list(link.history)
    for index in range(width):
        moment = start + (index + 0.5) * bucket
        state = LinkState.UP
        for when, new_state in history:
            if when <= moment:
                state = new_state
            else:
                break
        glyphs.append(_STATE_GLYPHS[state])
    return "".join(glyphs)


def hall_map(fabric: Fabric, robot_racks: Sequence[str] = (),
             max_columns: int = 40) -> str:
    """An ASCII floor plan: one character per rack.

    ``.`` empty rack, ``S`` rack with switchgear, ``H`` rack with
    hosts, ``B`` both, ``R`` a robot is currently there (overrides).
    Wide halls are truncated on the right with a ``>`` marker.
    """
    layout = fabric.layout
    switch_racks = {switch.rack_id
                    for switch in fabric.switches.values()
                    if switch.rack_id}
    host_racks = {host.rack_id for host in fabric.hosts.values()
                  if host.rack_id}
    robots = set(robot_racks)
    lines = []
    truncated = layout.racks_per_row > max_columns
    for row in range(layout.rows):
        chars = []
        for column in range(min(layout.racks_per_row, max_columns)):
            rack_id = layout.rack_at(row, column).id
            if rack_id in robots:
                chars.append("R")
            elif rack_id in switch_racks and rack_id in host_racks:
                chars.append("B")
            elif rack_id in switch_racks:
                chars.append("S")
            elif rack_id in host_racks:
                chars.append("H")
            else:
                chars.append(".")
        line = "".join(chars) + (">" if truncated else "")
        lines.append(f"row {row:>3} |{line}|")
    return "\n".join(lines)


def availability_bar(fraction: float, width: int = 30) -> str:
    """A labelled progress bar, e.g. ``[#####....] 99.93%``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction outside [0, 1]")
    if width < 1:
        raise ValueError("width must be >= 1")
    filled = int(round(fraction * width))
    return (f"[{'#' * filled}{'.' * (width - filled)}] "
            f"{100 * fraction:.2f}%")
