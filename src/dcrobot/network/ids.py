"""Human-readable, per-type sequential identifiers.

Every physical object in the inventory gets an id like ``xcvr-00042`` or
``link-00007``.  Ids are unique per :class:`IdFactory` (i.e. per fabric),
stable across runs, and sortable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdFactory:
    """Issues ids of the form ``<prefix>-<5 digit counter>``."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def make(self, prefix: str) -> str:
        """Next id for ``prefix`` (counting from 0)."""
        value = self._counters[prefix]
        self._counters[prefix] = value + 1
        return f"{prefix}-{value:05d}"

    def issued(self, prefix: str) -> int:
        """How many ids have been issued for ``prefix``."""
        return self._counters[prefix]
