"""Switches, line cards, ports, and server NICs."""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from dcrobot.network.enums import ComponentState, FormFactor


class SwitchRole(enum.Enum):
    """Where the switch sits in the fabric."""

    TOR = "tor"        #: top-of-rack / leaf in 2-tier designs
    LEAF = "leaf"
    SPINE = "spine"
    AGG = "agg"        #: aggregation (fat-tree pod layer)
    CORE = "core"
    NODE = "node"      #: generic node in expander-style flat fabrics


class Port:
    """One front-panel cage on a switch or NIC."""

    def __init__(self, port_id: str, parent_id: str, index: int,
                 form_factor: FormFactor) -> None:
        #: Columnar binding while part of a wired link (see
        #: :class:`~dcrobot.network.state.FabricState`); must exist
        #: before the mirrored ``hw_fault`` property is assigned.
        self._fs = None
        self._row = -1
        self._side = 0
        self.id = port_id
        self.parent_id = parent_id
        self.index = index
        self.form_factor = form_factor
        self.hw_fault = False
        #: id of the transceiver currently plugged in, if any.
        self.transceiver_id: Optional[str] = None
        #: id of the line card the port belongs to, if any.
        self.line_card_id: Optional[str] = None

    def __repr__(self) -> str:
        return f"<Port {self.id} on {self.parent_id}>"

    @property
    def hw_fault(self) -> bool:
        return self._hw_fault

    @hw_fault.setter
    def hw_fault(self, value: bool) -> None:
        self._hw_fault = value
        fs = self._fs
        if fs is not None:
            fs.port_hw_fault[self._side, self._row] = value

    @property
    def occupied(self) -> bool:
        return self.transceiver_id is not None

    def plug(self, transceiver_id: str) -> None:
        if self.occupied:
            raise ValueError(f"port {self.id} already occupied")
        self.transceiver_id = transceiver_id

    def unplug(self) -> str:
        if not self.occupied:
            raise ValueError(f"port {self.id} is empty")
        unit, self.transceiver_id = self.transceiver_id, None
        return unit


class LineCard:
    """A replaceable card carrying a group of ports."""

    def __init__(self, card_id: str, switch_id: str,
                 port_ids: List[str]) -> None:
        self.id = card_id
        self.switch_id = switch_id
        self.port_ids = list(port_ids)
        self.hw_fault = False
        self.state = ComponentState.ACTIVE

    def __repr__(self) -> str:
        return f"<LineCard {self.id} ports={len(self.port_ids)}>"

    def fail_hardware(self) -> None:
        self.hw_fault = True
        self.state = ComponentState.FAILED

    def replace(self) -> None:
        self.hw_fault = False
        self.state = ComponentState.ACTIVE


class Switch:
    """A switch chassis: ports, optional line cards, physical placement."""

    def __init__(self, switch_id: str, role: SwitchRole, radix: int,
                 form_factor: FormFactor = FormFactor.QSFP_DD,
                 rack_id: Optional[str] = None, u_position: int = 1,
                 ports_per_line_card: Optional[int] = None) -> None:
        if radix < 1:
            raise ValueError(f"radix must be >= 1, got {radix}")
        self.id = switch_id
        self.role = role
        self.radix = radix
        self.rack_id = rack_id
        self.u_position = u_position
        self.state = ComponentState.ACTIVE
        self.ports: List[Port] = [
            Port(f"{switch_id}/p{index:03d}", switch_id, index, form_factor)
            for index in range(radix)]
        self.line_cards: List[LineCard] = []
        if ports_per_line_card:
            for start in range(0, radix, ports_per_line_card):
                chunk = self.ports[start:start + ports_per_line_card]
                card = LineCard(
                    f"{switch_id}/lc{start // ports_per_line_card:02d}",
                    switch_id, [port.id for port in chunk])
                for port in chunk:
                    port.line_card_id = card.id
                self.line_cards.append(card)

    def __repr__(self) -> str:
        return f"<Switch {self.id} {self.role.value} radix={self.radix}>"

    def port(self, index: int) -> Port:
        return self.ports[index]

    def free_ports(self) -> List[Port]:
        """Unoccupied, healthy ports."""
        return [port for port in self.ports
                if not port.occupied and not port.hw_fault]

    def next_free_port(self) -> Port:
        free = self.free_ports()
        if not free:
            raise ValueError(f"switch {self.id} has no free ports")
        return free[0]

    def line_card_of(self, port_id: str) -> Optional[LineCard]:
        by_id: Dict[str, LineCard] = {card.id: card
                                      for card in self.line_cards}
        for port in self.ports:
            if port.id == port_id and port.line_card_id:
                return by_id[port.line_card_id]
        return None


class Host:
    """A server with a NIC exposing one or more ports (e.g. a GPU node)."""

    def __init__(self, host_id: str, port_count: int = 1,
                 form_factor: FormFactor = FormFactor.QSFP56,
                 rack_id: Optional[str] = None, u_position: int = 1) -> None:
        self.id = host_id
        self.rack_id = rack_id
        self.u_position = u_position
        self.state = ComponentState.ACTIVE
        self.ports: List[Port] = [
            Port(f"{host_id}/p{index:03d}", host_id, index, form_factor)
            for index in range(port_count)]

    def __repr__(self) -> str:
        return f"<Host {self.id} ports={len(self.ports)}>"

    def free_ports(self) -> List[Port]:
        """Unoccupied, healthy ports."""
        return [port for port in self.ports
                if not port.occupied and not port.hw_fault]

    def next_free_port(self) -> Port:
        free = self.free_ports()
        if not free:
            raise ValueError(f"host {self.id} has no free ports")
        return free[0]
