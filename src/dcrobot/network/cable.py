"""Cables: DAC/AEC/AOC integrated cables and separable LC/MPO fiber.

Separable cables (LC, MPO) expose field-accessible end-faces at both ends
that can be detached from their transceivers, inspected, and cleaned
(§3.2).  Integrated cables (DAC/AEC/AOC) have their "transceivers"
attached at manufacture and can only be replaced as a whole.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from dcrobot.network.endface import EndFace
from dcrobot.network.enums import CableKind, ComponentState, EndFacePolish

#: Conventional reach bands (metres) used when choosing a cable kind.
DAC_MAX_LENGTH_M = 3.0
AOC_MAX_LENGTH_M = 30.0


def kind_for_length(length_m: float, gbps: int = 100) -> CableKind:
    """Pick the customary cable construction for a link of given reach.

    Short links use passive copper, medium runs integrated active optics,
    long runs separate transceivers + MPO/LC fiber (§3.1).  Links of
    400 Gbit/s and above need parallel fibers, hence MPO over LC.
    """
    if length_m <= DAC_MAX_LENGTH_M:
        return CableKind.DAC
    if length_m <= AOC_MAX_LENGTH_M:
        return CableKind.AOC
    return CableKind.MPO if gbps >= 200 else CableKind.LC


def cores_for(kind: CableKind, gbps: int) -> int:
    """Fiber cores per cable: 100G/core, so an 800G MPO carries 8 (§3.2)."""
    if kind is not CableKind.MPO:
        return 1
    return max(2, int(np.ceil(gbps / 100.0)))


class Cable:
    """One physical cable with (for separable kinds) two end-faces."""

    def __init__(self, cable_id: str, kind: CableKind, length_m: float,
                 core_count: int = 1,
                 polish: EndFacePolish = EndFacePolish.UPC,
                 install_time: float = 0.0) -> None:
        if length_m <= 0:
            raise ValueError(f"length_m must be > 0, got {length_m}")
        if core_count < 1:
            raise ValueError(f"core_count must be >= 1, got {core_count}")
        if kind is not CableKind.MPO and core_count > 2:
            raise ValueError(f"{kind.value} cables carry 1-2 cores")
        #: Columnar binding while wired into a fabric link (see
        #: :class:`~dcrobot.network.state.FabricState`); must exist
        #: before any mirrored property is assigned below.
        self._fs = None
        self._row = -1
        self.id = cable_id
        self.kind = kind
        self.length_m = float(length_m)
        self.core_count = core_count
        self.polish = polish
        self.state = ComponentState.ACTIVE
        self.damaged = False
        self.install_time = install_time
        if kind.is_separable:
            self.end_a: Optional[EndFace] = EndFace(core_count, polish)
            self.end_b: Optional[EndFace] = EndFace(core_count, polish)
        else:
            self.end_a = None
            self.end_b = None
        #: Whether each end is currently mated to its transceiver.
        self.attached_a = True
        self.attached_b = True

    def __repr__(self) -> str:
        return (f"<Cable {self.id} {self.kind.value} {self.length_m:.1f}m "
                f"cores={self.core_count}>")

    # -- columnar mirror -------------------------------------------------------

    @property
    def damaged(self) -> bool:
        return self._damaged

    @damaged.setter
    def damaged(self, value: bool) -> None:
        self._damaged = value
        fs = self._fs
        if fs is not None:
            fs.cable_damaged[self._row] = value

    @property
    def attached_a(self) -> bool:
        return self._attached_a

    @attached_a.setter
    def attached_a(self, value: bool) -> None:
        self._attached_a = value
        fs = self._fs
        if fs is not None:
            fs.cable_attached[0, self._row] = value

    @property
    def attached_b(self) -> bool:
        return self._attached_b

    @attached_b.setter
    def attached_b(self, value: bool) -> None:
        self._attached_b = value
        fs = self._fs
        if fs is not None:
            fs.cable_attached[1, self._row] = value

    @property
    def cleanable(self) -> bool:
        """Field-cleanable ⇔ the ends detach from their transceivers."""
        return self.kind.is_separable

    @property
    def worst_contamination(self) -> float:
        """Dirtiest core over both end-faces (0 for integrated cables)."""
        levels = [end.worst_contamination
                  for end in (self.end_a, self.end_b) if end is not None]
        return max(levels) if levels else 0.0

    @property
    def impaired(self) -> bool:
        """True if damage or dirt measurably hurts the optical budget."""
        if self.damaged:
            return True
        return any(end.impaired
                   for end in (self.end_a, self.end_b) if end is not None)

    def endface(self, side: str) -> EndFace:
        """The end-face at side ``"a"`` or ``"b"`` (separable cables only)."""
        end = {"a": self.end_a, "b": self.end_b}[side]
        if end is None:
            raise ValueError(
                f"{self.kind.value} cable {self.id} has no field end-faces")
        return end

    def detach(self, side: str) -> None:
        """Unmate one end from its transceiver (cleaning precondition)."""
        if not self.kind.is_separable:
            raise ValueError(f"cannot detach integrated {self.kind.value}")
        if side == "a":
            self.attached_a = False
        elif side == "b":
            self.attached_b = False
        else:
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")

    def attach(self, side: str) -> None:
        """Re-mate one end to its transceiver."""
        if side == "a":
            self.attached_a = True
        elif side == "b":
            self.attached_b = True
        else:
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")

    def damage(self) -> None:
        """Permanently damage the cable (bend, crush, break)."""
        self.damaged = True
        self.state = ComponentState.FAILED
