"""Cable bundles: groups of cables routed through the same tray segment.

Bundles are the physical coupling that produces cascading failures:
touching one cable in a dense loom disturbs its neighbours (§1).  The
denser the bundle, the more neighbours a repair can perturb — and the
harder perception/grasping becomes for a robot (§3.3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class CableBundle:
    """A set of cables sharing a tray segment."""

    def __init__(self, bundle_id: str,
                 cable_ids: Optional[List[str]] = None) -> None:
        self.id = bundle_id
        self.cable_ids: List[str] = list(cable_ids or [])

    def __repr__(self) -> str:
        return f"<CableBundle {self.id} cables={len(self.cable_ids)}>"

    def __len__(self) -> int:
        return len(self.cable_ids)

    def add(self, cable_id: str) -> None:
        if cable_id in self.cable_ids:
            raise ValueError(f"{cable_id} already in bundle {self.id}")
        self.cable_ids.append(cable_id)

    def remove(self, cable_id: str) -> None:
        self.cable_ids.remove(cable_id)

    def neighbors_of(self, cable_id: str) -> List[str]:
        """Other cables in the bundle (the cascade blast set)."""
        if cable_id not in self.cable_ids:
            raise ValueError(f"{cable_id} not in bundle {self.id}")
        return [other for other in self.cable_ids if other != cable_id]

    @property
    def density(self) -> int:
        """Cable count — the occlusion/cascade driver."""
        return len(self.cable_ids)


class BundleRegistry:
    """Looks up the bundle a cable belongs to.

    Listeners subscribed via :meth:`subscribe` observe membership
    changes *after* they land (events ``"assigned"``/``"unassigned"``
    with the cable and bundle ids) — the hook the incremental SMI
    tracker uses to keep its occlusion/granularity aggregates current
    without rescanning the registry.
    """

    def __init__(self) -> None:
        self.bundles: Dict[str, CableBundle] = {}
        self._bundle_of_cable: Dict[str, str] = {}
        self._listeners: List[Callable] = []

    def subscribe(self, listener: Callable) -> Callable:
        """Register ``listener(event, cable_id=..., bundle_id=...)``."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable) -> None:
        self._listeners.remove(listener)

    def _notify(self, event: str, **info) -> None:
        for listener in self._listeners:
            listener(event, **info)

    def create(self, bundle_id: str) -> CableBundle:
        if bundle_id in self.bundles:
            raise ValueError(f"bundle {bundle_id} already exists")
        bundle = CableBundle(bundle_id)
        self.bundles[bundle_id] = bundle
        return bundle

    def assign(self, cable_id: str, bundle_id: str) -> None:
        if cable_id in self._bundle_of_cable:
            raise ValueError(f"{cable_id} already bundled")
        self.bundles[bundle_id].add(cable_id)
        self._bundle_of_cable[cable_id] = bundle_id
        if self._listeners:
            self._notify("assigned", cable_id=cable_id,
                         bundle_id=bundle_id)

    def unassign(self, cable_id: str) -> None:
        bundle_id = self._bundle_of_cable.pop(cable_id, None)
        if bundle_id is not None:
            self.bundles[bundle_id].remove(cable_id)
            if self._listeners:
                self._notify("unassigned", cable_id=cable_id,
                             bundle_id=bundle_id)

    def bundle_of(self, cable_id: str) -> Optional[CableBundle]:
        bundle_id = self._bundle_of_cable.get(cable_id)
        return self.bundles[bundle_id] if bundle_id else None

    def neighbors_of(self, cable_id: str) -> List[str]:
        """Cables physically adjacent to ``cable_id`` (empty if unbundled)."""
        bundle = self.bundle_of(cable_id)
        return bundle.neighbors_of(cable_id) if bundle else []
