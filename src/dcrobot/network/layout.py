"""Physical datacenter geometry: halls, rows, racks, and positions.

Robot mobility (travel times, operating radii, §3.4) and cascading
failures (physical proximity) both need real coordinates, so every rack
and switch has a position in hall space.  Units are metres; the hall
floor is the XY plane, Z is height.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

#: Standard geometry constants (metres).
RACK_WIDTH_M = 0.6
RACK_DEPTH_M = 1.2
AISLE_WIDTH_M = 1.8
RACK_UNIT_HEIGHT_M = 0.0445  #: one "U"


@dataclasses.dataclass(frozen=True)
class Position:
    """A point in hall coordinates (metres)."""

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance."""
        return math.sqrt((self.x - other.x) ** 2
                         + (self.y - other.y) ** 2
                         + (self.z - other.z) ** 2)

    def floor_distance_to(self, other: "Position") -> float:
        """Distance in the XY plane (what a floor-bound robot travels)."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclasses.dataclass
class Rack:
    """One rack: a column of ``height_u`` unit slots in a row."""

    id: str
    row: int
    index: int
    position: Position
    height_u: int = 42

    def u_position(self, u: int) -> Position:
        """Hall-space position of unit slot ``u`` (1-based, bottom-up).

        The paper notes racks run up to 52U and servicing at head height
        and above is hard for humans (§3.4) — robot reach models use the
        Z coordinate this returns.
        """
        if not 1 <= u <= self.height_u:
            raise ValueError(f"u={u} outside 1..{self.height_u}")
        return Position(self.position.x, self.position.y,
                        u * RACK_UNIT_HEIGHT_M)


class HallLayout:
    """A hall of ``rows`` x ``racks_per_row`` racks on a regular grid."""

    def __init__(self, rows: int, racks_per_row: int,
                 height_u: int = 42) -> None:
        if rows < 1 or racks_per_row < 1:
            raise ValueError("rows and racks_per_row must be >= 1")
        self.rows = rows
        self.racks_per_row = racks_per_row
        self.height_u = height_u
        self.racks: Dict[str, Rack] = {}
        self._grid: List[List[Rack]] = []
        for row in range(rows):
            row_racks = []
            for index in range(racks_per_row):
                rack_id = f"rack-r{row:02d}c{index:02d}"
                position = Position(
                    x=index * RACK_WIDTH_M,
                    y=row * (RACK_DEPTH_M + AISLE_WIDTH_M))
                rack = Rack(rack_id, row, index, position, height_u)
                self.racks[rack_id] = rack
                row_racks.append(rack)
            self._grid.append(row_racks)

    def __repr__(self) -> str:
        return f"<HallLayout {self.rows}x{self.racks_per_row}>"

    @property
    def rack_count(self) -> int:
        return self.rows * self.racks_per_row

    def rack_at(self, row: int, index: int) -> Rack:
        return self._grid[row][index]

    def rack_list(self) -> List[Rack]:
        """All racks in row-major order."""
        return [rack for row in self._grid for rack in row]

    def travel_distance(self, origin: Position, target: Position) -> float:
        """Aisle-constrained travel distance between two floor points.

        Robots (like humans) move along aisles: along X within a row's
        aisle, along Y on cross-aisles.  Manhattan distance is the
        standard approximation for that movement pattern.
        """
        return abs(origin.x - target.x) + abs(origin.y - target.y)

    def row_of(self, rack_id: str) -> int:
        return self.racks[rack_id].row

    def racks_in_row(self, row: int) -> List[Rack]:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} outside 0..{self.rows - 1}")
        return list(self._grid[row])

    def neighbors(self, rack_id: str, radius_m: float) -> List[Rack]:
        """Racks whose floor position lies within ``radius_m`` (excludes
        the rack itself) — the blast radius for vibration coupling."""
        center = self.racks[rack_id]
        return [rack for rack in self.racks.values()
                if rack.id != rack_id
                and rack.position.floor_distance_to(center.position)
                <= radius_m]
