"""Optical/electrical transceivers and their (diverse) mechanical models.

The paper stresses that while electrical front-ends are standardized, the
*backend* — where a gripper grabs — "can vary in color, shape, material,
stiffness" across literally tens of deployed designs (§4, "Hardware
redesign and standardization").  We model that diversity explicitly: each
:class:`TransceiverModel` carries mechanical attributes that determine how
hard it is for a robot to recognize and grip.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

import numpy as np

from dcrobot.network.endface import EndFace
from dcrobot.network.enums import ComponentState, FormFactor


class PullTabKind(enum.Enum):
    """Mechanical release mechanisms seen across vendor backends."""

    TAB = "pull-tab"
    BAIL = "bail-latch"
    RIGID = "rigid-handle"


@dataclasses.dataclass(frozen=True)
class TransceiverModel:
    """A vendor design: everything a robot's perception/grip cares about."""

    model_id: str
    vendor: str
    form_factor: FormFactor
    pull_tab: PullTabKind
    grip_width_mm: float
    tab_stiffness: float       #: 0 floppy .. 1 rigid
    color: str
    #: Aggregate 0..1 difficulty for robotic grasping of this design.
    grip_difficulty: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.grip_difficulty <= 1.0:
            raise ValueError("grip_difficulty outside [0, 1]")


_VENDORS = ["acme", "borealis", "cyan", "dexter", "ember",
            "fjord", "gale", "harbor", "iris", "jetty"]
_COLORS = ["black", "grey", "blue", "beige", "green"]


def generate_model_catalog(count: int, rng: np.random.Generator,
                           form_factors: Optional[List[FormFactor]] = None
                           ) -> List[TransceiverModel]:
    """Synthesize ``count`` distinct vendor designs.

    Reproduces the diversity the paper describes: same standardized
    form factors, widely varying mechanical backends.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    factors = form_factors or [FormFactor.QSFP28, FormFactor.QSFP56,
                               FormFactor.QSFP_DD, FormFactor.OSFP]
    catalog = []
    for index in range(count):
        factor = factors[index % len(factors)]
        stiffness = float(rng.uniform(0.1, 1.0))
        tab = rng.choice(list(PullTabKind))
        # Floppy tabs and unusual widths are harder to grip.
        width = float(rng.uniform(10.0, 24.0))
        difficulty = float(np.clip(
            0.15 + 0.5 * (1.0 - stiffness) + rng.normal(0.0, 0.08), 0.0, 0.9))
        catalog.append(TransceiverModel(
            model_id=f"model-{index:03d}",
            vendor=_VENDORS[index % len(_VENDORS)],
            form_factor=factor,
            pull_tab=tab,
            grip_width_mm=width,
            tab_stiffness=stiffness,
            color=_COLORS[index % len(_COLORS)],
            grip_difficulty=difficulty,
        ))
    return catalog


class Transceiver:
    """One pluggable transceiver unit and its physical degradation state.

    Degradation dimensions (see :class:`~dcrobot.network.enums.
    DegradationKind` for the repair mapping):

    * ``oxidation`` — gold-contact corrosion, 0..1; reseating wipes it.
    * ``firmware_stuck`` — wedged controller; reseating power-cycles it.
    * ``hw_fault`` — permanent electronics failure; only replacement fixes.
    * ``receptacle`` — the *inside* optical end-face, which the cleaning
      robot inspects and cleans along with the cable end-face (§3.3.2).
    """

    def __init__(self, unit_id: str, model: TransceiverModel,
                 optical: bool = True, install_time: float = 0.0) -> None:
        #: Columnar binding while wired into a fabric link (see
        #: :class:`~dcrobot.network.state.FabricState`); must exist
        #: before any mirrored property is assigned below.
        self._fs = None
        self._row = -1
        self._side = 0
        self.receptacle = EndFace(core_count=1) if optical else None
        self.id = unit_id
        self.model = model
        self.optical = optical
        self.state = ComponentState.ACTIVE
        self.seated = True
        self.install_time = install_time
        self.last_seated_time = install_time
        self.reseat_count = 0
        self.oxidation = 0.0
        self.firmware_stuck = False
        self.hw_fault = False

    def __repr__(self) -> str:
        return (f"<Transceiver {self.id} {self.model.form_factor.label} "
                f"state={self.state.value}>")

    # -- columnar mirror -------------------------------------------------------
    # ``oxidation`` is written densely by the aging kernel, so the
    # array is the readable truth while bound; the sparse flags keep
    # their plain attribute as truth and write through to the arrays.

    @property
    def oxidation(self) -> float:
        fs = self._fs
        if fs is None:
            return self._oxidation
        return float(fs.ox[self._side, self._row])

    @oxidation.setter
    def oxidation(self, value: float) -> None:
        fs = self._fs
        if fs is None:
            self._oxidation = value
        else:
            fs.ox[self._side, self._row] = value

    @property
    def seated(self) -> bool:
        return self._seated

    @seated.setter
    def seated(self, value: bool) -> None:
        self._seated = value
        fs = self._fs
        if fs is not None:
            fs.seated[self._side, self._row] = value

    @property
    def firmware_stuck(self) -> bool:
        return self._firmware_stuck

    @firmware_stuck.setter
    def firmware_stuck(self, value: bool) -> None:
        self._firmware_stuck = value
        fs = self._fs
        if fs is not None:
            fs.unit_fw_stuck[self._side, self._row] = value

    @property
    def hw_fault(self) -> bool:
        return self._hw_fault

    @hw_fault.setter
    def hw_fault(self, value: bool) -> None:
        self._hw_fault = value
        fs = self._fs
        if fs is not None:
            fs.unit_hw_fault[self._side, self._row] = value

    @property
    def form_factor(self) -> FormFactor:
        return self.model.form_factor

    @property
    def degraded(self) -> bool:
        """True if any degradation dimension is active."""
        receptacle_dirty = (self.receptacle is not None
                            and self.receptacle.impaired)
        return (self.hw_fault or self.firmware_stuck
                or self.oxidation > 0.3 or receptacle_dirty)

    # -- physical operations -------------------------------------------------

    def unseat(self) -> None:
        """Pull the unit out of its cage."""
        self.seated = False

    def seat(self, now: float, rng: Optional[np.random.Generator] = None
             ) -> None:
        """Insert the unit: wipes contact oxidation and reboots firmware.

        The paper's two observed reseat effects (§3.2): (i) the insertion
        wipe scrubs corrosion off the gold contacts, (ii) the power cycle
        reboots the transceiver.  A small residue of oxidation can remain.
        """
        self.seated = True
        self.last_seated_time = now
        self.reseat_count += 1
        residue = rng.uniform(0.0, 0.15) if rng is not None else 0.0
        self.oxidation *= residue
        if self.oxidation < 1e-3:
            self.oxidation = 0.0
        self.firmware_stuck = False

    def fail_hardware(self) -> None:
        """Permanent electronics fault (cleared only by replacement)."""
        self.hw_fault = True
        self.state = ComponentState.FAILED
