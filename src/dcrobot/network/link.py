"""Network links: two ports, two transceivers, one cable, one state.

A :class:`Link` is the unit of failure and repair throughout the library.
Its operational state is *derived* from the physical condition of its
constituent components by the health model in
:mod:`dcrobot.failures.health`; the link itself records the resulting
state timeline, which is what telemetry, availability accounting, and
flap detection consume.

While wired into a fabric, a link is a thin view over a row of the
columnar :class:`~dcrobot.network.state.FabricState`: state changes
mirror into the arrays (so the batch kernels see them) and
``loss_rate`` — which the health kernel writes densely — reads straight
from its column.  A standalone link (not yet connected, or a test
fixture) behaves exactly as before on plain attributes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from dcrobot.network.cable import Cable
from dcrobot.network.enums import LinkState
from dcrobot.network.state import CODE_OF
from dcrobot.network.switchgear import Port
from dcrobot.network.transceiver import Transceiver


class Link:
    """One point-to-point link in the fabric."""

    def __init__(self, link_id: str, port_a: Port, port_b: Port,
                 transceiver_a: Transceiver, transceiver_b: Transceiver,
                 cable: Cable, capacity_gbps: float,
                 bundle_id: Optional[str] = None) -> None:
        #: The FabricState this link is bound to (None while standalone)
        #: and its dense row there.  Must exist before any property set.
        self._fs = None
        self._row = -1
        self.id = link_id
        self.port_a = port_a
        self.port_b = port_b
        self.transceiver_a = transceiver_a
        self.transceiver_b = transceiver_b
        self.cable = cable
        self.capacity_gbps = float(capacity_gbps)
        self.bundle_id = bundle_id
        self.state = LinkState.UP
        #: Timeline of (time, new_state) transitions, starting implicit UP.
        self.history: List[Tuple[float, LinkState]] = []
        #: Current packet-loss probability (set by the health model).
        self.loss_rate = 0.0
        #: Cumulative count of UP<->non-UP transitions (flap counter).
        self.transition_count = 0

    # -- columnar mirror -------------------------------------------------------

    @property
    def state(self) -> LinkState:
        return self._state

    @state.setter
    def state(self, value: LinkState) -> None:
        self._state = value
        fs = self._fs
        if fs is not None:
            fs.state_code[self._row] = CODE_OF[value]

    @property
    def loss_rate(self) -> float:
        fs = self._fs
        if fs is None:
            return self._loss_rate
        return float(fs.loss_rate[self._row])

    @loss_rate.setter
    def loss_rate(self, value: float) -> None:
        fs = self._fs
        if fs is None:
            self._loss_rate = value
        else:
            fs.loss_rate[self._row] = value

    def __repr__(self) -> str:
        return (f"<Link {self.id} {self.port_a.parent_id}<->"
                f"{self.port_b.parent_id} {self.state.value}>")

    # -- identity helpers ------------------------------------------------------

    @property
    def endpoint_ids(self) -> Tuple[str, str]:
        """(switch/host id, switch/host id) of the two ends."""
        return (self.port_a.parent_id, self.port_b.parent_id)

    def ports(self) -> Tuple[Port, Port]:
        return (self.port_a, self.port_b)

    def transceivers(self) -> Tuple[Transceiver, Transceiver]:
        return (self.transceiver_a, self.transceiver_b)

    def side_of_port(self, port_id: str) -> str:
        """'a' or 'b' for the given port id."""
        if port_id == self.port_a.id:
            return "a"
        if port_id == self.port_b.id:
            return "b"
        raise ValueError(f"port {port_id} not on link {self.id}")

    def transceiver_at(self, side: str) -> Transceiver:
        return {"a": self.transceiver_a, "b": self.transceiver_b}[side]

    def replace_transceiver(self, side: str, new_unit: Transceiver) -> Transceiver:
        """Swap in a spare; returns the removed unit."""
        if side == "a":
            old, self.transceiver_a = self.transceiver_a, new_unit
            self.port_a.transceiver_id = new_unit.id
        elif side == "b":
            old, self.transceiver_b = self.transceiver_b, new_unit
            self.port_b.transceiver_id = new_unit.id
        else:
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        if self._fs is not None:
            self._fs.rebind_transceiver(self, side, old, new_unit)
        return old

    def replace_cable(self, new_cable: Cable) -> Cable:
        """Swap in a new cable; returns the removed one."""
        old, self.cable = self.cable, new_cable
        if self._fs is not None:
            self._fs.rebind_cable(self, old, new_cable)
        return old

    # -- state timeline -------------------------------------------------------

    @property
    def operational(self) -> bool:
        """True while the link can carry traffic (possibly degraded)."""
        return self.state.carries_traffic

    def set_state(self, now: float, new_state: LinkState) -> bool:
        """Record a state transition; returns True if the state changed.

        Administrative MAINTENANCE transitions do not count as flaps:
        a repair taking a link out of service is not the gray failure the
        flap counter exists to catch.
        """
        old_state = self._state
        if new_state is old_state:
            return False
        administrative = (LinkState.MAINTENANCE in (old_state, new_state))
        was_up = old_state is LinkState.UP
        is_up = new_state is LinkState.UP
        flapped = was_up != is_up and not administrative
        if flapped:
            self.transition_count += 1
        self.state = new_state
        self.history.append((now, new_state))
        fs = self._fs
        if fs is not None:
            fs.on_transition(self._row, now, old_state, new_state, flapped)
        return True

    def uptime_fraction(self, start: float, end: float) -> float:
        """Fraction of [start, end) the link spent carrying traffic.

        Walks the recorded transition timeline; the state before the
        first recorded transition is assumed UP (links start healthy).
        """
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        total = end - start
        up_time = 0.0
        current_state = LinkState.UP
        cursor = start
        for when, new_state in self.history:
            if when <= start:
                current_state = new_state
                continue
            if when >= end:
                break
            if current_state.carries_traffic:
                up_time += when - cursor
            cursor = when
            current_state = new_state
        if current_state.carries_traffic:
            up_time += end - cursor
        return up_time / total

    def transitions_in_window(self, start: float, end: float) -> int:
        """UP<->non-UP flap transitions recorded within [start, end).

        Transitions into or out of MAINTENANCE are administrative and
        excluded (see :meth:`set_state`).
        """
        count = 0
        previous_state = LinkState.UP
        # Determine state entering the window.
        for when, new_state in self.history:
            if when <= start:
                previous_state = new_state
                continue
            if when >= end:
                break
            administrative = (LinkState.MAINTENANCE
                              in (previous_state, new_state))
            now_up = new_state is LinkState.UP
            previous_up = previous_state is LinkState.UP
            if now_up != previous_up and not administrative:
                count += 1
            previous_state = new_state
        return count
