"""Columnar fabric state: the numpy backbone of every per-link hot path.

The ROADMAP north star asks for a simulator that runs "as fast as the
hardware allows" on production-scale fabrics.  Python object graphs do
not: every periodic process (health ticks, dust and oxidation
accumulation, telemetry polling, availability accounting) used to walk
``fabric.links.values()`` attribute by attribute, which caps the world
at toy sizes.  :class:`FabricState` keeps the same facts as contiguous
numpy columns — one row per wired link — so those processes become
array kernels (`HealthModel.tick_all`, `DustProcess.step_all`,
`OxidationAging.step_all`, `TelemetryMonitor.poll_all`, the array path
in :func:`dcrobot.metrics.availability.link_availability`).

Design rules:

* **Objects stay the API.**  ``Link``/``Transceiver``/``Cable``/
  ``Port``/``EndFace`` remain what the controller, robots, humans,
  chaos, journal, and obs layers touch.  While a link is wired into a
  fabric its components are *bound* to a row here: sparse writes
  (a robot unseating a unit, the injector damaging a cable) mirror
  through property setters, and the two dense-kernel-written fields
  (``Link.loss_rate``, ``Transceiver.oxidation``) read straight from
  the arrays.  Unbound objects (spares, unit-test fixtures) behave
  exactly as before on plain attributes.
* **Dense rows, immortal lids.**  Rows are kept dense with
  swap-with-last removal so kernels slice ``[:n_links]`` without
  masks.  Each binding also gets a monotonically increasing *lid*
  (link insertion ordinal); sorting rows by lid reproduces
  ``fabric.links`` dict order, which is what keeps batched RNG draws
  stream-identical to the legacy per-link loops.
* **Event-sourced flap log.**  ``set_state`` appends flap-qualifying
  transitions (same rule as ``Link.transition_count``) to a global
  time-sorted ``(time, lid)`` log; windowed flap counts for the whole
  fleet are then two ``searchsorted`` calls and a ``bincount``.
* **Copy-on-write forks.**  :meth:`FabricState.fork` snapshots the
  whole store in O(1): every column is *shared* between the states
  until one of them writes it, at which point the writer keeps the
  buffer and every other holder silently receives its own plain copy
  (see :class:`_CowColumn`).  A fork is a pure *data* twin — the
  Link/Transceiver/... view objects stay bound to the parent, so a
  forked state is mutated column-wise (the digital-twin vocabulary in
  :mod:`dcrobot.twin.world`), never through the object setters.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from dcrobot.network.enums import LinkState

#: Dense integer codes for :class:`LinkState`; ``carries_traffic``
#: states come first so ``code <= FLAPPING_CODE`` tests carrier-ness.
STATE_OF = (LinkState.UP, LinkState.FLAPPING, LinkState.DOWN,
            LinkState.MAINTENANCE)
CODE_OF: Dict[LinkState, int] = {state: code
                                 for code, state in enumerate(STATE_OF)}
UP_CODE, FLAPPING_CODE, DOWN_CODE, MAINTENANCE_CODE = range(4)

_INITIAL_CAPACITY = 64
_FLAP_LOG_CAPACITY = 1024

#: (attribute, default, dtype, per_side) for every managed column.
#: ``per_side`` columns have shape (2, capacity): row 0 = the "a" end.
_SPEC = (
    ("state_code", 0, np.int8, False),
    ("loss_rate", 0.0, np.float64, False),
    ("down_since", np.nan, np.float64, False),
    ("last_change", 0.0, np.float64, False),
    ("uptime_accum", 0.0, np.float64, False),
    ("cable_damaged", False, np.bool_, False),
    ("cleanable", False, np.bool_, False),
    ("lid_of_row", 0, np.int64, False),
    ("ox", 0.0, np.float64, True),
    ("seated", True, np.bool_, True),
    ("unit_hw_fault", False, np.bool_, True),
    ("unit_fw_stuck", False, np.bool_, True),
    ("port_hw_fault", False, np.bool_, True),
    ("cable_attached", True, np.bool_, True),
    ("cable_end_worst", 0.0, np.float64, True),
    ("cable_end_scratched", False, np.bool_, True),
    ("recept_worst", 0.0, np.float64, True),
)


#: Attributes shared lazily between forked states: every managed
#: column plus the flap-event log arrays.
_COW_ATTRS = tuple(name for name, _d, _t, _s in _SPEC) \
    + ("_flap_times", "_flap_lids")


class _Share:
    """One lazily-shared buffer and the states currently holding it.

    ``on_write(writer)`` is the whole copy-on-write protocol: the
    *writer keeps the buffer* (so any views it handed out — kernel
    slices like ``state.ox[:, :n]`` — stay valid through the write)
    and every other holder is re-pointed at a private plain copy.
    """

    __slots__ = ("name", "holders", "dead")

    def __init__(self, name: str) -> None:
        self.name = name
        self.holders: List["FabricState"] = []
        self.dead = False

    def on_write(self, writer) -> None:
        self.dead = True
        for holder in self.holders:
            current = getattr(holder, self.name)
            if not isinstance(current, _CowColumn) \
                    or current._share is not self:
                continue  # already detached (e.g. by a _grow)
            if holder is writer:
                setattr(holder, self.name, current.view(np.ndarray))
            else:
                setattr(holder, self.name,
                        np.array(current, subok=False))
        self.holders = []


class _CowColumn(np.ndarray):
    """An ndarray with a copy-on-first-write barrier.

    Slicing propagates the barrier (``self.base is not None`` in
    ``__array_finalize__``), so writes through kernel views like
    ``state.seated[:, :n]`` still trigger it; ufunc *results* are
    fresh allocations (``base is None``) and stay barrier-free, so
    ``usable = state_code[:n] <= FLAPPING_CODE; usable[row] = False``
    never causes a spurious copy.  One caveat for consumers: a raw
    column view cached across a *foreign* state's write goes stale —
    re-slice from the attribute per operation (which every kernel in
    the codebase already does; :class:`LinkColumn` is the sanctioned
    long-lived indirection).
    """

    _share: "_Share" = None
    _owner: "FabricState" = None

    def __array_finalize__(self, obj):
        if obj is None or self.base is None:
            self._share = None
            self._owner = None
        else:
            self._share = getattr(obj, "_share", None)
            self._owner = getattr(obj, "_owner", None)

    def _barrier(self) -> None:
        share = self._share
        if share is not None and not share.dead:
            share.on_write(self._owner)

    def __setitem__(self, key, value):
        self._barrier()
        np.ndarray.__setitem__(self, key, value)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        # In-place ufuncs (`col += x`, `np.add.at(col, ...)`) bypass
        # __setitem__; fire the barrier for their write targets, then
        # run the ufunc on plain views (results stay plain ndarrays).
        out = kwargs.get("out")
        if out:
            for target in out:
                if isinstance(target, _CowColumn):
                    target._barrier()
            kwargs["out"] = tuple(
                target.view(np.ndarray)
                if isinstance(target, _CowColumn) else target
                for target in out)
        elif method == "at" and isinstance(inputs[0], _CowColumn):
            inputs[0]._barrier()
        inputs = tuple(value.view(np.ndarray)
                       if isinstance(value, _CowColumn) else value
                       for value in inputs)
        return getattr(ufunc, method)(*inputs, **kwargs)


class LinkColumn:
    """A consumer-owned per-link column that tracks fabric membership.

    Processes that need private per-link state (e.g. the health model's
    Gilbert-Elliott phase) register a column via
    :meth:`FabricState.add_link_column`; the state keeps ``values``
    row-aligned through link additions, removals, and capacity growth.
    """

    __slots__ = ("values", "fill")

    def __init__(self, capacity: int, fill) -> None:
        self.fill = fill
        dtype = np.bool_ if isinstance(fill, bool) else np.float64
        self.values = np.full(capacity, fill, dtype=dtype)


class FabricState:
    """Struct-of-arrays store for every link wired into one fabric."""

    def __init__(self) -> None:
        self._capacity = _INITIAL_CAPACITY
        #: Number of live rows; every column is valid on ``[:n_links]``.
        self.n_links = 0
        #: Bumped on any structural change (bind/unbind/rebind) so
        #: consumers can invalidate row-aligned caches.
        self.generation = 0
        #: Bumped whenever the *routable* topology may have changed:
        #: every structural change plus any state transition that
        #: crosses the carries-traffic boundary.  Routing layers
        #: (:class:`dcrobot.traffic.state.TrafficState`) key their path
        #: caches on this instead of requiring manual ``invalidate()``
        #: calls after each transition.
        self.route_generation = 0
        self.next_lid = 0
        #: Latest ``set_state`` timestamp ever mirrored — the guard the
        #: availability fast path uses before trusting the accumulators.
        self.last_transition_time = 0.0
        self.links_by_row: List = []
        self.index_of: Dict[str, int] = {}
        self._row_of_lid: List[int] = []
        for name, default, dtype, per_side in _SPEC:
            shape = (2, self._capacity) if per_side else self._capacity
            setattr(self, name, np.full(shape, default, dtype=dtype))
        self._columns: List[LinkColumn] = []
        self._flap_times = np.zeros(_FLAP_LOG_CAPACITY)
        self._flap_lids = np.zeros(_FLAP_LOG_CAPACITY, dtype=np.int64)
        self._flap_len = 0
        #: Structural-event subscribers (zero cost while empty); see
        #: :meth:`subscribe_structure`.
        self._listeners: List[Callable] = []
        #: True while ``links_by_row``/``index_of``/``_row_of_lid`` are
        #: shared with a fork; the first structural op copies them.
        self._containers_shared = False

    def __repr__(self) -> str:
        return (f"<FabricState links={self.n_links} "
                f"capacity={self._capacity} gen={self.generation}>")

    # -- structural events ----------------------------------------------------

    def subscribe_structure(self, listener: Callable) -> Callable:
        """Register ``listener(event, **info)`` for structural changes.

        Events: ``link-added(link)``, ``link-removed(link)``,
        ``xcvr-replaced(link, side, old, new)``,
        ``cable-replaced(link, old, new)`` — fired *after* the columns
        and ``generation`` reflect the change, which is what lets
        subscribers (e.g. :class:`dcrobot.topology.smi.SmiTracker`)
        key their aggregates on the generation counter.  Returns the
        listener so callers can unsubscribe it later.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe_structure(self, listener: Callable) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, event: str, **info) -> None:
        for listener in self._listeners:
            listener(event, **info)

    # -- copy-on-write forking -------------------------------------------------

    def fork(self) -> "FabricState":
        """An O(1) data snapshot sharing every column lazily.

        The fork carries the parent's counters (``generation``,
        ``route_generation``, lids, flap log length) and sees identical
        column contents; the first write to any shared column — from
        either side — splits just that column (writer keeps the
        buffer).  Containers are shared too and copied on the first
        *structural* op.  The fork is a plain data twin: the bound view
        objects in ``links_by_row`` still point at the parent, so
        mutate a fork column-wise, never through object setters.
        """
        child = FabricState.__new__(FabricState)
        child._capacity = self._capacity
        child.n_links = self.n_links
        child.generation = self.generation
        child.route_generation = self.route_generation
        child.next_lid = self.next_lid
        child.last_transition_time = self.last_transition_time
        child._flap_len = self._flap_len
        child.links_by_row = self.links_by_row
        child.index_of = self.index_of
        child._row_of_lid = self._row_of_lid
        self._containers_shared = True
        child._containers_shared = True
        child._columns = []
        child._listeners = []
        for name in _COW_ATTRS:
            self._share_attr(child, name)
        return child

    def _share_attr(self, child: "FabricState", name: str) -> None:
        current = getattr(self, name)
        if isinstance(current, _CowColumn) \
                and current._share is not None \
                and not current._share.dead:
            share = current._share          # join the live share
            base = current
        else:
            share = _Share(name)
            base = np.asarray(current).view(_CowColumn)
            base._share = share
            base._owner = self
            setattr(self, name, base)
            share.holders.append(self)
        wrapper = base.view(_CowColumn)
        wrapper._share = share
        wrapper._owner = child
        setattr(child, name, wrapper)
        share.holders.append(child)

    def cow_release(self) -> None:
        """Leave every live share (a discarded fork, or a parent
        reclaiming plain arrays after its forks are gone).  When one
        holder remains, its columns unwrap back to plain ndarrays, so
        a world that is done twinning pays zero write-barrier cost.
        The leaver detaches like a non-writer at write time: a private
        copy of any still-shared column, so a closed twin never aliases
        live-world writes (and vice versa).
        """
        for name in _COW_ATTRS:
            current = getattr(self, name)
            if not isinstance(current, _CowColumn):
                continue
            share = current._share
            if share is None or share.dead:
                setattr(self, name, current.view(np.ndarray))
                continue
            if self in share.holders:
                share.holders.remove(self)
            if share.holders:
                setattr(self, name, np.array(current, subok=False))
            else:
                setattr(self, name, current.view(np.ndarray))
            if len(share.holders) == 1:
                share.dead = True
                last = share.holders[0]
                attr = getattr(last, name)
                if isinstance(attr, _CowColumn) \
                        and attr._share is share:
                    setattr(last, name, attr.view(np.ndarray))
                share.holders = []

    def _cow_containers(self) -> None:
        if self._containers_shared:
            self.links_by_row = list(self.links_by_row)
            self.index_of = dict(self.index_of)
            self._row_of_lid = list(self._row_of_lid)
            self._containers_shared = False

    # -- capacity ------------------------------------------------------------

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        n = self.n_links
        for name, default, dtype, per_side in _SPEC:
            shape = (2, new_capacity) if per_side else new_capacity
            fresh = np.full(shape, default, dtype=dtype)
            fresh[..., :n] = getattr(self, name)[..., :n]
            setattr(self, name, fresh)
        for column in self._columns:
            fresh = np.full(new_capacity, column.fill,
                            dtype=column.values.dtype)
            fresh[:n] = column.values[:n]
            column.values = fresh
        self._capacity = new_capacity

    def _reset_row(self, row: int) -> None:
        for name, default, _dtype, _per_side in _SPEC:
            getattr(self, name)[..., row] = default
        for column in self._columns:
            column.values[row] = column.fill

    def _copy_row(self, src: int, dst: int) -> None:
        for name, _default, _dtype, _per_side in _SPEC:
            array = getattr(self, name)
            array[..., dst] = array[..., src]
        for column in self._columns:
            column.values[dst] = column.values[src]

    def add_link_column(self, fill) -> LinkColumn:
        """Register a consumer column initialized to ``fill``."""
        column = LinkColumn(self._capacity, fill)
        self._columns.append(column)
        return column

    # -- binding -------------------------------------------------------------

    def add_link(self, link) -> int:
        """Bind a link (and its components) to a fresh dense row."""
        if link.id in self.index_of:
            raise ValueError(f"link {link.id} already bound")
        if link._fs is not None:
            raise ValueError(f"link {link.id} bound to another fabric")
        self._cow_containers()
        if self.n_links == self._capacity:
            self._grow()
        row = self.n_links
        self.n_links += 1
        self.links_by_row.append(link)
        self.index_of[link.id] = row
        self._reset_row(row)
        lid = self.next_lid
        self.next_lid += 1
        self.lid_of_row[row] = lid
        self._row_of_lid.append(row)

        self.state_code[row] = CODE_OF[link._state]
        self.loss_rate[row] = link._loss_rate
        self._replay_history(row, lid, link)
        link._fs = self
        link._row = row
        self._bind_unit(row, 0, link.transceiver_a)
        self._bind_unit(row, 1, link.transceiver_b)
        self._bind_cable(row, link.cable)
        self._bind_port(row, 0, link.port_a)
        self._bind_port(row, 1, link.port_b)
        self.generation += 1
        self.route_generation += 1
        if self._listeners:
            self._notify("link-added", link=link)
        return row

    def _replay_history(self, row: int, lid: int, link) -> None:
        """Derive the timeline accumulators from any pre-bind history.

        Freshly wired links (the normal case) have empty histories and
        fall straight through with the assumed-UP-since-zero defaults.
        """
        state = LinkState.UP
        cursor = 0.0
        uptime = 0.0
        down_at = np.nan
        for when, new_state in link.history:
            if state.carries_traffic:
                uptime += when - cursor
            cursor = when
            flapped = ((state is LinkState.UP)
                       != (new_state is LinkState.UP)
                       and LinkState.MAINTENANCE not in (state, new_state))
            if flapped:
                self._log_flap(when, lid)
            down_at = when if new_state is LinkState.DOWN else np.nan
            state = new_state
            if when > self.last_transition_time:
                self.last_transition_time = when
        self.uptime_accum[row] = uptime
        self.last_change[row] = cursor
        self.down_since[row] = down_at

    def _bind_unit(self, row: int, side: int, unit) -> None:
        if unit._fs is not None:
            raise ValueError(f"transceiver {unit.id} already bound")
        self.ox[side, row] = unit._oxidation
        self.seated[side, row] = unit._seated
        self.unit_hw_fault[side, row] = unit._hw_fault
        self.unit_fw_stuck[side, row] = unit._firmware_stuck
        unit._fs = self
        unit._row = row
        unit._side = side
        receptacle = unit.receptacle
        if receptacle is not None:
            receptacle._mirror = (self, "recept", side)
            receptacle._row = row
            receptacle._push_mirror()

    def _unbind_unit(self, row: int, side: int, unit) -> None:
        unit._oxidation = float(self.ox[side, row])
        unit._fs = None
        unit._row = -1
        if unit.receptacle is not None:
            unit.receptacle._mirror = None
            unit.receptacle._row = -1

    def _bind_cable(self, row: int, cable) -> None:
        self.cable_damaged[row] = cable._damaged
        self.cable_attached[0, row] = cable._attached_a
        self.cable_attached[1, row] = cable._attached_b
        self.cleanable[row] = cable.kind.is_separable
        cable._fs = self
        cable._row = row
        for side, end in enumerate((cable.end_a, cable.end_b)):
            if end is not None:
                end._mirror = (self, "cable", side)
                end._row = row
                end._push_mirror()

    def _unbind_cable(self, cable) -> None:
        cable._fs = None
        cable._row = -1
        for end in (cable.end_a, cable.end_b):
            if end is not None:
                end._mirror = None
                end._row = -1

    def _bind_port(self, row: int, side: int, port) -> None:
        self.port_hw_fault[side, row] = port._hw_fault
        port._fs = self
        port._row = row
        port._side = side

    def remove_link(self, link) -> None:
        """Unbind a link, restoring plain-attribute behaviour, and keep
        the rows dense by swapping the last row into the freed slot."""
        if link.id not in self.index_of:
            raise KeyError(f"link {link.id} not bound")
        self._cow_containers()
        row = self.index_of.pop(link.id)
        removed_lid = int(self.lid_of_row[row])
        link._loss_rate = float(self.loss_rate[row])
        link._fs = None
        link._row = -1
        self._unbind_unit(row, 0, link.transceiver_a)
        self._unbind_unit(row, 1, link.transceiver_b)
        self._unbind_cable(link.cable)
        for port in (link.port_a, link.port_b):
            port._fs = None
            port._row = -1
        last = self.n_links - 1
        if row != last:
            moved = self.links_by_row[last]
            self.links_by_row[row] = moved
            self._copy_row(last, row)
            self._row_of_lid[int(self.lid_of_row[row])] = row
            self.index_of[moved.id] = row
            self._point_row(moved, row)
        self.links_by_row.pop()
        self._row_of_lid[removed_lid] = -1
        self.n_links = last
        self.generation += 1
        self.route_generation += 1
        if self._listeners:
            self._notify("link-removed", link=link)

    def _point_row(self, link, row: int) -> None:
        """Re-aim a moved link and all its bound components at ``row``."""
        link._row = row
        for unit in (link.transceiver_a, link.transceiver_b):
            unit._row = row
            if unit.receptacle is not None:
                unit.receptacle._row = row
        link.cable._row = row
        for end in (link.cable.end_a, link.cable.end_b):
            if end is not None:
                end._row = row
        for port in (link.port_a, link.port_b):
            port._row = row

    # -- component replacement (repairs) -------------------------------------

    def rebind_transceiver(self, link, side: str, old, new) -> None:
        """Swap the bound unit on one side (replacement repair)."""
        row = link._row
        side_index = 0 if side == "a" else 1
        self._unbind_unit(row, side_index, old)
        self.recept_worst[side_index, row] = 0.0
        self._bind_unit(row, side_index, new)
        self.generation += 1
        self.route_generation += 1
        if self._listeners:
            self._notify("xcvr-replaced", link=link, side=side,
                         old=old, new=new)

    def rebind_cable(self, link, old, new) -> None:
        """Swap the bound cable (replacement repair)."""
        row = link._row
        self._unbind_cable(old)
        self.cable_end_worst[:, row] = 0.0
        self.cable_end_scratched[:, row] = False
        self._bind_cable(row, new)
        self.generation += 1
        self.route_generation += 1
        if self._listeners:
            self._notify("cable-replaced", link=link, old=old,
                         new=new)

    # -- the state timeline ---------------------------------------------------

    def on_transition(self, row: int, now: float, old_state: LinkState,
                      new_state: LinkState, flapped: bool) -> None:
        """Mirror one ``Link.set_state`` transition into the columns.

        The uptime accumulator adds the exact ``now - last_change``
        float terms, in the exact order, that the legacy per-link
        ``uptime_fraction(0, end)`` walk sums — which is what makes the
        availability fast path bit-identical.
        """
        if old_state.carries_traffic != new_state.carries_traffic:
            self.route_generation += 1
        if old_state.carries_traffic:
            self.uptime_accum[row] += now - self.last_change[row]
        self.last_change[row] = now
        self.down_since[row] = now if new_state is LinkState.DOWN else np.nan
        if now > self.last_transition_time:
            self.last_transition_time = now
        if flapped:
            self._log_flap(now, int(self.lid_of_row[row]))

    # -- flap-event log -------------------------------------------------------

    def _log_flap(self, when: float, lid: int) -> None:
        m = self._flap_len
        if m == len(self._flap_times):
            self._flap_times = np.concatenate(
                [self._flap_times, np.zeros(m)])
            self._flap_lids = np.concatenate(
                [self._flap_lids, np.zeros(m, dtype=np.int64)])
        if m and when < self._flap_times[m - 1]:
            # Out-of-order timestamps only happen when tests drive
            # set_state with hand-written clocks; insert-sorted keeps
            # the searchsorted window queries valid regardless.
            pos = int(np.searchsorted(self._flap_times[:m], when,
                                      side="right"))
            self._flap_times[pos + 1:m + 1] = self._flap_times[pos:m].copy()
            self._flap_lids[pos + 1:m + 1] = self._flap_lids[pos:m].copy()
            self._flap_times[pos] = when
            self._flap_lids[pos] = lid
        else:
            self._flap_times[m] = when
            self._flap_lids[m] = lid
        self._flap_len = m + 1

    def flap_counts(self, start: float, end: float) -> np.ndarray:
        """Per-row flap-transition counts over the open window
        ``start < t < end`` — the same strict bounds as
        :meth:`dcrobot.network.link.Link.transitions_in_window`."""
        n = self.n_links
        times = self._flap_times[:self._flap_len]
        lo = int(np.searchsorted(times, start, side="right"))
        hi = int(np.searchsorted(times, end, side="left"))
        if hi <= lo or n == 0:
            return np.zeros(n, dtype=np.int64)
        by_lid = np.bincount(self._flap_lids[lo:hi],
                             minlength=self.next_lid)
        return by_lid[self.lid_of_row[:n]]

    # -- ordering helpers ------------------------------------------------------

    def rows_in_insertion_order(self, rows: np.ndarray) -> np.ndarray:
        """Sort a row subset into ``fabric.links`` dict order (by lid).

        Batched RNG consumption must happen in this order to stay
        stream-identical with the legacy per-link loops.
        """
        if len(rows) < 2:
            return rows
        return rows[np.argsort(self.lid_of_row[rows], kind="stable")]
