"""The fabric inventory: every physical object, and how to wire them up.

:class:`Fabric` is the single source of truth the rest of the library
operates on — topology builders populate it, failure processes mutate
component state inside it, telemetry reads it, and maintenance executors
(humans or robots) physically manipulate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from dcrobot.network.bundles import BundleRegistry, CableBundle
from dcrobot.network.cable import Cable, cores_for, kind_for_length
from dcrobot.network.enums import (
    CableKind,
    ComponentState,
    EndFacePolish,
    FormFactor,
)
from dcrobot.network.ids import IdFactory
from dcrobot.network.layout import HallLayout, Position
from dcrobot.network.link import Link
from dcrobot.network.state import FabricState
from dcrobot.network.switchgear import Host, Port, Switch, SwitchRole
from dcrobot.network.transceiver import (
    Transceiver,
    TransceiverModel,
    generate_model_catalog,
)

#: Extra cable length over straight-line rack distance (routing slack).
CABLE_SLACK_FACTOR = 1.4
CABLE_SLACK_FIXED_M = 2.0

#: Cables per tray bundle before a new bundle is opened.
DEFAULT_BUNDLE_CAPACITY = 24


class Fabric:
    """All physical inventory of one datacenter hall plus its wiring."""

    def __init__(self, layout: Optional[HallLayout] = None,
                 rng: Optional[np.random.Generator] = None,
                 model_catalog: Optional[List[TransceiverModel]] = None,
                 bundle_capacity: int = DEFAULT_BUNDLE_CAPACITY) -> None:
        self.layout = layout or HallLayout(rows=1, racks_per_row=4)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.ids = IdFactory()
        self.model_catalog = (model_catalog
                              or generate_model_catalog(24, self.rng))
        self.bundle_capacity = bundle_capacity

        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.transceivers: Dict[str, Transceiver] = {}
        self.cables: Dict[str, Cable] = {}
        self.links: Dict[str, Link] = {}
        #: Columnar single source of truth for every wired link; the
        #: batch kernels (health/dust/aging/telemetry/availability)
        #: sweep these arrays instead of the object graph.
        self.state = FabricState()
        self.bundles = BundleRegistry()
        self._ports: Dict[str, Port] = {}
        self._links_of_node: Dict[str, List[str]] = {}
        self._bundle_fill: Dict[str, Tuple[str, int]] = {}

        #: Spare stock available to maintenance executors.
        self.spare_transceivers: Dict[FormFactor, int] = {}
        self.spare_cables: int = 0

    def __repr__(self) -> str:
        return (f"<Fabric switches={len(self.switches)} "
                f"hosts={len(self.hosts)} links={len(self.links)}>")

    # -- node management -------------------------------------------------------

    def add_switch(self, role: SwitchRole, radix: int,
                   form_factor: FormFactor = FormFactor.QSFP_DD,
                   rack_id: Optional[str] = None, u_position: int = 1,
                   ports_per_line_card: Optional[int] = None) -> Switch:
        """Create and register a switch (optionally placed in a rack)."""
        switch = Switch(self.ids.make("sw"), role, radix, form_factor,
                        rack_id=rack_id, u_position=u_position,
                        ports_per_line_card=ports_per_line_card)
        self.switches[switch.id] = switch
        self._links_of_node[switch.id] = []
        for port in switch.ports:
            self._ports[port.id] = port
        return switch

    def add_host(self, port_count: int = 1,
                 form_factor: FormFactor = FormFactor.QSFP56,
                 rack_id: Optional[str] = None, u_position: int = 1) -> Host:
        """Create and register a server/GPU node."""
        host = Host(self.ids.make("host"), port_count, form_factor,
                    rack_id=rack_id, u_position=u_position)
        self.hosts[host.id] = host
        self._links_of_node[host.id] = []
        for port in host.ports:
            self._ports[port.id] = port
        return host

    def node(self, node_id: str) -> Union[Switch, Host]:
        if node_id in self.switches:
            return self.switches[node_id]
        if node_id in self.hosts:
            return self.hosts[node_id]
        raise KeyError(f"unknown node {node_id}")

    def port(self, port_id: str) -> Port:
        return self._ports[port_id]

    # -- physical placement ----------------------------------------------------

    def position_of(self, node_id: str) -> Position:
        """Hall-space position of a node (rack slot, or origin if
        unplaced)."""
        node = self.node(node_id)
        if node.rack_id is None:
            return Position(0.0, 0.0, 0.0)
        rack = self.layout.racks[node.rack_id]
        return rack.u_position(min(node.u_position, rack.height_u))

    def distance_between(self, node_a: str, node_b: str) -> float:
        """Aisle travel distance between two nodes' racks."""
        return self.layout.travel_distance(
            self.position_of(node_a), self.position_of(node_b))

    def cable_length(self, node_a: str, node_b: str) -> float:
        """Physical cable run between two nodes, with routing slack."""
        if node_a == node_b:
            return CABLE_SLACK_FIXED_M
        direct = self.distance_between(node_a, node_b)
        return direct * CABLE_SLACK_FACTOR + CABLE_SLACK_FIXED_M

    # -- wiring ------------------------------------------------------------------

    def _pick_model(self, form_factor: FormFactor) -> TransceiverModel:
        candidates = [model for model in self.model_catalog
                      if model.form_factor is form_factor]
        if not candidates:
            candidates = self.model_catalog
        return candidates[int(self.rng.integers(len(candidates)))]

    def new_transceiver(self, form_factor: FormFactor, optical: bool,
                        install_time: float = 0.0) -> Transceiver:
        """Mint a transceiver of a random catalog model."""
        unit = Transceiver(self.ids.make("xcvr"),
                           self._pick_model(form_factor),
                           optical=optical, install_time=install_time)
        self.transceivers[unit.id] = unit
        return unit

    def new_cable(self, kind: CableKind, length_m: float, gbps: int,
                  install_time: float = 0.0) -> Cable:
        """Mint a cable; MPO polish is drawn APC/UPC at random (§3.3.3)."""
        polish = EndFacePolish.UPC
        if kind is CableKind.MPO and self.rng.random() < 0.5:
            polish = EndFacePolish.APC
        cable = Cable(self.ids.make("cbl"), kind, length_m,
                      core_count=cores_for(kind, gbps), polish=polish,
                      install_time=install_time)
        self.cables[cable.id] = cable
        return cable

    def connect(self, node_a: str, node_b: str,
                port_a: Optional[Port] = None,
                port_b: Optional[Port] = None,
                kind: Optional[CableKind] = None) -> Link:
        """Wire two nodes together: ports, transceivers, cable, bundle, link.

        Cable construction is chosen from physical distance unless forced
        via ``kind`` (§3.1: DAC short, AOC medium, LC/MPO long).
        """
        end_a = port_a or self.node(node_a).next_free_port()
        if port_b is not None:
            end_b = port_b
        else:
            # Loopback wiring (node_a == node_b) must not grab the same
            # cage twice.
            candidates = [port for port in
                          self.node(node_b).free_ports()
                          if port is not end_a]
            if not candidates:
                raise ValueError(
                    f"node {node_b} has no free port distinct "
                    f"from {end_a.id}")
            end_b = candidates[0]
        gbps = min(end_a.form_factor.gbps, end_b.form_factor.gbps)
        length = self.cable_length(node_a, node_b)
        cable_kind = kind or kind_for_length(length, gbps)
        cable = self.new_cable(cable_kind, length, gbps)
        unit_a = self.new_transceiver(end_a.form_factor,
                                      optical=cable_kind.is_optical)
        unit_b = self.new_transceiver(end_b.form_factor,
                                      optical=cable_kind.is_optical)
        end_a.plug(unit_a.id)
        end_b.plug(unit_b.id)
        bundle = self._bundle_for(node_a, node_b)
        self.bundles.assign(cable.id, bundle.id)
        link = Link(self.ids.make("link"), end_a, end_b, unit_a, unit_b,
                    cable, capacity_gbps=gbps, bundle_id=bundle.id)
        self.links[link.id] = link
        self.state.add_link(link)
        self._links_of_node[end_a.parent_id].append(link.id)
        self._links_of_node[end_b.parent_id].append(link.id)
        return link

    def disconnect(self, link_id: str) -> Link:
        """Physically remove a link: unplug both transceivers, retire
        the cable from its bundle, drop the link from the fabric.

        The transceiver and cable objects stay in their registries
        (they exist as retired inventory) but are no longer wired.
        Returns the removed link.
        """
        link = self.links.pop(link_id, None)
        if link is None:
            raise KeyError(f"unknown link {link_id}")
        # Unbind from the columnar store first so the unplug/unseat
        # mutations below land on plain attributes of retired inventory.
        self.state.remove_link(link)
        for port in link.ports():
            if port.occupied:
                port.unplug()
        for unit in link.transceivers():
            unit.unseat()
            unit.state = ComponentState.SPARE
        self.bundles.unassign(link.cable.id)
        link.cable.state = ComponentState.SPARE
        for node_id in link.endpoint_ids:
            node_links = self._links_of_node.get(node_id, [])
            if link_id in node_links:
                node_links.remove(link_id)
        return link

    def _bundle_for(self, node_a: str, node_b: str) -> CableBundle:
        """Bundle cables by the row pair their tray segment serves."""
        row_a = self._row_of_node(node_a)
        row_b = self._row_of_node(node_b)
        key = f"rows{min(row_a, row_b):02d}-{max(row_a, row_b):02d}"
        current = self._bundle_fill.get(key)
        if current is not None:
            bundle_id, fill = current
            if fill < self.bundle_capacity:
                self._bundle_fill[key] = (bundle_id, fill + 1)
                return self.bundles.bundles[bundle_id]
        bundle = self.bundles.create(self.ids.make(f"bundle-{key}"))
        self._bundle_fill[key] = (bundle.id, 1)
        return bundle

    def rebundle(self, old_cable_id: str, new_cable_id: str,
                 node_a: str, node_b: str) -> None:
        """Move a replacement cable into the tray bundle of its route."""
        self.bundles.unassign(old_cable_id)
        self.bundles.assign(new_cable_id,
                            self._bundle_for(node_a, node_b).id)

    def _row_of_node(self, node_id: str) -> int:
        node = self.node(node_id)
        if node.rack_id is None:
            return 0
        return self.layout.racks[node.rack_id].row

    # -- queries -----------------------------------------------------------------

    def links_of(self, node_id: str) -> List[Link]:
        """All links attached to a node."""
        return [self.links[link_id]
                for link_id in self._links_of_node.get(node_id, [])]

    def link_of_cable(self, cable_id: str) -> Optional[Link]:
        for link in self.links.values():
            if link.cable.id == cable_id:
                return link
        return None

    def link_of_transceiver(self, unit_id: str) -> Optional[Link]:
        for link in self.links.values():
            if (link.transceiver_a.id == unit_id
                    or link.transceiver_b.id == unit_id):
                return link
        return None

    def bundle_neighbor_links(self, link: Link) -> List[Link]:
        """Links whose cables share a tray bundle with ``link``'s cable."""
        neighbors = []
        for cable_id in self.bundles.neighbors_of(link.cable.id):
            other = self.link_of_cable(cable_id)
            if other is not None:
                neighbors.append(other)
        return neighbors

    def graph(self, operational_only: bool = False) -> nx.MultiGraph:
        """The fabric as a multigraph (nodes = switches/hosts)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.switches)
        graph.add_nodes_from(self.hosts)
        for link in self.links.values():
            if operational_only and not link.operational:
                continue
            a, b = link.endpoint_ids
            graph.add_edge(a, b, key=link.id,
                           capacity=link.capacity_gbps, link_id=link.id)
        return graph

    # -- spares -------------------------------------------------------------------

    def stock_spares(self, transceivers: Dict[FormFactor, int],
                     cables: int = 0) -> None:
        """Provision the spare pool maintenance executors draw from."""
        for form_factor, count in transceivers.items():
            self.spare_transceivers[form_factor] = (
                self.spare_transceivers.get(form_factor, 0) + count)
        self.spare_cables += cables

    def take_spare_transceiver(self, form_factor: FormFactor, optical: bool,
                               now: float = 0.0) -> Optional[Transceiver]:
        """Draw a fresh unit from stock; None if out of spares."""
        if self.spare_transceivers.get(form_factor, 0) <= 0:
            return None
        self.spare_transceivers[form_factor] -= 1
        return self.new_transceiver(form_factor, optical, install_time=now)

    def take_spare_cable(self, template: Cable,
                         now: float = 0.0) -> Optional[Cable]:
        """Draw a replacement cable matching ``template``'s construction."""
        if self.spare_cables <= 0:
            return None
        self.spare_cables -= 1
        gbps = template.core_count * 100
        return self.new_cable(template.kind, template.length_m, gbps,
                              install_time=now)
