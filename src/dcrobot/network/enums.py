"""Enumerations describing the physical networking inventory (§3.1)."""

from __future__ import annotations

import enum


class ComponentState(enum.Enum):
    """Lifecycle state shared by all serviceable components."""

    ACTIVE = "active"            #: installed and nominally working
    DEGRADED = "degraded"        #: installed, working with elevated errors
    FAILED = "failed"            #: installed but not carrying traffic
    MAINTENANCE = "maintenance"  #: taken out of service for repair
    SPARE = "spare"              #: in stock, not installed


class FormFactor(enum.Enum):
    """Transceiver form factors found in large datacenters (§4).

    Values carry (lanes, gbps_per_lane): the marketing rate is their
    product.  The paper notes the *mechanical* backend diversity on top of
    these standardized electrical front-ends.
    """

    SFP28 = ("SFP28", 1, 25)
    SFP56 = ("SFP56", 1, 50)
    QSFP28 = ("QSFP28", 4, 25)
    QSFP56 = ("QSFP56", 4, 50)
    QSFP_DD = ("QSFP-DD", 8, 50)
    OSFP = ("OSFP", 8, 100)

    def __init__(self, label: str, lanes: int, gbps_per_lane: int) -> None:
        self.label = label
        self.lanes = lanes
        self.gbps_per_lane = gbps_per_lane

    @property
    def gbps(self) -> int:
        """Nominal aggregate data rate in Gbit/s."""
        return self.lanes * self.gbps_per_lane


class CableKind(enum.Enum):
    """Cable families by reach and construction (§3.1).

    * DAC — passive copper, short (integrated "transceiver" ends).
    * AEC / AOC — active copper / optical, transceivers integrated at
      manufacture (not separable, hence not cleanable in the field).
    * LC / MPO — separate fiber cables plugged into transceivers on site;
      LC carries one channel, MPO packages several fiber cores.
    """

    DAC = "dac"
    AEC = "aec"
    AOC = "aoc"
    LC = "lc"
    MPO = "mpo"

    @property
    def is_optical(self) -> bool:
        return self in (CableKind.AOC, CableKind.LC, CableKind.MPO)

    @property
    def is_separable(self) -> bool:
        """True if the cable detaches from the transceiver (cleanable)."""
        return self in (CableKind.LC, CableKind.MPO)


class EndFacePolish(enum.Enum):
    """Fiber end-face polish geometry.

    The paper highlights that some MPO cables have an 8-degree angle
    (APC) while others are flat (UPC) — a robot gripper/inspection design
    constraint (§3.3.3).
    """

    UPC = 0.0   #: flat polish
    APC = 8.0   #: 8-degree angled polish

    @property
    def angle_degrees(self) -> float:
        return float(self.value)


class LinkState(enum.Enum):
    """Operational state of a network link as seen by the fabric."""

    UP = "up"
    FLAPPING = "flapping"
    DOWN = "down"
    MAINTENANCE = "maintenance"

    @property
    def carries_traffic(self) -> bool:
        """Whether the link can carry (possibly lossy) traffic."""
        return self in (LinkState.UP, LinkState.FLAPPING)


class DegradationKind(enum.Enum):
    """Root causes of link misbehaviour, mapped to the repairs that fix
    them (§3.2).

    The controller never observes these directly — it only sees symptoms
    — which is exactly why the escalation ladder exists.
    """

    OXIDATION = "oxidation"          #: contact corrosion; fixed by reseat
    FIRMWARE_STUCK = "firmware"      #: wedged transceiver; fixed by reseat
    CONTAMINATION = "contamination"  #: end-face dirt; fixed by cleaning
    TRANSCEIVER_HW = "transceiver"   #: electronics fault; replace transceiver
    CABLE_DAMAGE = "cable"           #: bent/broken fiber; replace cable
    SWITCH_HW = "switch"             #: port/line-card fault; replace switchgear
