"""Physical network inventory (substrate S2).

Everything the paper's §3.1 enumerates — switches, line cards, ports,
transceivers, fiber/copper cables with per-core end-faces — plus the
physical geometry (racks, rows, halls, cable bundles) that robot
mobility and cascading failures depend on.
"""

from dcrobot.network.bundles import BundleRegistry, CableBundle
from dcrobot.network.cable import (
    AOC_MAX_LENGTH_M,
    DAC_MAX_LENGTH_M,
    Cable,
    cores_for,
    kind_for_length,
)
from dcrobot.network.endface import (
    IMPAIRMENT_THRESHOLD,
    INSPECTION_PASS_THRESHOLD,
    EndFace,
)
from dcrobot.network.enums import (
    CableKind,
    ComponentState,
    DegradationKind,
    EndFacePolish,
    FormFactor,
    LinkState,
)
from dcrobot.network.ids import IdFactory
from dcrobot.network.inventory import Fabric
from dcrobot.network.layout import (
    AISLE_WIDTH_M,
    RACK_DEPTH_M,
    RACK_UNIT_HEIGHT_M,
    RACK_WIDTH_M,
    HallLayout,
    Position,
    Rack,
)
from dcrobot.network.link import Link
from dcrobot.network.switchgear import Host, LineCard, Port, Switch, SwitchRole
from dcrobot.network.transceiver import (
    PullTabKind,
    Transceiver,
    TransceiverModel,
    generate_model_catalog,
)

__all__ = [
    "Fabric",
    "Link",
    "Switch",
    "SwitchRole",
    "Host",
    "LineCard",
    "Port",
    "Transceiver",
    "TransceiverModel",
    "PullTabKind",
    "generate_model_catalog",
    "Cable",
    "CableKind",
    "kind_for_length",
    "cores_for",
    "EndFace",
    "EndFacePolish",
    "ComponentState",
    "DegradationKind",
    "FormFactor",
    "LinkState",
    "HallLayout",
    "Position",
    "Rack",
    "CableBundle",
    "BundleRegistry",
    "IdFactory",
    "INSPECTION_PASS_THRESHOLD",
    "IMPAIRMENT_THRESHOLD",
    "DAC_MAX_LENGTH_M",
    "AOC_MAX_LENGTH_M",
    "RACK_WIDTH_M",
    "RACK_DEPTH_M",
    "AISLE_WIDTH_M",
    "RACK_UNIT_HEIGHT_M",
]
