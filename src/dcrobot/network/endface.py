"""Fiber end-faces: per-core contamination, inspection, and cleaning.

Dirt on an end-face is a leading cause of link flapping (§1, citing
Zhuo et al. [21]).  An :class:`EndFace` tracks a contamination level in
[0, 1] for each fiber core plus permanent scratch damage.  Inspection
compares contamination against the industry pass threshold (IEC 61300-3-35
style); cleaning applies wet/dry methods that remove most—but not all—
contamination and occasionally make things worse (re-smearing).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from dcrobot.network.enums import EndFacePolish

#: Contamination level above which an end-face core fails inspection.
INSPECTION_PASS_THRESHOLD = 0.15

#: Contamination level above which link quality is visibly affected.
IMPAIRMENT_THRESHOLD = 0.25


class EndFace:
    """One polished fiber end-face with ``core_count`` cores."""

    def __init__(self, core_count: int = 1,
                 polish: EndFacePolish = EndFacePolish.UPC,
                 initial_contamination: float = 0.0) -> None:
        if core_count < 1:
            raise ValueError(f"core_count must be >= 1, got {core_count}")
        if not 0.0 <= initial_contamination <= 1.0:
            raise ValueError("initial_contamination outside [0, 1]")
        self.core_count = core_count
        self.polish = polish
        self.contamination = np.full(core_count, float(initial_contamination))
        self.scratched = np.zeros(core_count, dtype=bool)
        #: Columnar binding while this face is on a wired link:
        #: ``(FabricState, "cable"|"recept", side)``.  Mutators call
        #: :meth:`_push_mirror` so the per-link worst-contamination and
        #: scratch columns stay current for the batch kernels.
        self._mirror = None
        self._row = -1

    def _push_mirror(self) -> None:
        mirror = self._mirror
        if mirror is None:
            return
        fs, kind, side = mirror
        row = self._row
        if kind == "cable":
            fs.cable_end_worst[side, row] = self.contamination.max()
            fs.cable_end_scratched[side, row] = bool(self.scratched.any())
        else:
            fs.recept_worst[side, row] = self.contamination.max()

    def __repr__(self) -> str:
        return (f"<EndFace cores={self.core_count} polish={self.polish.name} "
                f"worst={self.worst_contamination:.3f}>")

    # -- state -------------------------------------------------------------

    @property
    def worst_contamination(self) -> float:
        """Contamination of the dirtiest core (drives link impairment)."""
        return float(self.contamination.max())

    @property
    def mean_contamination(self) -> float:
        return float(self.contamination.mean())

    @property
    def impaired(self) -> bool:
        """True if dirt is bad enough to affect the optical link budget."""
        return (self.worst_contamination > IMPAIRMENT_THRESHOLD
                or bool(self.scratched.any()))

    # -- physics -----------------------------------------------------------

    def add_contamination(self, amount: float,
                          cores: Optional[Sequence[int]] = None) -> None:
        """Deposit dirt.  ``cores=None`` means all cores."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if cores is None:
            self.contamination = np.minimum(self.contamination + amount, 1.0)
        else:
            for core in cores:
                self.contamination[core] = min(
                    self.contamination[core] + amount, 1.0)
        self._push_mirror()

    def scratch(self, core: int) -> None:
        """Permanently damage a core (only replacement fixes this)."""
        self.scratched[core] = True
        self._push_mirror()

    # -- maintenance operations ---------------------------------------------

    def inspect(self, false_negative_rate: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> List[bool]:
        """Per-core pass/fail against the industry threshold.

        A non-zero ``false_negative_rate`` models imperfect perception:
        dirty cores occasionally pass (the dominant error mode for
        automated inspection per §3.3.2).
        """
        results = []
        for core in range(self.core_count):
            dirty = (self.contamination[core] > INSPECTION_PASS_THRESHOLD
                     or self.scratched[core])
            if dirty and false_negative_rate > 0 and rng is not None:
                if rng.random() < false_negative_rate:
                    dirty = False
            results.append(not dirty)
        return results

    def passes_inspection(self, **kwargs) -> bool:
        """True if every core passes inspection."""
        return all(self.inspect(**kwargs))

    def clean(self, rng: np.random.Generator, wet: bool = False,
              effectiveness: float = 0.9,
              smear_probability: float = 0.02) -> None:
        """One cleaning pass over all cores.

        Removes ``effectiveness`` (± noise) of each core's contamination;
        wet cleaning is stronger (handles oily residue).  With small
        probability a pass smears dirt across cores instead — which is why
        real procedures loop clean→inspect until passing.
        """
        if not 0.0 < effectiveness <= 1.0:
            raise ValueError("effectiveness outside (0, 1]")
        if rng.random() < smear_probability:
            # Redistribute a fraction of the total dirt across cores.
            total = self.contamination.sum() * 0.5
            share = rng.dirichlet(np.ones(self.core_count)) * total
            self.contamination = np.minimum(share, 1.0)
            self._push_mirror()
            return
        strength = effectiveness + (0.08 if wet else 0.0)
        strength = min(strength, 0.995)
        noise = rng.uniform(0.9, 1.0, size=self.core_count)
        self.contamination = self.contamination * (1.0 - strength * noise)
        self.contamination[self.contamination < 1e-4] = 0.0
        self._push_mirror()

    def replace(self) -> None:
        """Pristine end-face (cable or transceiver swapped)."""
        self.contamination[:] = 0.0
        self.scratched[:] = False
        self._push_mirror()
