"""Compatibility alias: ``repro`` re-exports the :mod:`dcrobot` package.

The reproduction harness expects a package named ``repro``; the
library's real name is ``dcrobot``.  Importing ``repro`` exposes the
same subpackages (``repro.sim``, ``repro.core``, ...).
"""

import dcrobot  # noqa: F401
from dcrobot import __version__  # noqa: F401
from dcrobot import (  # noqa: F401
    core,
    experiments,
    failures,
    humans,
    metrics,
    ml,
    network,
    robots,
    sim,
    telemetry,
    topology,
    traffic,
)
