"""Scenario: learn to fix links before they fail (§4).

Phase 1: run an unmaintained fabric and collect labelled telemetry
(flap counters, DDM optical margins, age, ...).  Phase 2: train a
from-scratch logistic regression on it.  Phase 3: plug the model into a
PredictivePolicy and compare incidents against a reactive world.

Run:  python examples/predictive_maintenance.py
"""

import numpy as np

from dcrobot.core import AutomationLevel, PredictivePolicy
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.failures import Environment
from dcrobot.ml import (
    FEATURE_NAMES,
    DatasetCollector,
    FeatureExtractor,
    LogisticRegression,
    evaluate,
    train_test_split,
)

DAY = 86400.0


def collect(seed=0, days=30.0):
    world = build_world(WorldConfig(
        horizon_days=days, seed=seed, policy="none",
        dust_rate_per_day=0.02, aging_rate_per_day=0.01))
    extractor = FeatureExtractor(world.environment,
                                 rng=np.random.default_rng(seed + 1))
    collector = DatasetCollector(world.fabric, extractor,
                                 snapshot_interval=6 * 3600.0,
                                 horizon_seconds=48 * 3600.0)
    world.sim.process(collector.run(world.sim))
    world.sim.run(until=days * DAY)
    return collector.build(sim_end=days * DAY)


def main() -> None:
    print("phase 1: collecting telemetry from an unmaintained fabric...")
    dataset = collect()
    print(f"  {len(dataset)} snapshots, "
          f"{dataset.positive_fraction:.0%} fail within 48h")

    print("phase 2: training logistic regression "
          f"on {len(FEATURE_NAMES)} features...")
    train_x, train_y, test_x, test_y = train_test_split(
        dataset.features, dataset.labels,
        rng=np.random.default_rng(42))
    model = LogisticRegression(epochs=600).fit(train_x, train_y)
    report = evaluate(test_y, model.predict_proba(test_x))
    print(f"  held-out: precision {report.precision:.2f}, "
          f"recall {report.recall:.2f}, AUC {report.auc:.2f}")
    ranked = sorted(zip(FEATURE_NAMES, model.weights),
                    key=lambda pair: -abs(pair[1]))
    print("  top signals:", ", ".join(
        f"{name} ({weight:+.2f})" for name, weight in ranked[:3]))

    print("phase 3: deploying the model as a maintenance policy...")
    results = {}
    for label, policy in (
            ("reactive", "reactive"),
            ("predictive", lambda fabric: PredictivePolicy(
                fabric,
                scorer=lambda link, now: float(model.predict_proba(
                    FeatureExtractor(
                        Environment(),
                        rng=np.random.default_rng(5)).extract(link, now))),
                threshold=0.5))):
        world = build_world(WorldConfig(
            horizon_days=20.0, seed=99,
            level=AutomationLevel.L3_HIGH_AUTOMATION, policy=policy,
            failure_scale=0.5, dust_rate_per_day=0.02,
            aging_rate_per_day=0.01))
        world.sim.run(until=20.0 * DAY)
        controller = world.controller
        results[label] = (len(controller.closed_incidents)
                          + len(controller.open_incidents)
                          + len(controller.unresolved_incidents),
                          len(controller.proactive_outcomes),
                          world.availability().mean)

    for label, (incidents, proactive, availability) in results.items():
        print(f"  {label:10s} incidents={incidents:3d} "
              f"proactive-ops={proactive:3d} "
              f"availability={availability:.6f}")
    saved = results["reactive"][0] - results["predictive"][0]
    print(f"\npredictive maintenance avoided {saved} incidents "
          f"({saved / max(results['reactive'][0], 1):.0%} of the "
          f"reactive ticket volume)")


if __name__ == "__main__":
    main()
