"""Scenario: the maintenance fleet deploys topology changes (§4).

"If we can build self-maintaining systems, these systems may well be
able to also deploy the network originally, not just maintain it."

This script grows a leaf–spine fabric by one spine: the planner computes
an ordered rewiring (respecting port budgets and never partitioning the
fabric), and the same manipulator robots that do repairs execute it —
unplugging, laying fiber at robot speed, terminating.

Run:  python examples/robotic_rewiring.py
"""

import numpy as np

from dcrobot.core import plan_rewiring, RoboticRewirer
from dcrobot.core.reconfigure import StepKind
from dcrobot.core.repairs import RepairPhysics
from dcrobot.failures import CascadeModel, Environment, HealthModel
from dcrobot.metrics import format_duration
from dcrobot.network import FormFactor, SwitchRole
from dcrobot.robots import FleetConfig, RobotFleet
from dcrobot.sim import Simulation
from dcrobot.topology import build_leafspine


def main() -> None:
    topo = build_leafspine(leaves=4, spines=2, uplinks_per_pair=1,
                           spare_leaf_ports=2,
                           rng=np.random.default_rng(1))
    fabric = topo.fabric
    print(f"before: {topo.name} — {len(fabric.links)} links, "
          f"{len(fabric.switches)} switches")

    # A new spine arrives in row 0; every leaf should connect to it.
    new_spine = fabric.add_switch(
        SwitchRole.SPINE, radix=8, form_factor=FormFactor.QSFP_DD,
        rack_id=fabric.layout.rack_at(0, 3).id, u_position=36)
    leaves = topo.switches(SwitchRole.LEAF)
    target = [link.endpoint_ids for link in fabric.links.values()]
    target += [(leaf, new_spine.id) for leaf in leaves]

    plan = plan_rewiring(fabric, target)
    print(f"plan: +{plan.additions} links, -{plan.removals} links, "
          f"{len(plan.infeasible)} infeasible")
    for step in plan.steps:
        arrow = "++" if step.kind is StepKind.ADD else "--"
        print(f"  {arrow} {step.endpoints[0]} <-> {step.endpoints[1]}")

    sim = Simulation()
    environment = Environment()
    health = HealthModel(fabric, environment)
    cascade = CascadeModel(fabric, health, environment)
    physics = RepairPhysics(fabric, health, cascade)
    fleet = RobotFleet(sim, fabric, health, physics,
                       config=FleetConfig(manipulators=2, cleaners=0),
                       rng=np.random.default_rng(2))
    rewirer = RoboticRewirer(sim, fabric, fleet)
    report = sim.run(until=rewirer.execute(plan))

    print(f"\nexecuted {report.steps_executed} steps in "
          f"{format_duration(report.total_seconds)} of robot time")
    print(f"after: {len(fabric.links)} links; new spine carries "
          f"{len(fabric.links_of(new_spine.id))} uplinks")
    assert topo.is_connected(operational_only=True)
    print("fabric stayed connected throughout — the §4 deployability "
          "argument, demonstrated")


if __name__ == "__main__":
    main()
