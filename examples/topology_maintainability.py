"""Scenario: score your topology's self-maintainability (§4).

The paper asks: "perhaps we can create a metric for self-maintainability
of a network design?".  This script scores the four built-in fabrics
with the SMI, shows the factor decomposition, and then demonstrates how
a *design change* — standardizing on one transceiver model, the §4
"Hardware redesign and standardization" agenda — moves the score.

Run:  python examples/topology_maintainability.py
"""

import numpy as np

from dcrobot.metrics import Table
from dcrobot.network import generate_model_catalog
from dcrobot.topology import (
    build_fattree,
    build_jellyfish,
    build_leafspine,
    build_xpander,
    compute_smi,
)


def main() -> None:
    builders = (
        ("fat-tree k=4", build_fattree, {"k": 4}),
        ("leaf-spine 8x4", build_leafspine,
         {"leaves": 8, "spines": 4}),
        ("jellyfish n=20 d=4", build_jellyfish,
         {"switches": 20, "degree": 4, "rack_stride": 8}),
        ("xpander d=4 L=4", build_xpander,
         {"degree": 4, "lift": 4, "rack_stride": 8}),
    )
    table = Table(["topology", "SMI", "weakest factor"],
                  title="Self-Maintainability Index")
    for label, builder, kwargs in builders:
        topology = builder(rng=np.random.default_rng(1), **kwargs)
        report = compute_smi(topology)
        weakest = min(report.factors, key=report.factors.get)
        table.add_row(label, f"{report.smi:.3f}",
                      f"{weakest} ({report.factors[weakest]:.2f})")
    print(table.render())

    # Design intervention: a single standardized transceiver model
    # (what §4's hardware-standardization agenda would buy).
    print("\n--- intervention: standardize on ONE transceiver design ---")
    single_catalog = generate_model_catalog(1, np.random.default_rng(2))
    diverse = compute_smi(build_fattree(k=4,
                                        rng=np.random.default_rng(1)))
    uniform = compute_smi(build_fattree(
        k=4, rng=np.random.default_rng(1),
        model_catalog=single_catalog))
    print(f"diverse catalog (24 designs): SMI {diverse.smi:.3f} "
          f"(uniformity {diverse.factors['uniformity']:.2f})")
    print(f"standardized (1 design):      SMI {uniform.smi:.3f} "
          f"(uniformity {uniform.factors['uniformity']:.2f})")
    gain = (uniform.smi - diverse.smi) / diverse.smi
    print(f"hardware standardization alone improves SMI by "
          f"{gain:+.0%} — the §4 redesign agenda, quantified")


if __name__ == "__main__":
    main()
