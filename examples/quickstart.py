"""Quickstart: watch a self-maintaining network fix itself.

Builds a small fat-tree, wires up the full self-maintenance stack at
automation Level 3 (autonomous robots with a technician fallback),
breaks a couple of links, and narrates what the control plane does.

Run:  python examples/quickstart.py
"""

from dcrobot.core import AutomationLevel, MaintenanceServiceAPI
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.metrics import format_duration
from dcrobot.network import DegradationKind

DAY = 86400.0


def main() -> None:
    # One call assembles topology, failure physics, telemetry, robots,
    # technicians, and the controller.  failure_scale=0 means the only
    # faults are the ones we inject by hand below.
    world = build_world(WorldConfig(
        horizon_days=3.0,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        failure_scale=0.0, dust_rate_per_day=0.0,
        aging_rate_per_day=0.0, seed=7))
    sim, fabric = world.sim, world.fabric
    api = MaintenanceServiceAPI(world.controller)

    links = list(fabric.links.values())
    wedged = links[0]                     # firmware wedge -> reseat
    dirty = next(link for link in links if link.cable.cleanable)

    def saboteur():
        yield sim.timeout(2 * 3600.0)
        print(f"[{format_duration(sim.now)}] FAULT: firmware wedge "
              f"on {wedged.id}")
        world.injector.inject(DegradationKind.FIRMWARE_STUCK, wedged,
                              sim.now)
        yield sim.timeout(6 * 3600.0)
        print(f"[{format_duration(sim.now)}] FAULT: contaminated "
              f"end-face on {dirty.id} "
              f"({dirty.cable.core_count}-core "
              f"{dirty.cable.kind.value.upper()})")
        world.injector.inject(DegradationKind.CONTAMINATION, dirty,
                              sim.now)
        world.injector.inject(DegradationKind.CONTAMINATION, dirty,
                              sim.now)

    sim.process(saboteur())
    sim.run(until=3 * DAY)

    print()
    print("=== what the control plane did ===")
    for incident in world.controller.closed_incidents:
        actions = " -> ".join(action.value
                              for _t, action in incident.attempt_history)
        print(f"{incident.link_id}: detected as {incident.symptom}, "
              f"repaired via [{actions}] in "
              f"{format_duration(incident.time_to_repair)}")

    status = api.status()
    print()
    print(f"incidents closed: {status.closed_incidents}, "
          f"open: {status.open_incidents}")
    print(f"mean service window: "
          f"{format_duration(status.mean_time_to_repair_seconds)}")
    print(f"links down right now: {status.links_down}"
          f"/{status.links_total}")
    if world.fleet is not None:
        for robot in world.fleet.manipulators + world.fleet.cleaners:
            if robot.operations_done:
                print(f"{robot.id}: {robot.operations_done} operations, "
                      f"{format_duration(robot.busy_seconds)} busy")


if __name__ == "__main__":
    main()
