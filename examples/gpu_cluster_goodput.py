"""Scenario: the AI-cluster dilemma (§1 of the paper).

A rail-optimized GPU training cluster has zero link redundancy — a
single rail link failing knocks its server out of full-bandwidth
collectives.  This script runs the same cluster under human ticketing
(Level 0) and self-maintenance (Level 3) and prints a goodput timeline,
showing robots substituting for the redundancy the paper calls
"simply impractical in terms of cost and energy".

Run:  python examples/gpu_cluster_goodput.py
"""

import numpy as np

from dcrobot.core import AutomationLevel
from dcrobot.experiments import WorldConfig, build_world
from dcrobot.metrics import sparkline
from dcrobot.topology.gpu import build_gpu_cluster, healthy_server_fraction

DAY = 86400.0
HORIZON_DAYS = 10.0


def run_mode(level: AutomationLevel, seed: int = 3):
    world = build_world(WorldConfig(
        topology_builder=build_gpu_cluster,
        topology_kwargs={"servers": 16, "gpus_per_server": 4},
        horizon_days=HORIZON_DAYS, seed=seed, failure_scale=10.0,
        level=level))
    timeline = []

    def sampler():
        while True:
            yield world.sim.timeout(3600.0)
            timeline.append(healthy_server_fraction(world.topology))

    world.sim.process(sampler())
    world.sim.run(until=HORIZON_DAYS * DAY)
    return timeline


def main() -> None:
    print(f"16 servers x 4 rails, zero redundancy, 10x failure rate, "
          f"{HORIZON_DAYS:.0f} days\n")
    for label, level in (("L0 human ticketing",
                          AutomationLevel.L0_NO_AUTOMATION),
                         ("L3 self-maintaining",
                          AutomationLevel.L3_HIGH_AUTOMATION)):
        timeline = run_mode(level)
        print(f"{label:22s} mean goodput {np.mean(timeline):.4f}  "
              f"worst {np.min(timeline):.3f}")
        print(f"{'':22s}[{sparkline(timeline, low=0.5, high=1.0)}]")
    print("\n(# = all servers healthy; gaps are servers knocked out of "
          "full-rail collectives while repairs wait)")


if __name__ == "__main__":
    main()
