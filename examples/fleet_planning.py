"""Scenario: size the robot fleet for a hall (§3.4).

The planner models the fleet as an M/M/c queue over the hall's fault
arrival rate and robot service times, recommends the smallest fleet
meeting a repair-time target, and this script then *validates* the
recommendation with a full closed-loop simulation.

Run:  python examples/fleet_planning.py
"""

import numpy as np

from dcrobot.core import AutomationLevel, FleetPlanner
from dcrobot.experiments import WorldConfig, run_world
from dcrobot.failures import FailureRates
from dcrobot.metrics import format_duration
from dcrobot.topology import build_fattree

FAILURE_SCALE = 30.0  # a hall having a bad quarter
TARGET_SECONDS = 1800.0


def main() -> None:
    topo = build_fattree(k=4, rng=np.random.default_rng(1))
    rates = FailureRates().scaled(FAILURE_SCALE)
    planner = FleetPlanner(topo, rates=rates)

    rate_per_hour = planner.incident_rate_per_second() * 3600.0
    print(f"hall: {topo.name}, {topo.link_count} links, "
          f"{rate_per_hour:.2f} robot-serviceable incidents/hour")
    print(f"target: p50 repair < {format_duration(TARGET_SECONDS)}\n")

    print("fleet  predicted repair  utilization")
    for manipulators in (1, 2, 4, 8):
        plan = planner.predict(manipulators)
        predicted = (format_duration(plan.predicted_repair_seconds)
                     if plan.predicted_repair_seconds != float("inf")
                     else "saturated")
        print(f"{manipulators:>5}  {predicted:>16}  "
              f"{plan.utilization:>10.1%}")

    plan = planner.recommend(target_repair_seconds=TARGET_SECONDS)
    print(f"\nrecommendation: {plan.manipulators} manipulators + "
          f"{plan.cleaners} cleaners "
          f"(predicted {format_duration(plan.predicted_repair_seconds)})")

    print("\nvalidating with a 20-day closed-loop simulation...")
    result = run_world(WorldConfig(
        horizon_days=20.0, seed=2, failure_scale=FAILURE_SCALE,
        level=AutomationLevel.L3_HIGH_AUTOMATION,
        fleet_config=plan.to_fleet_config()))
    stats = result.repair_stats()
    print(f"simulated: {stats.count} incidents, "
          f"p50 {format_duration(stats.p50)}, "
          f"p95 {format_duration(stats.p95)}")
    print("(the simulated p50 adds detection + verification overheads "
          "the queueing model excludes; the p95 tail is cable/switch "
          "replacements that fall back to day-scale technicians at "
          "Level 3)")


if __name__ == "__main__":
    main()
