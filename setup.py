"""Setuptools entry point (legacy path for offline editable installs)."""

from setuptools import find_packages, setup

setup(
    name="dcrobot",
    version="0.1.0",
    description=(
        "Self-maintaining networked systems: simulation and control plane "
        "for datacenter maintenance robotics (HotNets '24 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
