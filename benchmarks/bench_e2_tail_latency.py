"""Bench E2 — tail latency under a flapping link (§1)."""

from conftest import run_once

from dcrobot.experiments import e02_tail_latency


def test_e2_tail_latency(benchmark):
    result = run_once(benchmark, e02_tail_latency.run, quick=True)
    print()
    print(result.render())

    series = dict(result.series)
    p99_none = series["fct_p99_no_repair"][0][1]
    p99_human = series["fct_p99_L0_humans"][0][1]
    p99_robot = series["fct_p99_L3_robots"][0][1]

    # Shape: unrepaired flapping poisons the tail most; humans restore
    # it eventually; robots keep p99 lowest.
    assert p99_none > p99_human > p99_robot
    assert p99_none / p99_robot > 5.0
