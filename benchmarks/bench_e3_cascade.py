"""Bench E3 — repair amplification vs contact profile (§1/§2)."""

from conftest import run_once

from dcrobot.experiments import e03_cascade


def test_e3_cascade(benchmark):
    result = run_once(benchmark, e03_cascade.run, quick=True)
    print()
    print(result.render())

    human = dict(result.series)["amplification_human"]
    robot = dict(result.series)["amplification_robot"]

    # Shape: human amplification grows with bundle density and exceeds
    # the robot's at every density; robot stays near 1.0.
    assert human[-1][1] > human[0][1], "human ampl. grows with density"
    for (_d, human_factor), (_d2, robot_factor) in zip(human, robot):
        assert human_factor > robot_factor
    assert all(factor < 1.3 for _d, factor in robot)
