"""CI gates for E19 campus scale (S20 sharded multi-hall worlds).

Two claims are enforced:

* **bit-identity** — a 1-hall ``CampusWorld`` reproduces the legacy
  single-hall ``World`` summary bit-for-bit on an E13-style chaos
  config (the campus layer is pure composition, zero behaviour);
* **flat per-hall cost** — a 10-hall E13-style chaos campus costs, per
  hall, within 1.5x of the 1-hall wall-clock (median over halls vs
  best-of-2 single-hall, with a small floor so scheduler noise on
  loaded CI runners cannot fail the gate), and its federation keeps
  boundary accounting conserved with zero safety violations added.
"""

from __future__ import annotations

import dataclasses
import statistics

from dcrobot.experiments.e19_campus_scale import campus_config
from dcrobot.experiments.runner import run_world, summarize_world
from dcrobot.shard import CampusWorld, hall_config, run_campus

#: Wall-clock floor: differences below this are scheduler noise, not
#: per-hall cost.
FLOOR_SECONDS = 0.05
HORIZON_DAYS = 3.0
SEED = 2


def _one_hall_wall() -> float:
    """Best-of-2 single-hall wall-clock (first run pays warmup)."""
    walls = []
    for _attempt in range(2):
        summary = run_campus(campus_config(1, HORIZON_DAYS, SEED))
        walls.append(summary.hall_wall_seconds[0])
    return min(walls)


def test_one_hall_campus_bit_identical_to_world():
    config = campus_config(1, HORIZON_DAYS, SEED)
    campus = run_campus(config)
    legacy = summarize_world(run_world(hall_config(config, 0)))
    hall0 = campus.hall_summaries[0]
    assert dataclasses.asdict(hall0) == dataclasses.asdict(legacy), (
        "1-hall CampusWorld diverged from the legacy single-hall "
        "World — the campus layer must be pure composition")


def test_ten_hall_chaos_per_hall_wall_clock_flat():
    single = max(_one_hall_wall(), FLOOR_SECONDS)
    campus = CampusWorld(campus_config(10, HORIZON_DAYS, SEED))
    summary = campus.run()
    assert summary.halls == 10
    assert len(summary.hall_summaries) == 10

    per_hall = max(statistics.median(summary.hall_wall_seconds),
                   FLOOR_SECONDS)
    ratio = per_hall / single
    assert ratio <= 1.5, (
        f"10-hall per-hall wall-clock {per_hall:.3f}s is {ratio:.2f}x "
        f"the 1-hall case {single:.3f}s; shards must cost near-flat "
        f"per hall")

    # The campus must actually have worked, not just been fast.
    assert summary.invariant_violations == 0
    assert summary.incidents >= 10, "chaos campus produced no load"
    assert summary.mature_resolution_rate == 1.0, (
        "a hall's resilient controller failed to conclude mature "
        "incidents")
    # Federation accounting conserved to float precision.
    scale = max(summary.boundary_offered_bytes, 1.0)
    assert campus.boundary.conservation_error() / scale < 1e-12
