"""Bench — digital-twin forking and incremental SMI (ISSUE 7 gates).

Two acceptance bars on the k=16 fat-tree:

* **Incremental SMI**: ``SmiTracker.report()`` after generation-keyed
  deltas must beat a ``compute_smi`` full rescan by >= 10x across a
  mutate-and-query loop, while agreeing to 1e-12 on every factor.
* **World forking**: ``TwinWorld.fork`` + a 100-tick what-if rollout
  (column-wise repair mutations + a predicted-SMI query per tick)
  must beat rebuilding the world from scratch + the same rollout by
  >= 5x, with bit-identical predictions — the fork is what makes
  per-candidate what-if evaluation affordable inside the control
  loop.  (Rolling the live *traffic matrix* inside a fork is timed by
  ``bench_e17_twin_planning.py``, where the windows are the point;
  here the windows would drown the fork-vs-rebuild signal.)
"""

import time

import numpy as np
from conftest import run_once

from dcrobot.network.switchgear import SwitchRole
from dcrobot.topology import build_fattree
from dcrobot.topology.smi import SmiTracker, compute_smi
from dcrobot.traffic.state import TrafficState
from dcrobot.twin import TwinWorld

FABRIC_K = 16
MUTATE_QUERY_ITERATIONS = 20
ROLLOUT_TICKS = 100


def _mutation_targets(fabric, iterations, seed=5):
    rng = np.random.default_rng(seed)
    links = list(fabric.links.values())
    picks = rng.integers(0, len(links), size=iterations)
    return [links[int(index)] for index in picks]


def _swap_one(fabric, link, side):
    old_unit = link.transceiver_at(side)
    link.replace_transceiver(side, fabric.new_transceiver(
        old_unit.model.form_factor, optical=old_unit.optical))


def test_incremental_smi_beats_full_rescan(benchmark):
    topology = build_fattree(k=FABRIC_K,
                             rng=np.random.default_rng(1))
    fabric = topology.fabric
    tracker = SmiTracker(topology)
    targets = _mutation_targets(fabric, MUTATE_QUERY_ITERATIONS)

    def mutate_and_query_incremental():
        reports = []
        for step, link in enumerate(targets):
            _swap_one(fabric, link, "a" if step % 2 else "b")
            reports.append(tracker.report())
        return reports

    incremental_reports = run_once(benchmark,
                                   mutate_and_query_incremental)
    incremental_seconds = benchmark.stats.stats.mean

    # Oracle pass over the same final fabric: one rescan per query.
    start = time.perf_counter()
    for _step in range(MUTATE_QUERY_ITERATIONS):
        oracle = compute_smi(topology)
    rescan_seconds = (time.perf_counter() - start)

    # parity on every factor, at full k=16 scale
    final = incremental_reports[-1]
    for factor, value in oracle.factors.items():
        assert abs(final.factors[factor] - value) <= 1e-12, factor
    assert abs(final.smi - oracle.smi) <= 1e-12

    speedup = rescan_seconds / incremental_seconds
    print(f"\nincremental SMI: {incremental_seconds * 1e3:.1f} ms "
          f"vs rescan {rescan_seconds * 1e3:.1f} ms for "
          f"{MUTATE_QUERY_ITERATIONS} mutate+query iterations "
          f"({speedup:.1f}x)")
    assert speedup >= 10.0, (
        f"incremental SMI speedup {speedup:.1f}x, expected >= 10x")
    tracker.close()


def _build_world(seed=2):
    topology = build_fattree(k=FABRIC_K,
                             rng=np.random.default_rng(seed))
    endpoints = topology.switches(SwitchRole.TOR)
    traffic = TrafficState(topology.fabric, endpoints,
                           rng=np.random.default_rng(seed + 1),
                           max_equal_paths=4)
    return topology, traffic


def _rollout(world, link_ids):
    """100 what-if ticks: drain -> maintain -> repair a rolling set of
    links, reading the predicted SMI after every tick."""
    predictions = []
    for tick in range(ROLLOUT_TICKS):
        link_id = link_ids[tick % len(link_ids)]
        if tick % 2:
            world.repair_link(link_id, now=float(tick))
        else:
            world.begin_maintenance(link_id, now=float(tick))
        predictions.append(world.predicted_smi())
    return predictions


def test_fork_rollout_beats_rebuild_rollout(benchmark):
    topology, traffic = _build_world()
    tracker = SmiTracker(topology)
    link_ids = list(topology.fabric.links)[:8]

    def fork_and_roll():
        with TwinWorld.fork(topology.fabric, traffic,
                            rng=np.random.default_rng(7),
                            smi_tracker=tracker) as twin:
            return _rollout(twin, link_ids)

    forked = run_once(benchmark, fork_and_roll)
    fork_seconds = benchmark.stats.stats.mean

    def rebuild_and_roll():
        rebuilt_topology, rebuilt_traffic = _build_world()
        rebuilt_tracker = SmiTracker(rebuilt_topology)
        world = TwinWorld.wrap(rebuilt_topology.fabric,
                               rebuilt_traffic,
                               rng=np.random.default_rng(7))
        world.smi_tracker = rebuilt_tracker
        return _rollout(world, link_ids)

    start = time.perf_counter()
    rebuilt = rebuild_and_roll()
    rebuild_seconds = time.perf_counter() - start

    # same world, same tick script: predictions must agree bitwise
    assert forked == rebuilt

    speedup = rebuild_seconds / fork_seconds
    print(f"\nfork+rollout: {fork_seconds * 1e3:.1f} ms vs "
          f"rebuild+rollout {rebuild_seconds * 1e3:.1f} ms over "
          f"{ROLLOUT_TICKS} ticks ({speedup:.1f}x)")
    assert speedup >= 5.0, (
        f"fork+rollout speedup {speedup:.1f}x, expected >= 5x")
    tracker.close()
