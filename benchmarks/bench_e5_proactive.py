"""Bench E5 — proactive reseat sweeps (§4)."""

from conftest import run_once

from dcrobot.experiments import e05_proactive


def test_e5_proactive(benchmark):
    result = run_once(benchmark, e05_proactive.run, quick=True)
    print()
    print(result.render())

    points = dict(result.series)["incidents_vs_trigger"]
    by_trigger = {trigger: incidents for trigger, incidents in points}
    reactive = by_trigger[0]  # trigger 0 encodes "reactive only"

    # Shape: some sweep setting reduces reactive incident volume below
    # the purely reactive baseline.
    assert min(incidents for trigger, incidents in points
               if trigger != 0) < reactive
