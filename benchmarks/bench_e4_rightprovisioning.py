"""Bench E4 — redundancy needed per maintenance mode (§2)."""

from conftest import run_once

from dcrobot.experiments import e04_rightprovisioning


def test_e4_rightprovisioning(benchmark):
    result = run_once(benchmark, e04_rightprovisioning.run, quick=True)
    print()
    print(result.render())

    l0 = dict(result.series)["sla_vs_redundancy_L0"]
    l3 = dict(result.series)["sla_vs_redundancy_L3"]

    # Shape: at every redundancy level robots meet or beat humans, and
    # robots reach a given target at no-more redundancy than humans.
    for (_r, avail_l0), (_r2, avail_l3) in zip(l0, l3):
        assert avail_l3 >= avail_l0
    target = 0.999
    first_l0 = next((r for r, a in l0 if a >= target), 99)
    first_l3 = next((r for r, a in l3 if a >= target), 99)
    assert first_l3 <= first_l0
    assert first_l3 <= 2, "robots should right-provision at r<=2"
