"""Bench E10 — learned failure prediction (§4)."""

from conftest import run_once

from dcrobot.experiments import e10_predictive_ml


def test_e10_predictive_ml(benchmark):
    result = run_once(benchmark, e10_predictive_ml.run, quick=True)
    print()
    print(result.render())

    incidents = [count for _i, count in
                 dict(result.series)["incidents_by_policy"]]
    reactive, proactive, predictive = incidents

    # Shape: predictive maintenance avoids a meaningful share of the
    # reactive incidents; proactive never does worse than reactive by
    # much.
    assert predictive < reactive
    assert predictive <= proactive
    assert proactive <= reactive * 1.2

    # The models must predict far better than chance (AUC in the table;
    # re-check via rendered text).
    rendered = result.render()
    assert "logistic regression" in rendered
