"""Bench E7 — escalation ladder resolution stages (§3.2)."""

from conftest import run_once

from dcrobot.experiments import e07_escalation


def test_e7_escalation(benchmark):
    result = run_once(benchmark, e07_escalation.run, quick=True)
    print()
    print(result.render())

    shares = dict(dict(result.series)["resolution_share"])

    # Shape (§3.2): reseat resolves the majority ("surprisingly
    # effective"); later stages resolve progressively less; switchgear
    # replacement is rare.
    assert shares[0] > 0.5, "reseat must resolve the majority"
    assert shares[0] > shares[2] > 0.0
    assert shares[4] < 0.1
