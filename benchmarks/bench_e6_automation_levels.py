"""Bench E6 — automation levels 0-4 (§2.1)."""

from conftest import run_once

from dcrobot.experiments import e06_automation_levels


def test_e6_automation_levels(benchmark):
    result = run_once(benchmark, e06_automation_levels.run, quick=True)
    print()
    print(result.render())

    p50 = dict(dict(result.series)["p50_ttr_by_level"])

    # Shape: the service-window cliff appears when robots start
    # executing (L2), and L3/L4 stay in the minutes regime.
    assert p50[0] > 10 * p50[2], "L2 must be >10x faster than L0"
    assert p50[3] <= p50[2]
    assert p50[4] < 3600.0
    # L0 and L1 share human dispatch latency (assist changes quality,
    # not logistics).
    assert abs(p50[0] - p50[1]) / p50[0] < 0.5
