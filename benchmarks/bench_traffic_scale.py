"""Bench S17 — columnar traffic engine vs the legacy per-flow loop.

The traffic-scale acceptance gate: :class:`TrafficState` must beat
:class:`LegacyTrafficModel` by >=5x on the k=16 fat-tree (2048 links,
128 ToR endpoints) while producing bit-identical per-flow FCTs and
per-link utilization / congestion-loss totals on the shared seed.
"""

import numpy as np
from conftest import run_once

from dcrobot.topology.base import SwitchRole
from dcrobot.topology.fattree import build_fattree
from dcrobot.traffic.flows import sample_sizes
from dcrobot.traffic.legacy import LegacyTrafficModel
from dcrobot.traffic.state import TrafficState

K = 16
WINDOWS = 6
FLOWS_PER_WINDOW = 4000
WINDOW_SECONDS = 60.0


def _windows(n_endpoints):
    rng = np.random.default_rng(21)
    out = []
    flow_id = 0
    for _ in range(WINDOWS):
        src = rng.integers(n_endpoints, size=FLOWS_PER_WINDOW)
        dst = rng.integers(n_endpoints - 1, size=FLOWS_PER_WINDOW)
        dst = dst + (dst >= src)
        sizes = sample_sizes(rng, FLOWS_PER_WINDOW)
        ids = np.arange(flow_id, flow_id + FLOWS_PER_WINDOW,
                        dtype=np.int64)
        flow_id += FLOWS_PER_WINDOW
        out.append((src, dst, sizes, ids))
    return out


def _run_pair():
    import time

    topology = build_fattree(k=K, rng=np.random.default_rng(1))
    fabric = topology.fabric
    tors = topology.switches(SwitchRole.TOR)
    windows = _windows(len(tors))

    columnar = TrafficState(fabric, tors,
                            rng=np.random.default_rng(7))
    legacy = LegacyTrafficModel(fabric, tors,
                                rng=np.random.default_rng(7))

    start = time.perf_counter()
    columnar_results = [columnar.offer_window(*w, WINDOW_SECONDS)
                        for w in windows]
    mid = time.perf_counter()
    legacy_results = [legacy.offer_window(*w, WINDOW_SECONDS)
                      for w in windows]
    end = time.perf_counter()
    return (fabric, columnar, legacy, columnar_results,
            legacy_results, mid - start, end - mid)


def test_traffic_scale(benchmark):
    (fabric, columnar, legacy, columnar_results, legacy_results,
     columnar_seconds, legacy_seconds) = run_once(benchmark, _run_pair)
    speedup = legacy_seconds / columnar_seconds
    print()
    print(f"k={K} fat-tree, {fabric.state.n_links} links, "
          f"{WINDOWS}x{FLOWS_PER_WINDOW} flows: "
          f"columnar {columnar_seconds:.3f}s, "
          f"legacy {legacy_seconds:.3f}s, speedup {speedup:.1f}x")

    # Bit-identical per-flow completion times, window for window.
    for fast, slow in zip(columnar_results, legacy_results):
        assert np.array_equal(fast.fct, slow.fct, equal_nan=True)

    # Bit-identical per-link utilization and loss totals: every link
    # the legacy model touched agrees exactly, and links it never
    # touched accumulated nothing in the columns.
    index_of = fabric.state.index_of
    touched = np.zeros(fabric.state.n_links, dtype=bool)
    for link_id, total in legacy.util_bytes.items():
        row = index_of[link_id]
        touched[row] = True
        assert columnar.util_bytes.values[row] == total
        assert columnar.lost_bytes.values[row] == \
            legacy.lost_bytes.get(link_id, 0.0)
    n = fabric.state.n_links
    assert float(columnar.util_bytes.values[:n][~touched].sum()) == 0.0

    assert speedup >= 5.0, (
        f"columnar speedup {speedup:.1f}x at k={K}, expected >= 5x")
