"""Bench E17 — twin-guided plan ranking beats FIFO dispatch (§4).

The digital-twin acceptance bar: with a mixed hot/cold reseat
campaign under a diurnal hotspot matrix, ranking candidates by forked
what-if rollouts must show materially lower maintenance-window p99
FCT than queue-order dispatch, by steering hot-uplink drains away
from the peak — with both arms doing the same physical work.
"""

from conftest import run_once

from dcrobot.experiments import e17_twin_planning


def test_e17_twin_planning(benchmark):
    result = run_once(benchmark, e17_twin_planning.run, quick=True)
    print()
    print(result.render())

    series = dict(result.series)["maintenance_p99_fct_seconds"]
    by_arm = dict(series)  # 0 = fifo, 1 = twin-ranked
    fifo_p99, twin_p99 = by_arm[0], by_arm[1]

    # The paper's claim: simulating the repair before executing it
    # makes the same maintenance materially cheaper for the workload.
    assert twin_p99 < fifo_p99, (
        f"twin-ranked maintenance p99 {twin_p99:.3f}s not below "
        f"fifo {fifo_p99:.3f}s")

    # The mechanism must be plan *reordering*: fewer hot uplinks
    # drained inside the daytime peak.
    peaks = dict(dict(result.series)["peak_hot_reseats"])
    assert peaks[1] < peaks[0], (
        f"twin arm drained {peaks[1]} hot uplinks at peak, "
        f"fifo {peaks[0]} — ranking did not reorder the work")
