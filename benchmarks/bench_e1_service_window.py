"""Bench E1 — service window: human ticketing vs robots (§2)."""

from conftest import run_once

from dcrobot.experiments import e01_service_window


def test_e1_service_window(benchmark):
    result = run_once(benchmark, e01_service_window.run, quick=True)
    print()
    print(result.render())

    # Shape: robot median service window is minutes; human is hours+;
    # speedup at least an order of magnitude.
    human = dict(result.series)["ttr_cdf_L0"]
    robot = dict(result.series)["ttr_cdf_L3"]

    def median(points):
        return points[len(points) // 2][0]

    human_p50, robot_p50 = median(human), median(robot)
    assert robot_p50 < 3600.0, "robot median must be under an hour"
    assert human_p50 > 4 * 3600.0, "human median must be hours-to-days"
    assert human_p50 / robot_p50 > 10.0
