"""Bench E12 — GPU-cluster goodput vs failure rate (§1)."""

from conftest import run_once

from dcrobot.experiments import e12_gpu_cluster


def test_e12_gpu_cluster(benchmark):
    result = run_once(benchmark, e12_gpu_cluster.run, quick=True)
    print()
    print(result.render())

    l0 = dict(result.series)["goodput_vs_rate_L0"]
    l3 = dict(result.series)["goodput_vs_rate_L3"]

    # Shape: goodput decays with failure rate for both, but
    # self-maintenance holds it far higher; at the top rate, the L0
    # goodput loss is at least 3x the L3 loss.
    assert l0[0][1] > l0[-1][1], "L0 goodput decays with rate"
    for (_s, goodput_l0), (_s2, goodput_l3) in zip(l0, l3):
        assert goodput_l3 >= goodput_l0
    loss_l0 = 1.0 - l0[-1][1]
    loss_l3 = 1.0 - l3[-1][1]
    assert loss_l0 > 3.0 * loss_l3
