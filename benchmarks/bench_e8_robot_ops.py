"""Bench E8 — robot operation timing and fleet throughput (§3.3)."""

from conftest import run_once

from dcrobot.experiments import e08_robot_ops


def test_e8_robot_ops(benchmark):
    result = run_once(benchmark, e08_robot_ops.run, quick=True)
    print()
    print(result.render())

    # Shape: the paper's headline timings hold.
    note = result.notes[0]
    inspection_seconds = float(note.split(":")[1].split("s")[0])
    assert inspection_seconds < 30.0, "8-core inspection < 30 s (§3.3.2)"

    throughput = dict(result.series)["ops_per_hour_vs_fleet"]
    # Throughput scales near-linearly with fleet size.
    (one, rate_one), *_rest, (four, rate_four) = throughput
    assert rate_four > 3.0 * rate_one
    # Single-unit rate implies a full reseat takes "a few minutes".
    assert 5.0 < rate_one < 60.0
