"""Bench E11 — robot mobility scopes (§3.4)."""

from conftest import run_once

from dcrobot.experiments import e11_mobility_scopes


def test_e11_mobility_scopes(benchmark):
    result = run_once(benchmark, e11_mobility_scopes.run, quick=True)
    print()
    print(result.render())

    points = dict(result.series)["p50_ttr_vs_units"]
    hall_small, row_small, rack_small, rack_full = [
        p50 for _units, p50 in points]

    # Shape: with the same 3-unit budget, hall scope keeps repairs in
    # minutes while narrow scopes fall back to day-scale humans for
    # uncovered racks; full rack coverage restores minutes at a much
    # larger unit count.
    assert hall_small < 3600.0
    assert row_small > 10 * hall_small
    assert rack_full < 3600.0
    assert points[-1][0] > points[0][0]  # full coverage needs more units
