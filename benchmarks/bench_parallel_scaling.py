"""Bench — parallel trial-execution engine scaling (1/2/4/8 workers).

Runs a fixed batch of CPU-bound world trials through
``dcrobot.experiments.parallel.run_trials`` at increasing worker
counts and reports the speedup over the serial run.  On a multi-core
host the 4-worker run must be at least 2x faster than serial; on
smaller hosts the shape assertion degrades gracefully (a process pool
cannot beat the core count).
"""

import os
import time

import pytest

from conftest import run_once

from dcrobot.experiments.parallel import Execution, run_trials
from dcrobot.experiments.runner import WorldConfig, world_trial

WORKER_COUNTS = (1, 2, 4, 8)
TRIAL_POINTS = 8


def _param_sets():
    """A batch of small but genuinely CPU-bound closed-loop worlds."""
    return [
        {"label": f"world{index}", "seed": index,
         "config": WorldConfig(horizon_days=4.0, seed=index,
                               failure_scale=4.0)}
        for index in range(TRIAL_POINTS)
    ]


def _timed_run(jobs):
    started = time.perf_counter()
    groups = run_trials("bench_scaling", world_trial, _param_sets(),
                        base_seed=0, execution=Execution(jobs=jobs))
    return time.perf_counter() - started, groups


def test_parallel_scaling(benchmark):
    params = _param_sets()
    serial_seconds, serial_groups = _timed_run(jobs=1)

    timings = {1: serial_seconds}
    groups_by_jobs = {1: serial_groups}
    for jobs in WORKER_COUNTS[1:]:
        timings[jobs], groups_by_jobs[jobs] = _timed_run(jobs)

    # The benchmark record tracks the 4-worker configuration.
    run_once(benchmark, run_trials, "bench_scaling", world_trial,
             params, base_seed=0, execution=Execution(jobs=4))

    print()
    print(f"{'workers':>8}  {'seconds':>8}  {'speedup':>8}")
    for jobs in WORKER_COUNTS:
        print(f"{jobs:>8}  {timings[jobs]:>8.2f}  "
              f"{serial_seconds / timings[jobs]:>8.2f}x")

    # Shape 1: worker count never changes the results, only the clock.
    serial_values = [group.value for group in serial_groups]
    for jobs in WORKER_COUNTS[1:]:
        assert [group.value
                for group in groups_by_jobs[jobs]] == serial_values

    # Shape 2: on a multi-core host, fan-out must actually pay.
    cores = os.cpu_count() or 1
    if cores >= 4:
        speedup = serial_seconds / timings[4]
        assert speedup >= 2.0, (
            f"4-worker speedup {speedup:.2f}x < 2x on {cores} cores")
    else:
        pytest.skip(f"only {cores} CPU core(s): speedup assertion "
                    f"needs >= 4 (scaling table above still recorded)")
