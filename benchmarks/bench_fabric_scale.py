"""Bench E15 — hall-scale columnar control loop (§2, ROADMAP north star).

This is the scale acceptance gate: the columnar kernels must beat the
legacy per-link loops by >=5x on the k=16 fat-tree while producing
field-for-field identical world summaries on the shared seed.
"""

from conftest import run_once

from dcrobot.experiments import e15_scale


def test_e15_fabric_scale(benchmark):
    result = run_once(benchmark, e15_scale.run, quick=True)
    print()
    print(result.render())

    speedups = dict(result.series)["speedup_vs_links"]
    parity = dict(result.series)["parity_vs_links"]

    # Every timed legacy/columnar pair must be bit-identical — the
    # speedup is worthless if the physics drifted.
    assert all(identical == 1.0 for _links, identical in parity)

    # The k=16 fat-tree is the largest timed pair in quick mode; the
    # acceptance bar is a 5x wall-clock win there.
    largest_timed = max(speedups, key=lambda pair: pair[0])
    assert largest_timed[1] >= 5.0, (
        f"columnar speedup {largest_timed[1]:.1f}x at "
        f"{largest_timed[0]} links, expected >= 5x")
