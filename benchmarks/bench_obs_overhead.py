"""Bench the observability layer's cost on a real E13 trial.

Two macro-benchmarks of the same hardened-controller chaos world: one
with the default :data:`~dcrobot.obs.NULL_OBS` (every site behind a
dead ``if obs.enabled:`` guard) and one fully traced.  Compare the two
rows to see what tracing costs; ``tests/obs/test_overhead.py`` is the
CI-enforced <2% version of the same comparison.
"""

from conftest import run_once

from dcrobot.experiments.e13_chaos_resilience import _trial

PARAMS = {"mode": "hardened", "chaos_scale": 1.0,
          "failure_scale": 4.0, "horizon_days": 8.0}


def test_e13_trial_null_obs(benchmark):
    result = run_once(benchmark, _trial, dict(PARAMS), 11)
    assert result["trace"] is None
    assert result["metrics"] is None


def test_e13_trial_traced(benchmark):
    params = dict(PARAMS, observe=True)
    result = run_once(benchmark, _trial, params, 11)
    assert result["trace"], "traced run must export spans"
    names = {span["name"] for span in result["trace"]}
    assert {"world", "incident", "dispatch"} <= names
    assert "dcrobot_incidents_opened_total" \
        in result["metrics"]["metrics"]
