"""Bench E9 — the self-maintainability metric (§4)."""

from conftest import run_once

from dcrobot.experiments import e09_topology_smi


def test_e9_topology_smi(benchmark):
    result = run_once(benchmark, e09_topology_smi.run, quick=True)
    print()
    print(result.render())

    points = dict(result.series)["smi_vs_availability"]

    # Shape: the metric is computable and discriminates between designs
    # (spread > 0.05 across topologies), and every sim completed.
    smis = [smi for smi, _availability in points]
    assert len(points) == 4
    assert max(smis) - min(smis) > 0.05
    assert all(0.0 < smi <= 1.0 for smi in smis)
    assert all(availability > 0.9 for _smi, availability in points)
