"""Shared benchmark helpers.

Every bench runs one paper experiment end to end (quick scale) through
pytest-benchmark with a single round — these are macro-benchmarks of
whole simulated campaigns, not micro-benchmarks — and then asserts the
qualitative *shape* the paper claims, so a bench run doubles as a
reproduction check.
"""

def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
