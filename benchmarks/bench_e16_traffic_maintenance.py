"""Bench E16 — congestion-aware maintenance beats naive scheduling (§2).

The impact gate's acceptance bar: with a diurnal hotspot matrix and a
rolling reseat campaign over the hot uplinks, impact-aware scheduling
must show materially lower maintenance-window p99 FCT than naive
dispatch, with the same physical work landing in the traffic trough.
"""

from conftest import run_once

from dcrobot.experiments import e16_traffic_maintenance


def test_e16_traffic_maintenance(benchmark):
    result = run_once(benchmark, e16_traffic_maintenance.run,
                      quick=True)
    print()
    print(result.render())

    series = dict(result.series)["maintenance_p99_fct_seconds"]
    by_arm = dict(series)  # 0 = naive, 1 = impact-aware
    naive_p99, aware_p99 = by_arm[0], by_arm[1]

    # The paper's claim: scheduling against the traffic engineering
    # system makes the same maintenance materially cheaper for the
    # workload.
    assert aware_p99 < naive_p99, (
        f"impact-aware maintenance p99 {aware_p99:.3f}s not below "
        f"naive {naive_p99:.3f}s")

    # And it must do so by actually deferring work, not by skipping
    # the hot links entirely — the matrices shapes also stay ordered
    # (uniform < hotspot < incast congestion).
    patterns = dict(result.series)["pattern_p99_fct_seconds"]
    p99s = dict(patterns)  # 0 = uniform, 1 = hotspot, 2 = incast
    assert p99s[0] < p99s[1] < p99s[2]
