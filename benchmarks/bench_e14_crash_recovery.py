"""Bench E14 — journal replay / standby failover vs cold restart (§4)."""

from conftest import run_once

from dcrobot.experiments import e14_crash_recovery


def test_e14_crash_recovery(benchmark):
    result = run_once(benchmark, e14_crash_recovery.run, quick=True)
    print()
    print(result.render())

    series = dict(result.series)
    modes = e14_crash_recovery.MODES
    resolution = {modes[int(index)]: rate
                  for index, rate in series["resolution_by_mode"]}
    orphaned = {modes[int(index)]: count
                for index, count in series["orphaned_by_mode"]}

    # Shape: journal-backed recovery (replay or standby takeover)
    # concludes everything the uncrashed reference does and strands
    # nothing; the journal-less cold restart silently loses the work
    # that was in flight at the crash (its predecessor's muted links
    # stay muted forever, invisible to redetection).
    for mode in ("replay", "standby"):
        assert resolution[mode] >= resolution["uncrashed"] - 1e-9
        assert orphaned[mode] == 0.0
    assert orphaned["coldstart"] > 0.0
