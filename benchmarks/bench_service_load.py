"""CI gates for the S21 service plane under open-loop load.

One serve window, two arms, identical offered load (a calibrated
multiple of measured deep-query capacity; every query re-verifies the
incremental SMI against the full rescan, so the parity oracle is
load-bearing).  Four claims are enforced:

* **tail protection** — the admission-controlled arm's served p99 is
  at most half the uncontrolled arm's (with a floor so an absurdly
  fast runner that cannot be overloaded at all still passes);
* **sim-loop protection** — the controlled arm records *zero* bridge
  stalls beyond the budget (the uncontrolled arm is what stalls look
  like);
* **read-model parity** — thousands of under-load audits, zero
  divergences from the full-scan/rescan oracles, in both arms;
* **priority fairness** — urgent HIGH maintenance commands are never
  shed, no matter how hard the query plane is being flooded.
"""

from __future__ import annotations

from dcrobot.experiments.e20_service_load import run_load_pair

HORIZON_DAYS = 1.0
SERVE_SECONDS = 1.5
SEED = 2

#: If even the uncontrolled arm stays under this p99, the runner was
#: too fast to overload and the halving gate would be noise.
OVERLOAD_FLOOR_SECONDS = 0.2
#: Controlled arm must additionally stay under an absolute ceiling —
#: "half of terrible" is not a service-level objective by itself.
CONTROLLED_P99_CEILING_SECONDS = 1.0


def test_admission_halves_p99_and_protects_the_sim_loop():
    uncontrolled, controlled = run_load_pair(
        halls=1, horizon_days=HORIZON_DAYS, seed=SEED,
        serve_seconds=SERVE_SECONDS)

    # Both arms actually worked: sim events ran, queries were served,
    # commands landed, and every audit agreed with the oracle.
    for arm in (uncontrolled, controlled):
        assert arm.events > 0, "the bridge never stepped the sim"
        assert arm.served_queries > 0
        assert arm.commands > 0
        assert arm.parity_audits > 0
        assert arm.parity_failures == 0, (
            f"{arm.parity_failures} read-model parity failures "
            f"under load")
        assert arm.shed_commands_high == 0, (
            "an urgent HIGH maintenance command was shed")

    # The offered load genuinely overloaded the uncontrolled arm
    # (otherwise the halving comparison is meaningless noise).
    if uncontrolled.p99_seconds < OVERLOAD_FLOOR_SECONDS:
        assert controlled.p99_seconds <= OVERLOAD_FLOOR_SECONDS
        return

    assert controlled.p99_seconds <= 0.5 * uncontrolled.p99_seconds, (
        f"admission-controlled p99 {controlled.p99_seconds:.3f}s is "
        f"not half of uncontrolled {uncontrolled.p99_seconds:.3f}s "
        f"under the same {uncontrolled.offered_rps:.0f} rps offered")
    assert controlled.p99_seconds <= CONTROLLED_P99_CEILING_SECONDS, (
        f"controlled p99 {controlled.p99_seconds:.3f}s exceeds the "
        f"absolute serving ceiling")
    assert controlled.stalls == 0, (
        f"{controlled.stalls} sim-loop stalls beyond the bridge "
        f"budget with admission on — the sim was not protected")
    # Shedding is doing real work: the controlled arm refused a
    # meaningful share of an overload it could not have served.
    assert controlled.shed_queries > 0
