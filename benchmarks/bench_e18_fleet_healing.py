"""Bench E18 — self-healing vs naive fleet under robot mortality (§4)."""

from conftest import run_once

from dcrobot.experiments import e18_fleet_healing


def test_e18_fleet_healing(benchmark):
    result = run_once(benchmark, e18_fleet_healing.run, quick=True)
    print()
    print(result.render())

    series = dict(result.series)
    naive_resolution = series["resolution_vs_robot_failures_naive"]
    healed_resolution = series["resolution_vs_robot_failures_selfheal"]
    naive_orphaned = dict(series["orphaned_vs_robot_failures_naive"])
    healed_orphaned = series["orphaned_vs_robot_failures_selfheal"]

    # Shape: the self-healing fleet concludes >= 95% of mature
    # incidents at every robot-failure scale and strands no orders; the
    # naive fleet permanently orphans orders on dead units at the >= 2x
    # scales and its conclusion rate drops below the bar at the top.
    for (_scale, rate) in healed_resolution:
        assert rate >= 0.95
    for (_scale, count) in healed_orphaned:
        assert count == 0.0
    assert naive_resolution[-1][1] < 0.95
    assert all(naive_orphaned[scale] > 0 for scale in (2.0, 4.0))

    # Fencing tripwire: no zombie completion was ever accepted after
    # its order had been re-dispatched — anywhere in the battery.
    for mode in ("naive", "selfheal"):
        for (_scale, accepted) in series[f"zombie_accepted_{mode}"]:
            assert accepted == 0.0
