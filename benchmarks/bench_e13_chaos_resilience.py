"""Bench E13 — hardened vs naive control plane under chaos (§2/§4)."""

from conftest import run_once

from dcrobot.experiments import e13_chaos_resilience


def test_e13_chaos_resilience(benchmark):
    result = run_once(benchmark, e13_chaos_resilience.run, quick=True)
    print()
    print(result.render())

    series = dict(result.series)
    naive = series["resolution_vs_chaos_naive"]
    hardened = series["resolution_vs_chaos_hardened"]
    violations = series["violations_vs_chaos_hardened"]
    stuck = series["stuck_orders_vs_chaos_hardened"]

    # Shape: the hardened controller concludes >= 95% of mature
    # incidents at every chaos scale with zero invariant violations and
    # zero leaked work orders; the naive one falls below that bar at
    # the top scale and leaks stuck orders somewhere along the sweep.
    for (_scale, rate) in hardened:
        assert rate >= 0.95
    for (_scale, count) in violations:
        assert count == 0.0
    for (_scale, count) in stuck:
        assert count == 0.0
    assert naive[-1][1] < 0.95
    assert any(count > 0 for _scale, count
               in series["stuck_orders_vs_chaos_naive"])
